"""Two-level TLB model matching the Table III configuration.

The testbed's Westmere cores have a 64-entry, 4-way L1 ITLB, a 64-entry,
4-way L1 DTLB, and a 512-entry, 4-way second-level TLB (STLB) shared
between instruction and data translations.  A first-level miss that hits
the STLB costs a short fill; a miss in both levels triggers a page walk
whose cycles feed the ``ITLB_CYCLE`` / ``DTLB_CYCLE`` Table II metrics.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import NamedTuple

from repro.errors import ConfigurationError

__all__ = [
    "TlbConfig",
    "TlbOutcome",
    "TlbLookup",
    "Tlb",
    "TlbHierarchy",
    "TlbStats",
    "TRANSLATE_L1_HIT",
    "TRANSLATE_STLB_HIT",
    "TRANSLATE_PAGE_WALK",
]

PAGE_SHIFT = 12  # 4 KiB pages
PAGE_SIZE = 1 << PAGE_SHIFT


@dataclass(frozen=True)
class TlbConfig:
    """Geometry of one TLB level."""

    name: str
    entries: int
    associativity: int

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.associativity <= 0:
            raise ConfigurationError(f"{self.name}: entries/associativity must be positive")
        if self.entries % self.associativity != 0:
            raise ConfigurationError(
                f"{self.name}: {self.entries} entries not divisible by "
                f"{self.associativity} ways"
            )
        sets = self.entries // self.associativity
        if sets & (sets - 1):
            raise ConfigurationError(f"{self.name}: set count must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.entries // self.associativity


class TlbOutcome(enum.Enum):
    """Where a translation was satisfied."""

    L1_HIT = "l1-hit"
    STLB_HIT = "stlb-hit"
    PAGE_WALK = "page-walk"


class TlbLookup(NamedTuple):
    """Outcome of a translation, with the page-walk cost if one occurred."""

    outcome: TlbOutcome
    walk_cycles: int = 0


#: Singleton fast-path result (the overwhelmingly common L1 TLB hit).
_L1_HIT = TlbLookup(TlbOutcome.L1_HIT, 0)


@dataclass
class TlbStats:
    """Running counters for one TLB hierarchy port (instruction or data)."""

    l1_hits: int = 0
    stlb_hits: int = 0
    walks: int = 0
    walk_cycles: int = 0

    @property
    def lookups(self) -> int:
        return self.l1_hits + self.stlb_hits + self.walks

    @property
    def l1_misses(self) -> int:
        """First-level misses (STLB hits plus full walks)."""
        return self.stlb_hits + self.walks


#: Integer codes returned by :meth:`TlbHierarchy.translate_packed` — the
#: hot path avoids building a :class:`TlbLookup` per translation.
TRANSLATE_L1_HIT = 0
TRANSLATE_STLB_HIT = 1
TRANSLATE_PAGE_WALK = 2


class Tlb:
    """One set-associative TLB level with LRU replacement over page numbers."""

    __slots__ = ("config", "_set_mask", "_assoc", "_sets")

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self._set_mask = config.num_sets - 1
        self._assoc = config.associativity
        self._sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(config.num_sets)]

    def _set_for(self, page: int) -> OrderedDict[int, None]:
        return self._sets[page & self._set_mask]

    def lookup(self, page: int) -> bool:
        """Probe for ``page``; returns hit and updates LRU (no fill on miss)."""
        tlb_set = self._set_for(page)
        if page in tlb_set:
            tlb_set.move_to_end(page)
            return True
        return False

    def fill(self, page: int) -> None:
        """Install ``page``, evicting the LRU victim if the set is full."""
        tlb_set = self._set_for(page)
        if page in tlb_set:
            tlb_set.move_to_end(page)
            return
        if len(tlb_set) >= self._assoc:
            tlb_set.popitem(last=False)
        tlb_set[page] = None

    def flush(self) -> None:
        for tlb_set in self._sets:
            tlb_set.clear()


class TlbHierarchy:
    """An L1 TLB backed by a (possibly shared) second-level TLB.

    The same STLB instance can back both the instruction and the data
    hierarchy, as on the modelled processor.
    """

    #: Cycles to refill the L1 TLB from an STLB hit.
    STLB_FILL_CYCLES = 7
    #: Cycles for a full page walk (two-level walk hitting the caches).
    PAGE_WALK_CYCLES = 30

    __slots__ = ("l1", "stlb", "stats")

    def __init__(self, l1: Tlb, stlb: Tlb) -> None:
        self.l1 = l1
        self.stlb = stlb
        self.stats = TlbStats()

    def translate(self, addr: int) -> TlbLookup:
        """Translate byte address ``addr``, filling TLBs on the way.

        Convenience wrapper over :meth:`translate_packed`; the simulator
        hot path uses the packed form to avoid a ``TlbLookup`` per access.
        """
        code = self.translate_packed(addr)
        if code == TRANSLATE_L1_HIT:
            return _L1_HIT
        if code == TRANSLATE_STLB_HIT:
            return TlbLookup(TlbOutcome.STLB_HIT, walk_cycles=self.STLB_FILL_CYCLES)
        return TlbLookup(TlbOutcome.PAGE_WALK, walk_cycles=self.PAGE_WALK_CYCLES)

    def translate_packed(self, addr: int) -> int:
        """Translate ``addr``; return a ``TRANSLATE_*`` code (no allocation).

        The overwhelmingly common case — an L1 TLB hit — is inlined here
        rather than dispatched through :meth:`Tlb.lookup`.
        """
        page = addr >> PAGE_SHIFT
        l1 = self.l1
        tlb_set = l1._sets[page & l1._set_mask]
        if page in tlb_set:
            tlb_set.move_to_end(page)
            self.stats.l1_hits += 1
            return TRANSLATE_L1_HIT
        return self.translate_miss(page)

    def translate_miss(self, page: int) -> int:
        """Finish a translation whose L1 TLB probe missed (slow path).

        Split out so the core model can inline the L1 probe and only pay
        a call on a first-level miss.

        Returns:
            ``TRANSLATE_STLB_HIT`` or ``TRANSLATE_PAGE_WALK``.
        """
        if self.stlb.lookup(page):
            self.stats.stlb_hits += 1
            self.l1.fill(page)
            return TRANSLATE_STLB_HIT
        stats = self.stats
        stats.walks += 1
        stats.walk_cycles += self.PAGE_WALK_CYCLES
        self.stlb.fill(page)
        self.l1.fill(page)
        return TRANSLATE_PAGE_WALK
