"""Per-core simulation engine.

A :class:`CoreModel` owns one core's private state — split L1I/L1D, a
unified L2, the two-level TLBs and a gshare branch predictor — and shares
the socket's L3 and coherence directory with its siblings.  Feeding it a
:class:`~repro.arch.trace.PhaseProfile` runs a sampled functional
simulation: every synthesised operation walks the real tag arrays, so hit
levels, snoop responses, TLB walks and branch mispredictions are emergent
rather than dialled in.

The inner loops here and in the caches/TLBs they drive are the hottest
code in the repository (millions of simulated operations per workload),
so they use the allocation-free packed protocols: operations arrive as
the parallel columns of an :class:`~repro.arch.trace.OpStream`, cache
accesses return packed ints (:meth:`SetAssociativeCache.access_packed`)
and TLB translations return small codes
(:meth:`TlbHierarchy.translate_packed`).
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from repro.arch.branch import GsharePredictor
from repro.arch.cache import (
    ACCESS_EVICTED,
    ACCESS_HIT,
    ACCESS_WRITEBACK,
    ACCESS_VICTIM_SHIFT,
    CacheConfig,
    SetAssociativeCache,
)
from repro.arch.coherence import CoherenceDirectory, MesiState, SnoopResponse
from repro.arch.pipeline import SampleCounts
from repro.arch.tlb import (
    PAGE_SHIFT,
    TRANSLATE_STLB_HIT,
    Tlb,
    TlbConfig,
    TlbHierarchy,
)
from repro.arch import trace as trace_mod
from repro.arch.trace import (
    OP_BRANCH,
    OP_FETCH_FLAG,
    OP_LOAD,
    OP_STORE,
    PhaseProfile,
    synthesize_stream,
)

__all__ = ["CoreModel", "LINE_SHIFT"]

LINE_SHIFT = 6  # 64-byte lines throughout the hierarchy (Table III)

#: Approximate service times in op-ticks, used only for the MLP integral
#: (the cycle model converts real penalties separately).
_MLP_SERVICE_MEM = 40
_MLP_SERVICE_L3 = 9
_MLP_SERVICE_SIBLING = 13

#: Average speculatively executed wrong-path branches per misprediction.
_WRONG_PATH_BRANCHES = 3

#: Line fill buffer depth (Westmere has 10 fill buffers per core).
_LFB_DEPTH = 10

#: Concurrent stream detectors in the hardware prefetcher (per core).
_STREAM_TRACKERS = 48

_PAGE_WALK_CYCLES = TlbHierarchy.PAGE_WALK_CYCLES


class CoreModel:
    """One simulated core of the Table III processor."""

    __slots__ = (
        "core_id",
        "l3",
        "directory",
        "l1i",
        "l1d",
        "l2",
        "itlb",
        "dtlb",
        "branch",
        "_lfb",
        "_stream_trackers",
        "_last_fetch_line",
    )

    def __init__(
        self,
        core_id: int,
        l3: SetAssociativeCache,
        directory: CoherenceDirectory,
    ) -> None:
        self.core_id = core_id
        self.l3 = l3
        self.directory = directory
        self.l1i = SetAssociativeCache(CacheConfig("L1I", 32 * 1024, 4))
        self.l1d = SetAssociativeCache(CacheConfig("L1D", 32 * 1024, 8))
        self.l2 = SetAssociativeCache(CacheConfig("L2", 256 * 1024, 8))
        stlb = Tlb(TlbConfig("STLB", 512, 4))
        self.itlb = TlbHierarchy(Tlb(TlbConfig("ITLB", 64, 4)), stlb)
        self.dtlb = TlbHierarchy(Tlb(TlbConfig("DTLB", 64, 4)), stlb)
        self.branch = GsharePredictor(history_bits=12, history_use_bits=1)
        self._lfb: deque[int] = deque(maxlen=_LFB_DEPTH)
        self._stream_trackers: dict[int, int] = {}  # page -> last line seen
        self._last_fetch_line = -2  # I-side next-line prefetcher state

    # ------------------------------------------------------------------
    # Instruction side.
    # ------------------------------------------------------------------

    def _fetch(self, pc: int, counts: SampleCounts) -> None:
        """Fetch the 16-byte block holding ``pc`` through L1I / L2 / L3.

        The frontend probes the L1I once per 16 B fetch block, so a
        sequential walk of one 64 B line yields three hits after the
        transition; a next-line prefetcher hides most sequential line
        transitions, leaving jumps as the dominant L1I miss source.

        The ITLB-L1 and L1I hit checks are inlined (one set probe each);
        only misses pay a call into the slow paths.  The private L1s are
        built with power-of-two set counts, which is what makes the
        ``& _set_mask`` indexing valid.
        """
        counts.l1i_accesses += 1
        itlb = self.itlb
        page = pc >> PAGE_SHIFT
        itlb_l1 = itlb.l1
        tlb_set = itlb_l1._sets[page & itlb_l1._set_mask]
        if page in tlb_set:
            tlb_set.move_to_end(page)
            itlb.stats.l1_hits += 1
        elif itlb.translate_miss(page) == TRANSLATE_STLB_HIT:
            counts.itlb_stlb_hits += 1
        else:
            counts.itlb_walks += 1
            counts.itlb_walk_cycles += _PAGE_WALK_CYCLES
        l1i = self.l1i
        line = pc >> LINE_SHIFT
        cache_set = l1i._sets[line & l1i._set_mask]
        if line in cache_set:
            l1i.stats.hits += 1
            cache_set.move_to_end(line)
            hit = True
        else:
            l1i.fill_miss(cache_set, line, False)  # L1I lines never dirty
            hit = False
        if line == self._last_fetch_line + 1:
            l1i.install_line(line + 1)
            self.l2.install_line(line + 1)
            self.l3.install_line(line + 1)
        self._last_fetch_line = line
        if hit:
            counts.l1i_hits += 1
            return
        counts.l1i_misses += 1
        l2_access = self.l2.access_packed(pc)
        if l2_access & ACCESS_HIT:
            counts.icache_l2_hits += 1
            counts.l2_hits += 1
            return
        counts.l2_misses += 1
        counts.offcore_code += 1
        self._handle_l2_eviction(l2_access, counts)
        l3_access = self.l3.access_packed(pc)
        if l3_access & ACCESS_HIT:
            counts.icache_l3_hits += 1
            counts.l3_hits += 1
        else:
            counts.l3_misses += 1
            counts.icache_mem += 1

    # ------------------------------------------------------------------
    # Data side.
    # ------------------------------------------------------------------

    def _handle_l1d_eviction(self, packed: int, counts: SampleCounts) -> None:
        """Absorb a dirty L1D victim into the L2 (write-back).

        ``packed`` is an :meth:`~repro.arch.cache.SetAssociativeCache.
        access_packed` result; clean or victimless misses need no action.
        """
        if not packed & ACCESS_WRITEBACK:
            return
        victim = packed >> ACCESS_VICTIM_SHIFT
        if not self.l2.set_dirty(victim):
            # Victim escaped the private hierarchy entirely.
            counts.offcore_writeback += 1
            self.directory.evicted(self.core_id, victim)

    def _handle_l2_eviction(self, packed: int, counts: SampleCounts) -> None:
        """Handle an L2 victim: write back dirty data, keep L1D coherent."""
        if not packed & ACCESS_EVICTED:
            return
        victim = packed >> ACCESS_VICTIM_SHIFT
        if packed & ACCESS_WRITEBACK:
            counts.offcore_writeback += 1
        # Maintain (approximate) inclusion so the directory can treat
        # "in L2" as "in the private hierarchy".
        self.l1d.invalidate_line(victim)
        self.directory.evicted(self.core_id, victim)

    def _record_snoop(self, response: SnoopResponse, counts: SampleCounts) -> None:
        if response is SnoopResponse.HIT:
            counts.snoop_hit += 1
        elif response is SnoopResponse.HITE:
            counts.snoop_hite += 1
        elif response is SnoopResponse.HITM:
            counts.snoop_hitm += 1

    def _prefetch_ahead(self, line: int, counts: SampleCounts) -> None:
        """Install the next two lines after a detected sequential stream.

        Real L1/L2 prefetchers track a few dozen independent streams (one
        per 4 KB page), so sequential scans stay covered even when other
        references interleave.  On a detected sequential pattern within a
        page, the next two lines are installed throughout the hierarchy
        without demand statistics — which is why streaming scans do not
        drown the LLC in compulsory misses on real hardware.

        The stream-detector probe itself is inlined in :meth:`_load` /
        :meth:`_store`; this method only runs on a detection.
        """
        l1d, l2, l3 = self.l1d, self.l2, self.l3
        for ahead in (line + 1, line + 2):
            if not l2.line_resident(ahead):
                # The prefetch escapes the core: it is offcore data
                # traffic just like a demand read would have been.
                counts.offcore_data += 1
            l1d.install_line(ahead)
            l2.install_line(ahead)
            l3.install_line(ahead)

    def _load(
        self,
        addr: int,
        tick: int,
        outstanding: list[int],
        counts: SampleCounts,
    ) -> None:
        line = addr >> LINE_SHIFT
        # Streaming prefetcher probe (one dict get/set per access; the
        # tracker-limit pop can only be needed when a new page was added).
        page4k = line >> 6  # 4 KiB page of this line
        trackers = self._stream_trackers
        last = trackers.get(page4k)
        trackers[page4k] = line
        if last is not None:
            if line == last + 1:
                self._prefetch_ahead(line, counts)
        elif len(trackers) > _STREAM_TRACKERS:
            trackers.pop(next(iter(trackers)))
        # DTLB with the L1 hit check inlined.
        dtlb = self.dtlb
        page = addr >> PAGE_SHIFT
        dtlb_l1 = dtlb.l1
        tlb_set = dtlb_l1._sets[page & dtlb_l1._set_mask]
        if page in tlb_set:
            tlb_set.move_to_end(page)
            dtlb.stats.l1_hits += 1
        elif dtlb.translate_miss(page) == TRANSLATE_STLB_HIT:
            counts.dtlb_stlb_hits += 1
        else:
            counts.dtlb_walks += 1
            counts.dtlb_walk_cycles += _PAGE_WALK_CYCLES
        # L1D with the hit check inlined.
        l1d = self.l1d
        cache_set = l1d._sets[line & l1d._set_mask]
        if line in cache_set:
            l1d.stats.hits += 1
            cache_set.move_to_end(line)
            return
        access = l1d.fill_miss(cache_set, line, False)
        self._handle_l1d_eviction(access, counts)
        if line in self._lfb:
            counts.load_hit_lfb += 1
            return
        l2_access = self.l2.access_packed(addr)
        if l2_access & ACCESS_HIT:
            counts.load_hit_l2 += 1
            counts.l2_hits += 1
            return
        counts.l2_misses += 1
        counts.offcore_data += 1
        self._handle_l2_eviction(l2_access, counts)
        self._lfb.append(line)
        response = self.directory.read_miss(self.core_id, line)
        if response is not SnoopResponse.NONE:
            self._record_snoop(response, counts)
            counts.load_hit_sibling += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_SIBLING)
            # A dirty cache-to-cache transfer also installs into the L3.
            self.l3.access_packed(addr)
            return
        l3_access = self.l3.access_packed(addr)
        if l3_access & ACCESS_HIT:
            counts.load_hit_l3 += 1
            counts.l3_hits += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_L3)
        else:
            counts.l3_misses += 1
            counts.load_llc_miss += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_MEM)

    def _store(
        self,
        addr: int,
        tick: int,
        outstanding: list[int],
        counts: SampleCounts,
    ) -> None:
        line = addr >> LINE_SHIFT
        # Streaming prefetcher probe (see _load).
        page4k = line >> 6
        trackers = self._stream_trackers
        last = trackers.get(page4k)
        trackers[page4k] = line
        if last is not None:
            if line == last + 1:
                self._prefetch_ahead(line, counts)
        elif len(trackers) > _STREAM_TRACKERS:
            trackers.pop(next(iter(trackers)))
        # DTLB with the L1 hit check inlined.
        dtlb = self.dtlb
        page = addr >> PAGE_SHIFT
        dtlb_l1 = dtlb.l1
        tlb_set = dtlb_l1._sets[page & dtlb_l1._set_mask]
        if page in tlb_set:
            tlb_set.move_to_end(page)
            dtlb.stats.l1_hits += 1
        elif dtlb.translate_miss(page) == TRANSLATE_STLB_HIT:
            counts.dtlb_stlb_hits += 1
        else:
            counts.dtlb_walks += 1
            counts.dtlb_walk_cycles += _PAGE_WALK_CYCLES
        # L1D (write) with the hit check inlined.
        l1d = self.l1d
        cache_set = l1d._sets[line & l1d._set_mask]
        if line in cache_set:
            l1d.stats.hits += 1
            cache_set.move_to_end(line)
            cache_set[line] = True
            state = self.directory.state(self.core_id, line)
            if state is MesiState.SHARED:
                # Upgrade: invalidate other sharers, goes on the bus.
                response = self.directory.upgrade(self.core_id, line)
                self._record_snoop(response, counts)
                counts.offcore_rfo += 1
            elif state is MesiState.EXCLUSIVE:
                self.directory.write_hit_owned(self.core_id, line)
            return
        access = l1d.fill_miss(cache_set, line, True)
        self._handle_l1d_eviction(access, counts)
        if line in self._lfb:
            counts.load_hit_lfb += 1  # stores merging into an in-flight fill
            return
        l2_access = self.l2.access_packed(addr, True)
        if l2_access & ACCESS_HIT:
            counts.l2_hits += 1
            state = self.directory.state(self.core_id, line)
            if state is MesiState.SHARED:
                response = self.directory.upgrade(self.core_id, line)
                self._record_snoop(response, counts)
                counts.offcore_rfo += 1
            elif state is MesiState.EXCLUSIVE:
                self.directory.write_hit_owned(self.core_id, line)
            return
        counts.l2_misses += 1
        counts.offcore_rfo += 1
        self._handle_l2_eviction(l2_access, counts)
        self._lfb.append(line)
        response = self.directory.write_miss(self.core_id, line)
        if response is not SnoopResponse.NONE:
            self._record_snoop(response, counts)
            heapq.heappush(outstanding, tick + _MLP_SERVICE_SIBLING)
            self.l3.access_packed(addr, True)
            return
        l3_access = self.l3.access_packed(addr, True)
        if l3_access & ACCESS_HIT:
            counts.l3_hits += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_L3)
        else:
            counts.l3_misses += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_MEM)

    # ------------------------------------------------------------------
    # Driver.
    # ------------------------------------------------------------------

    def prewarm(
        self,
        profile: PhaseProfile,
        private_budget_lines: int | None = None,
        install_shared_and_code: bool = True,
    ) -> None:
        """Install the expected steady-state resident set before sampling.

        A few thousand sampled operations cannot touch a multi-megabyte
        working set even once, so without pre-warming every first touch
        would read as a compulsory LLC miss and the measured rates would
        describe a cold start instead of the steady state the paper
        measures (it applies a ramp-up period for exactly this reason).
        Pre-warming installs, coldest-first so LRU order matches access
        frequency, the Zipf heads of the phase's regions:

        * the hot region into the L1D,
        * the warm-tier head into the L2 and the warm tier into the L3
          (up to ``private_budget_lines`` — the driver divides the L3
          between sibling cores so pre-warming cannot thrash itself),
        * the shared warm tier and the hot code head into the shared L3
          (once per socket: ``install_shared_and_code``).

        Args:
            profile: The phase (or union-of-phases) footprint to warm.
            private_budget_lines: L3 lines this core may fill with its
                private warm tier (default: the full warm tier).
            install_shared_and_code: Install the node-shared regions too;
                the driver enables this for one core only.
        """
        private_base = trace_mod.PRIVATE_DATA_BASE + self.core_id * trace_mod.PRIVATE_DATA_STRIDE
        hot_lines = trace_mod.HOT_REGION_BYTES >> LINE_SHIFT
        hot_first = private_base >> LINE_SHIFT
        self.l1d.install_span(hot_first, hot_lines)

        warm_bytes = min(trace_mod.WARM_REGION_BYTES, profile.data_working_set)
        warm_first = (private_base + trace_mod.HOT_REGION_BYTES) >> LINE_SHIFT
        warm_lines = max(1, warm_bytes >> LINE_SHIFT)
        if private_budget_lines is not None:
            warm_lines = min(warm_lines, max(1, private_budget_lines))
        l2_head = min(warm_lines, (self.l2.config.size // 2) >> LINE_SHIFT)
        self.l3.install_span(warm_first, warm_lines)
        self.l2.install_span(warm_first, l2_head)

        # The private L1I / L2 hold this core's hot code head regardless
        # of who warms the shared L3.
        code_first = trace_mod.USER_CODE_BASE >> LINE_SHIFT
        code_lines = max(4, min(profile.code_footprint, 3 << 20) >> LINE_SHIFT)
        l1i_head = min(code_lines, self.l1i.config.size >> LINE_SHIFT)
        l2_code_head = min(code_lines, (self.l2.config.size // 2) >> LINE_SHIFT)
        self.l2.install_span(code_first, l2_code_head)
        self.l1i.install_span(code_first, l1i_head)

        if not install_shared_and_code:
            return

        if profile.shared_fraction > 0:
            shared_bytes = min(
                trace_mod.SHARED_WARM_BYTES // 2, profile.shared_working_set
            )
            shared_first = trace_mod.SHARED_DATA_BASE >> LINE_SHIFT
            self.l3.install_span(shared_first, max(1, shared_bytes >> LINE_SHIFT))

        self.l3.install_span(code_first, code_lines)

    def run_sample(
        self,
        profile: PhaseProfile,
        n_ops: int,
        rng: np.random.Generator,
    ) -> SampleCounts:
        """Simulate ``n_ops`` sampled instructions of ``profile``.

        Returns:
            Raw sample counters (unscaled).  Cycle accounting and scaling
            to the phase's nominal instruction count happen in
            :class:`repro.arch.processor.Processor`.

        The loop body is deliberately flat: the op stream is consumed as
        parallel columns, scalar counters are accumulated in locals and
        flushed into ``counts`` once, and the MLP tracking is inlined —
        this is the hottest loop in the repository.
        """
        counts = SampleCounts()
        stream = synthesize_stream(profile, n_ops, self.core_id, rng)
        codes = stream.codes
        addresses = stream.addresses
        takens = stream.takens
        pcs = stream.pcs
        outstanding: list[int] = []
        heappop = heapq.heappop
        fetch = self._fetch
        load = self._load
        store = self._store
        predict = self.branch.predict_and_update
        mispredicts = 0
        mlp_active = 0
        mlp_sum = 0
        for tick, code in enumerate(codes):
            while outstanding and outstanding[0] <= tick:
                heappop(outstanding)
            if outstanding:
                mlp_active += 1
                mlp_sum += len(outstanding)
            if code & OP_FETCH_FLAG:
                # New 16-byte fetch block (precomputed at synthesis time).
                fetch(pcs[tick], counts)
                code ^= OP_FETCH_FLAG
            if code == OP_LOAD:
                load(addresses[tick], tick, outstanding, counts)
            elif code == OP_STORE:
                store(addresses[tick], tick, outstanding, counts)
            elif code == OP_BRANCH:
                if not predict(addresses[tick], takens[tick]):
                    mispredicts += 1
        # Per-class tallies are pure functions of the stream — precomputed
        # vectorised at synthesis time instead of counted per op here.
        tallies = stream.tallies
        counts.instructions = n_ops
        counts.kernel_instructions = tallies.kernel
        counts.loads = tallies.loads
        counts.stores = tallies.stores
        counts.branches_retired = tallies.branches
        counts.branch_mispredicts = mispredicts
        counts.int_ops = tallies.int_alu
        counts.x87_ops = tallies.fp_x87
        counts.sse_ops = tallies.fp_sse
        counts.mlp_active = mlp_active
        counts.mlp_sum = mlp_sum
        return counts

    def reset(self) -> None:
        """Flush all private state (between workloads)."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()
        self.itlb.l1.flush()
        self.dtlb.l1.flush()
        self.itlb.stlb.flush()
        self.branch.reset()
        self._lfb.clear()
        self._stream_trackers.clear()
        self._last_fetch_line = -2


def wrong_path_branches(mispredicts: int) -> int:
    """Speculative wrong-path branch executions caused by mispredictions."""
    return mispredicts * _WRONG_PATH_BRANCHES
