"""Per-core simulation engine.

A :class:`CoreModel` owns one core's private state — split L1I/L1D, a
unified L2, the two-level TLBs and a gshare branch predictor — and shares
the socket's L3 and coherence directory with its siblings.  Feeding it a
:class:`~repro.arch.trace.PhaseProfile` runs a sampled functional
simulation: every synthesised operation walks the real tag arrays, so hit
levels, snoop responses, TLB walks and branch mispredictions are emergent
rather than dialled in.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from repro.arch.branch import GsharePredictor
from repro.arch.cache import CacheConfig, SetAssociativeCache
from repro.arch.coherence import CoherenceDirectory, MesiState, SnoopResponse
from repro.arch.pipeline import SampleCounts
from repro.arch.tlb import Tlb, TlbConfig, TlbHierarchy, TlbOutcome
from repro.arch import trace as trace_mod
from repro.arch.trace import MemOp, OpKind, PhaseProfile, synthesize_ops

__all__ = ["CoreModel", "LINE_SHIFT"]

LINE_SHIFT = 6  # 64-byte lines throughout the hierarchy (Table III)

#: Approximate service times in op-ticks, used only for the MLP integral
#: (the cycle model converts real penalties separately).
_MLP_SERVICE_MEM = 40
_MLP_SERVICE_L3 = 9
_MLP_SERVICE_SIBLING = 13

#: Average speculatively executed wrong-path branches per misprediction.
_WRONG_PATH_BRANCHES = 3

#: Line fill buffer depth (Westmere has 10 fill buffers per core).
_LFB_DEPTH = 10

#: Concurrent stream detectors in the hardware prefetcher (per core).
_STREAM_TRACKERS = 48


class CoreModel:
    """One simulated core of the Table III processor."""

    def __init__(
        self,
        core_id: int,
        l3: SetAssociativeCache,
        directory: CoherenceDirectory,
    ) -> None:
        self.core_id = core_id
        self.l3 = l3
        self.directory = directory
        self.l1i = SetAssociativeCache(CacheConfig("L1I", 32 * 1024, 4))
        self.l1d = SetAssociativeCache(CacheConfig("L1D", 32 * 1024, 8))
        self.l2 = SetAssociativeCache(CacheConfig("L2", 256 * 1024, 8))
        stlb = Tlb(TlbConfig("STLB", 512, 4))
        self.itlb = TlbHierarchy(Tlb(TlbConfig("ITLB", 64, 4)), stlb)
        self.dtlb = TlbHierarchy(Tlb(TlbConfig("DTLB", 64, 4)), stlb)
        self.branch = GsharePredictor(history_bits=12, history_use_bits=1)
        self._lfb: deque[int] = deque(maxlen=_LFB_DEPTH)
        self._stream_trackers: dict[int, int] = {}  # page -> last line seen
        self._last_fetch_line = -2  # I-side next-line prefetcher state

    # ------------------------------------------------------------------
    # Instruction side.
    # ------------------------------------------------------------------

    def _fetch(self, pc: int, counts: SampleCounts) -> None:
        """Fetch the 16-byte block holding ``pc`` through L1I / L2 / L3.

        The frontend probes the L1I once per 16 B fetch block, so a
        sequential walk of one 64 B line yields three hits after the
        transition; a next-line prefetcher hides most sequential line
        transitions, leaving jumps as the dominant L1I miss source.
        """
        counts.l1i_accesses += 1
        lookup = self.itlb.translate(pc)
        if lookup.walk_cycles:
            if lookup.outcome is TlbOutcome.STLB_HIT:
                counts.itlb_stlb_hits += 1
            else:
                counts.itlb_walks += 1
                counts.itlb_walk_cycles += lookup.walk_cycles
        access = self.l1i.access(pc)
        line = access.line_addr
        if line == self._last_fetch_line + 1:
            self.l1i.install_line(line + 1)
            self.l2.install_line(line + 1)
            self.l3.install_line(line + 1)
        self._last_fetch_line = line
        if access.hit:
            counts.l1i_hits += 1
            return
        counts.l1i_misses += 1
        l2_access = self.l2.access(pc)
        if l2_access.hit:
            counts.icache_l2_hits += 1
            counts.l2_hits += 1
            return
        counts.l2_misses += 1
        counts.offcore_code += 1
        self._handle_l2_eviction(l2_access, counts)
        l3_access = self.l3.access(pc)
        if l3_access.hit:
            counts.icache_l3_hits += 1
            counts.l3_hits += 1
        else:
            counts.l3_misses += 1
            counts.icache_mem += 1

    # ------------------------------------------------------------------
    # Data side.
    # ------------------------------------------------------------------

    def _handle_l1d_eviction(self, access, counts: SampleCounts) -> None:
        """Absorb a dirty L1D victim into the L2 (write-back)."""
        if access.evicted_line is None or not access.writeback:
            return
        if not self.l2.set_dirty(access.evicted_line):
            # Victim escaped the private hierarchy entirely.
            counts.offcore_writeback += 1
            self.directory.evicted(self.core_id, access.evicted_line)

    def _handle_l2_eviction(self, access, counts: SampleCounts) -> None:
        """Handle an L2 victim: write back dirty data, keep L1D coherent."""
        if access.evicted_line is None:
            return
        if access.writeback:
            counts.offcore_writeback += 1
        # Maintain (approximate) inclusion so the directory can treat
        # "in L2" as "in the private hierarchy".
        self.l1d.invalidate_line(access.evicted_line)
        self.directory.evicted(self.core_id, access.evicted_line)

    def _record_snoop(self, response: SnoopResponse, counts: SampleCounts) -> None:
        if response is SnoopResponse.HIT:
            counts.snoop_hit += 1
        elif response is SnoopResponse.HITE:
            counts.snoop_hite += 1
        elif response is SnoopResponse.HITM:
            counts.snoop_hitm += 1

    def _track_mlp(
        self, outstanding: list[int], tick: int, counts: SampleCounts
    ) -> None:
        """Advance the outstanding-miss heap to ``tick`` and integrate MLP."""
        while outstanding and outstanding[0] <= tick:
            heapq.heappop(outstanding)
        if outstanding:
            counts.mlp_active += 1
            counts.mlp_sum += len(outstanding)

    def _prefetch_stream(self, line: int, counts: SampleCounts) -> None:
        """Streaming hardware prefetcher with multiple stream detectors.

        Real L1/L2 prefetchers track a few dozen independent streams (one
        per 4 KB page), so sequential scans stay covered even when other
        references interleave.  On a detected sequential pattern within a
        page, the next two lines are installed throughout the hierarchy
        without demand statistics — which is why streaming scans do not
        drown the LLC in compulsory misses on real hardware.
        """
        page = line >> 6  # 4 KiB page of this line
        trackers = self._stream_trackers
        last = trackers.get(page)
        if last is not None and line == last + 1:
            for ahead in (line + 1, line + 2):
                if not self.l2.line_resident(ahead):
                    # The prefetch escapes the core: it is offcore data
                    # traffic just like a demand read would have been.
                    counts.offcore_data += 1
                self.l1d.install_line(ahead)
                self.l2.install_line(ahead)
                self.l3.install_line(ahead)
        trackers[page] = line
        if len(trackers) > _STREAM_TRACKERS:
            trackers.pop(next(iter(trackers)))

    def _load(
        self,
        op: MemOp,
        tick: int,
        outstanding: list[int],
        counts: SampleCounts,
    ) -> None:
        counts.loads += 1
        self._prefetch_stream(op.address >> LINE_SHIFT, counts)
        lookup = self.dtlb.translate(op.address)
        if lookup.walk_cycles:
            if lookup.outcome is TlbOutcome.STLB_HIT:
                counts.dtlb_stlb_hits += 1
            else:
                counts.dtlb_walks += 1
                counts.dtlb_walk_cycles += lookup.walk_cycles
        access = self.l1d.access(op.address)
        if access.hit:
            return
        self._handle_l1d_eviction(access, counts)
        line = access.line_addr
        if line in self._lfb:
            counts.load_hit_lfb += 1
            return
        l2_access = self.l2.access(op.address)
        if l2_access.hit:
            counts.load_hit_l2 += 1
            counts.l2_hits += 1
            return
        counts.l2_misses += 1
        counts.offcore_data += 1
        self._handle_l2_eviction(l2_access, counts)
        self._lfb.append(line)
        response = self.directory.read_miss(self.core_id, line)
        if response is not SnoopResponse.NONE:
            self._record_snoop(response, counts)
            counts.load_hit_sibling += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_SIBLING)
            # A dirty cache-to-cache transfer also installs into the L3.
            self.l3.access(op.address)
            return
        l3_access = self.l3.access(op.address)
        if l3_access.hit:
            counts.load_hit_l3 += 1
            counts.l3_hits += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_L3)
        else:
            counts.l3_misses += 1
            counts.load_llc_miss += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_MEM)

    def _store(
        self,
        op: MemOp,
        tick: int,
        outstanding: list[int],
        counts: SampleCounts,
    ) -> None:
        counts.stores += 1
        self._prefetch_stream(op.address >> LINE_SHIFT, counts)
        lookup = self.dtlb.translate(op.address)
        if lookup.walk_cycles:
            if lookup.outcome is TlbOutcome.STLB_HIT:
                counts.dtlb_stlb_hits += 1
            else:
                counts.dtlb_walks += 1
                counts.dtlb_walk_cycles += lookup.walk_cycles
        access = self.l1d.access(op.address, is_write=True)
        line = access.line_addr
        if access.hit:
            state = self.directory.state(self.core_id, line)
            if state is MesiState.SHARED:
                # Upgrade: invalidate other sharers, goes on the bus.
                response = self.directory.upgrade(self.core_id, line)
                self._record_snoop(response, counts)
                counts.offcore_rfo += 1
            elif state is MesiState.EXCLUSIVE:
                self.directory.write_hit_owned(self.core_id, line)
            return
        self._handle_l1d_eviction(access, counts)
        if line in self._lfb:
            counts.load_hit_lfb += 1  # stores merging into an in-flight fill
            return
        l2_access = self.l2.access(op.address, is_write=True)
        if l2_access.hit:
            counts.l2_hits += 1
            state = self.directory.state(self.core_id, line)
            if state is MesiState.SHARED:
                response = self.directory.upgrade(self.core_id, line)
                self._record_snoop(response, counts)
                counts.offcore_rfo += 1
            elif state is MesiState.EXCLUSIVE:
                self.directory.write_hit_owned(self.core_id, line)
            return
        counts.l2_misses += 1
        counts.offcore_rfo += 1
        self._handle_l2_eviction(l2_access, counts)
        self._lfb.append(line)
        response = self.directory.write_miss(self.core_id, line)
        if response is not SnoopResponse.NONE:
            self._record_snoop(response, counts)
            heapq.heappush(outstanding, tick + _MLP_SERVICE_SIBLING)
            self.l3.access(op.address, is_write=True)
            return
        l3_access = self.l3.access(op.address, is_write=True)
        if l3_access.hit:
            counts.l3_hits += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_L3)
        else:
            counts.l3_misses += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_MEM)

    # ------------------------------------------------------------------
    # Driver.
    # ------------------------------------------------------------------

    def prewarm(
        self,
        profile: PhaseProfile,
        private_budget_lines: int | None = None,
        install_shared_and_code: bool = True,
    ) -> None:
        """Install the expected steady-state resident set before sampling.

        A few thousand sampled operations cannot touch a multi-megabyte
        working set even once, so without pre-warming every first touch
        would read as a compulsory LLC miss and the measured rates would
        describe a cold start instead of the steady state the paper
        measures (it applies a ramp-up period for exactly this reason).
        Pre-warming installs, coldest-first so LRU order matches access
        frequency, the Zipf heads of the phase's regions:

        * the hot region into the L1D,
        * the warm-tier head into the L2 and the warm tier into the L3
          (up to ``private_budget_lines`` — the driver divides the L3
          between sibling cores so pre-warming cannot thrash itself),
        * the shared warm tier and the hot code head into the shared L3
          (once per socket: ``install_shared_and_code``).

        Args:
            profile: The phase (or union-of-phases) footprint to warm.
            private_budget_lines: L3 lines this core may fill with its
                private warm tier (default: the full warm tier).
            install_shared_and_code: Install the node-shared regions too;
                the driver enables this for one core only.
        """
        private_base = trace_mod.PRIVATE_DATA_BASE + self.core_id * trace_mod.PRIVATE_DATA_STRIDE
        hot_lines = trace_mod.HOT_REGION_BYTES >> LINE_SHIFT
        hot_first = private_base >> LINE_SHIFT
        for offset in range(hot_lines - 1, -1, -1):
            self.l1d.install_line(hot_first + offset)

        warm_bytes = min(trace_mod.WARM_REGION_BYTES, profile.data_working_set)
        warm_first = (private_base + trace_mod.HOT_REGION_BYTES) >> LINE_SHIFT
        warm_lines = max(1, warm_bytes >> LINE_SHIFT)
        if private_budget_lines is not None:
            warm_lines = min(warm_lines, max(1, private_budget_lines))
        l2_head = min(warm_lines, (self.l2.config.size // 2) >> LINE_SHIFT)
        for offset in range(warm_lines - 1, -1, -1):
            self.l3.install_line(warm_first + offset)
            if offset < l2_head:
                self.l2.install_line(warm_first + offset)

        # The private L1I / L2 hold this core's hot code head regardless
        # of who warms the shared L3.
        code_first = trace_mod.USER_CODE_BASE >> LINE_SHIFT
        code_lines = max(4, min(profile.code_footprint, 3 << 20) >> LINE_SHIFT)
        l1i_head = min(code_lines, self.l1i.config.size >> LINE_SHIFT)
        l2_code_head = min(code_lines, (self.l2.config.size // 2) >> LINE_SHIFT)
        for offset in range(l2_code_head - 1, -1, -1):
            self.l2.install_line(code_first + offset)
            if offset < l1i_head:
                self.l1i.install_line(code_first + offset)

        if not install_shared_and_code:
            return

        if profile.shared_fraction > 0:
            shared_bytes = min(
                trace_mod.SHARED_WARM_BYTES // 2, profile.shared_working_set
            )
            shared_first = trace_mod.SHARED_DATA_BASE >> LINE_SHIFT
            for offset in range(max(1, shared_bytes >> LINE_SHIFT) - 1, -1, -1):
                self.l3.install_line(shared_first + offset)

        for offset in range(code_lines - 1, -1, -1):
            self.l3.install_line(code_first + offset)

    def run_sample(
        self,
        profile: PhaseProfile,
        n_ops: int,
        rng: np.random.Generator,
    ) -> SampleCounts:
        """Simulate ``n_ops`` sampled instructions of ``profile``.

        Returns:
            Raw sample counters (unscaled).  Cycle accounting and scaling
            to the phase's nominal instruction count happen in
            :class:`repro.arch.processor.Processor`.
        """
        counts = SampleCounts()
        ops, pcs = synthesize_ops(profile, n_ops, self.core_id, rng)
        outstanding: list[int] = []
        prev_block = -1
        for tick, (op, pc) in enumerate(zip(ops, pcs)):
            counts.instructions += 1
            if op.kernel:
                counts.kernel_instructions += 1
            self._track_mlp(outstanding, tick, counts)
            block = pc >> 4  # 16-byte fetch blocks
            if block != prev_block:
                self._fetch(pc, counts)
                prev_block = block
            if op.kind is OpKind.LOAD:
                self._load(op, tick, outstanding, counts)
            elif op.kind is OpKind.STORE:
                self._store(op, tick, outstanding, counts)
            elif op.kind is OpKind.BRANCH:
                counts.branches_retired += 1
                correct = self.branch.predict_and_update(op.address, op.taken)
                if not correct:
                    counts.branch_mispredicts += 1
            elif op.kind is OpKind.INT_ALU:
                counts.int_ops += 1
            elif op.kind is OpKind.FP_X87:
                counts.x87_ops += 1
            elif op.kind is OpKind.FP_SSE:
                counts.sse_ops += 1
        return counts

    def reset(self) -> None:
        """Flush all private state (between workloads)."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()
        self.itlb.l1.flush()
        self.dtlb.l1.flush()
        self.itlb.stlb.flush()
        self.branch.reset()
        self._lfb.clear()
        self._stream_trackers.clear()
        self._last_fetch_line = -2


def wrong_path_branches(mispredicts: int) -> int:
    """Speculative wrong-path branch executions caused by mispredictions."""
    return mispredicts * _WRONG_PATH_BRANCHES
