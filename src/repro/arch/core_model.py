"""Per-core simulation engine.

A :class:`CoreModel` owns one core's private state — split L1I/L1D, a
unified L2, the two-level TLBs and a gshare branch predictor — and shares
the socket's L3 and coherence directory with its siblings.  Feeding it a
:class:`~repro.arch.trace.PhaseProfile` runs a sampled functional
simulation: every synthesised operation walks the real tag arrays, so hit
levels, snoop responses, TLB walks and branch mispredictions are emergent
rather than dialled in.

The inner loops here and in the caches/TLBs they drive are the hottest
code in the repository (millions of simulated operations per workload),
so they use the allocation-free packed protocols: operations arrive as
the parallel columns of an :class:`~repro.arch.trace.OpStream`, cache
accesses return packed ints (:meth:`SetAssociativeCache.access_packed`)
and TLB translations return small codes
(:meth:`TlbHierarchy.translate_packed`).
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from repro.arch.branch import GsharePredictor
from repro.arch.cache import (
    ACCESS_EVICTED,
    ACCESS_HIT,
    ACCESS_WRITEBACK,
    ACCESS_VICTIM_SHIFT,
    CacheConfig,
    SetAssociativeCache,
)
from repro.arch.coherence import CoherenceDirectory, MesiState, SnoopResponse
from repro.arch.pipeline import SampleCounts
from repro.arch.tlb import (
    PAGE_SHIFT,
    TRANSLATE_STLB_HIT,
    Tlb,
    TlbConfig,
    TlbHierarchy,
)
from repro.arch import trace as trace_mod
from repro.arch.trace import (
    OP_BRANCH,
    OP_FETCH_FLAG,
    OP_LOAD,
    OP_STORE,
    PhaseProfile,
    synthesize_stream,
)

__all__ = ["CoreModel", "LINE_SHIFT"]

LINE_SHIFT = 6  # 64-byte lines throughout the hierarchy (Table III)

#: Approximate service times in op-ticks, used only for the MLP integral
#: (the cycle model converts real penalties separately).
_MLP_SERVICE_MEM = 40
_MLP_SERVICE_L3 = 9
_MLP_SERVICE_SIBLING = 13

#: Average speculatively executed wrong-path branches per misprediction.
_WRONG_PATH_BRANCHES = 3

#: Line fill buffer depth (Westmere has 10 fill buffers per core).
_LFB_DEPTH = 10

#: Concurrent stream detectors in the hardware prefetcher (per core).
_STREAM_TRACKERS = 48

_PAGE_WALK_CYCLES = TlbHierarchy.PAGE_WALK_CYCLES


def _prefetch_pair(
    line,
    l1d_sets, l1d_mask, l1d_assoc,
    l2_sets, l2_mask, l2_assoc,
    l3_sets, l3_nsets, l3_assoc,
):
    """Install ``line + 1`` and ``line + 2`` throughout the hierarchy.

    The batched kernel's twin of :meth:`CoreModel._prefetch_ahead`,
    taking the pre-resolved set lists so it stays free of attribute
    lookups.  Returns the off-core prefetch count (lines that were not
    L2-resident before their install).
    """
    offcore = 0
    for ahead in (line + 1, line + 2):
        a_set = l2_sets[ahead & l2_mask]
        if ahead not in a_set:
            offcore += 1
        d_set = l1d_sets[ahead & l1d_mask]
        if ahead in d_set:
            d_set.move_to_end(ahead)
        else:
            if len(d_set) >= l1d_assoc:
                d_set.popitem(last=False)
            d_set[ahead] = False
        if ahead in a_set:
            a_set.move_to_end(ahead)
        else:
            if len(a_set) >= l2_assoc:
                a_set.popitem(last=False)
            a_set[ahead] = False
        a_set = l3_sets[ahead % l3_nsets]
        if ahead in a_set:
            a_set.move_to_end(ahead)
        else:
            if len(a_set) >= l3_assoc:
                a_set.popitem(last=False)
            a_set[ahead] = False
    return offcore


class CoreModel:
    """One simulated core of the Table III processor."""

    __slots__ = (
        "core_id",
        "l3",
        "directory",
        "l1i",
        "l1d",
        "l2",
        "itlb",
        "dtlb",
        "branch",
        "_lfb",
        "_stream_trackers",
        "_last_fetch_line",
    )

    def __init__(
        self,
        core_id: int,
        l3: SetAssociativeCache,
        directory: CoherenceDirectory,
    ) -> None:
        self.core_id = core_id
        self.l3 = l3
        self.directory = directory
        self.l1i = SetAssociativeCache(CacheConfig("L1I", 32 * 1024, 4))
        self.l1d = SetAssociativeCache(CacheConfig("L1D", 32 * 1024, 8))
        self.l2 = SetAssociativeCache(CacheConfig("L2", 256 * 1024, 8))
        stlb = Tlb(TlbConfig("STLB", 512, 4))
        self.itlb = TlbHierarchy(Tlb(TlbConfig("ITLB", 64, 4)), stlb)
        self.dtlb = TlbHierarchy(Tlb(TlbConfig("DTLB", 64, 4)), stlb)
        self.branch = GsharePredictor(history_bits=12, history_use_bits=1)
        self._lfb: deque[int] = deque(maxlen=_LFB_DEPTH)
        self._stream_trackers: dict[int, int] = {}  # page -> last line seen
        self._last_fetch_line = -2  # I-side next-line prefetcher state

    # ------------------------------------------------------------------
    # Instruction side.
    # ------------------------------------------------------------------

    def _fetch(self, pc: int, counts: SampleCounts) -> None:
        """Fetch the 16-byte block holding ``pc`` through L1I / L2 / L3.

        The frontend probes the L1I once per 16 B fetch block, so a
        sequential walk of one 64 B line yields three hits after the
        transition; a next-line prefetcher hides most sequential line
        transitions, leaving jumps as the dominant L1I miss source.

        The ITLB-L1 and L1I hit checks are inlined (one set probe each);
        only misses pay a call into the slow paths.  The private L1s are
        built with power-of-two set counts, which is what makes the
        ``& _set_mask`` indexing valid.
        """
        counts.l1i_accesses += 1
        itlb = self.itlb
        page = pc >> PAGE_SHIFT
        itlb_l1 = itlb.l1
        tlb_set = itlb_l1._sets[page & itlb_l1._set_mask]
        if page in tlb_set:
            tlb_set.move_to_end(page)
            itlb.stats.l1_hits += 1
        elif itlb.translate_miss(page) == TRANSLATE_STLB_HIT:
            counts.itlb_stlb_hits += 1
        else:
            counts.itlb_walks += 1
            counts.itlb_walk_cycles += _PAGE_WALK_CYCLES
        l1i = self.l1i
        line = pc >> LINE_SHIFT
        cache_set = l1i._sets[line & l1i._set_mask]
        if line in cache_set:
            l1i.stats.hits += 1
            cache_set.move_to_end(line)
            hit = True
        else:
            l1i.fill_miss(cache_set, line, False)  # L1I lines never dirty
            hit = False
        if line == self._last_fetch_line + 1:
            l1i.install_line(line + 1)
            self.l2.install_line(line + 1)
            self.l3.install_line(line + 1)
        self._last_fetch_line = line
        if hit:
            counts.l1i_hits += 1
            return
        counts.l1i_misses += 1
        l2_access = self.l2.access_packed(pc)
        if l2_access & ACCESS_HIT:
            counts.icache_l2_hits += 1
            counts.l2_hits += 1
            return
        counts.l2_misses += 1
        counts.offcore_code += 1
        self._handle_l2_eviction(l2_access, counts)
        l3_access = self.l3.access_packed(pc)
        if l3_access & ACCESS_HIT:
            counts.icache_l3_hits += 1
            counts.l3_hits += 1
        else:
            counts.l3_misses += 1
            counts.icache_mem += 1

    # ------------------------------------------------------------------
    # Data side.
    # ------------------------------------------------------------------

    def _handle_l1d_eviction(self, packed: int, counts: SampleCounts) -> None:
        """Absorb a dirty L1D victim into the L2 (write-back).

        ``packed`` is an :meth:`~repro.arch.cache.SetAssociativeCache.
        access_packed` result; clean or victimless misses need no action.
        """
        if not packed & ACCESS_WRITEBACK:
            return
        victim = packed >> ACCESS_VICTIM_SHIFT
        if not self.l2.set_dirty(victim):
            # Victim escaped the private hierarchy entirely.
            counts.offcore_writeback += 1
            self.directory.evicted(self.core_id, victim)

    def _handle_l2_eviction(self, packed: int, counts: SampleCounts) -> None:
        """Handle an L2 victim: write back dirty data, keep L1D coherent."""
        if not packed & ACCESS_EVICTED:
            return
        victim = packed >> ACCESS_VICTIM_SHIFT
        if packed & ACCESS_WRITEBACK:
            counts.offcore_writeback += 1
        # Maintain (approximate) inclusion so the directory can treat
        # "in L2" as "in the private hierarchy".
        self.l1d.invalidate_line(victim)
        self.directory.evicted(self.core_id, victim)

    def _record_snoop(self, response: SnoopResponse, counts: SampleCounts) -> None:
        if response is SnoopResponse.HIT:
            counts.snoop_hit += 1
        elif response is SnoopResponse.HITE:
            counts.snoop_hite += 1
        elif response is SnoopResponse.HITM:
            counts.snoop_hitm += 1

    def _prefetch_ahead(self, line: int, counts: SampleCounts) -> None:
        """Install the next two lines after a detected sequential stream.

        Real L1/L2 prefetchers track a few dozen independent streams (one
        per 4 KB page), so sequential scans stay covered even when other
        references interleave.  On a detected sequential pattern within a
        page, the next two lines are installed throughout the hierarchy
        without demand statistics — which is why streaming scans do not
        drown the LLC in compulsory misses on real hardware.

        The stream-detector probe itself is inlined in :meth:`_load` /
        :meth:`_store`; this method only runs on a detection.
        """
        l1d, l2, l3 = self.l1d, self.l2, self.l3
        for ahead in (line + 1, line + 2):
            if not l2.line_resident(ahead):
                # The prefetch escapes the core: it is offcore data
                # traffic just like a demand read would have been.
                counts.offcore_data += 1
            l1d.install_line(ahead)
            l2.install_line(ahead)
            l3.install_line(ahead)

    def _load(
        self,
        addr: int,
        tick: int,
        outstanding: list[int],
        counts: SampleCounts,
    ) -> None:
        line = addr >> LINE_SHIFT
        # Streaming prefetcher probe (one dict get/set per access; the
        # tracker-limit pop can only be needed when a new page was added).
        page4k = line >> 6  # 4 KiB page of this line
        trackers = self._stream_trackers
        last = trackers.get(page4k)
        trackers[page4k] = line
        if last is not None:
            if line == last + 1:
                self._prefetch_ahead(line, counts)
        elif len(trackers) > _STREAM_TRACKERS:
            trackers.pop(next(iter(trackers)))
        # DTLB with the L1 hit check inlined.
        dtlb = self.dtlb
        page = addr >> PAGE_SHIFT
        dtlb_l1 = dtlb.l1
        tlb_set = dtlb_l1._sets[page & dtlb_l1._set_mask]
        if page in tlb_set:
            tlb_set.move_to_end(page)
            dtlb.stats.l1_hits += 1
        elif dtlb.translate_miss(page) == TRANSLATE_STLB_HIT:
            counts.dtlb_stlb_hits += 1
        else:
            counts.dtlb_walks += 1
            counts.dtlb_walk_cycles += _PAGE_WALK_CYCLES
        # L1D with the hit check inlined.
        l1d = self.l1d
        cache_set = l1d._sets[line & l1d._set_mask]
        if line in cache_set:
            l1d.stats.hits += 1
            cache_set.move_to_end(line)
            return
        access = l1d.fill_miss(cache_set, line, False)
        self._handle_l1d_eviction(access, counts)
        if line in self._lfb:
            counts.load_hit_lfb += 1
            return
        l2_access = self.l2.access_packed(addr)
        if l2_access & ACCESS_HIT:
            counts.load_hit_l2 += 1
            counts.l2_hits += 1
            return
        counts.l2_misses += 1
        counts.offcore_data += 1
        self._handle_l2_eviction(l2_access, counts)
        self._lfb.append(line)
        response = self.directory.read_miss(self.core_id, line)
        if response is not SnoopResponse.NONE:
            self._record_snoop(response, counts)
            counts.load_hit_sibling += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_SIBLING)
            # A dirty cache-to-cache transfer also installs into the L3.
            self.l3.access_packed(addr)
            return
        l3_access = self.l3.access_packed(addr)
        if l3_access & ACCESS_HIT:
            counts.load_hit_l3 += 1
            counts.l3_hits += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_L3)
        else:
            counts.l3_misses += 1
            counts.load_llc_miss += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_MEM)

    def _store(
        self,
        addr: int,
        tick: int,
        outstanding: list[int],
        counts: SampleCounts,
    ) -> None:
        line = addr >> LINE_SHIFT
        # Streaming prefetcher probe (see _load).
        page4k = line >> 6
        trackers = self._stream_trackers
        last = trackers.get(page4k)
        trackers[page4k] = line
        if last is not None:
            if line == last + 1:
                self._prefetch_ahead(line, counts)
        elif len(trackers) > _STREAM_TRACKERS:
            trackers.pop(next(iter(trackers)))
        # DTLB with the L1 hit check inlined.
        dtlb = self.dtlb
        page = addr >> PAGE_SHIFT
        dtlb_l1 = dtlb.l1
        tlb_set = dtlb_l1._sets[page & dtlb_l1._set_mask]
        if page in tlb_set:
            tlb_set.move_to_end(page)
            dtlb.stats.l1_hits += 1
        elif dtlb.translate_miss(page) == TRANSLATE_STLB_HIT:
            counts.dtlb_stlb_hits += 1
        else:
            counts.dtlb_walks += 1
            counts.dtlb_walk_cycles += _PAGE_WALK_CYCLES
        # L1D (write) with the hit check inlined.
        l1d = self.l1d
        cache_set = l1d._sets[line & l1d._set_mask]
        if line in cache_set:
            l1d.stats.hits += 1
            cache_set.move_to_end(line)
            cache_set[line] = True
            state = self.directory.state(self.core_id, line)
            if state is MesiState.SHARED:
                # Upgrade: invalidate other sharers, goes on the bus.
                response = self.directory.upgrade(self.core_id, line)
                self._record_snoop(response, counts)
                counts.offcore_rfo += 1
            elif state is MesiState.EXCLUSIVE:
                self.directory.write_hit_owned(self.core_id, line)
            return
        access = l1d.fill_miss(cache_set, line, True)
        self._handle_l1d_eviction(access, counts)
        if line in self._lfb:
            counts.load_hit_lfb += 1  # stores merging into an in-flight fill
            return
        l2_access = self.l2.access_packed(addr, True)
        if l2_access & ACCESS_HIT:
            counts.l2_hits += 1
            state = self.directory.state(self.core_id, line)
            if state is MesiState.SHARED:
                response = self.directory.upgrade(self.core_id, line)
                self._record_snoop(response, counts)
                counts.offcore_rfo += 1
            elif state is MesiState.EXCLUSIVE:
                self.directory.write_hit_owned(self.core_id, line)
            return
        counts.l2_misses += 1
        counts.offcore_rfo += 1
        self._handle_l2_eviction(l2_access, counts)
        self._lfb.append(line)
        response = self.directory.write_miss(self.core_id, line)
        if response is not SnoopResponse.NONE:
            self._record_snoop(response, counts)
            heapq.heappush(outstanding, tick + _MLP_SERVICE_SIBLING)
            self.l3.access_packed(addr, True)
            return
        l3_access = self.l3.access_packed(addr, True)
        if l3_access & ACCESS_HIT:
            counts.l3_hits += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_L3)
        else:
            counts.l3_misses += 1
            heapq.heappush(outstanding, tick + _MLP_SERVICE_MEM)

    # ------------------------------------------------------------------
    # Driver.
    # ------------------------------------------------------------------

    def prewarm(
        self,
        profile: PhaseProfile,
        private_budget_lines: int | None = None,
        install_shared_and_code: bool = True,
    ) -> None:
        """Install the expected steady-state resident set before sampling.

        A few thousand sampled operations cannot touch a multi-megabyte
        working set even once, so without pre-warming every first touch
        would read as a compulsory LLC miss and the measured rates would
        describe a cold start instead of the steady state the paper
        measures (it applies a ramp-up period for exactly this reason).
        Pre-warming installs, coldest-first so LRU order matches access
        frequency, the Zipf heads of the phase's regions:

        * the hot region into the L1D,
        * the warm-tier head into the L2 and the warm tier into the L3
          (up to ``private_budget_lines`` — the driver divides the L3
          between sibling cores so pre-warming cannot thrash itself),
        * the shared warm tier and the hot code head into the shared L3
          (once per socket: ``install_shared_and_code``).

        Args:
            profile: The phase (or union-of-phases) footprint to warm.
            private_budget_lines: L3 lines this core may fill with its
                private warm tier (default: the full warm tier).
            install_shared_and_code: Install the node-shared regions too;
                the driver enables this for one core only.
        """
        private_base = trace_mod.PRIVATE_DATA_BASE + self.core_id * trace_mod.PRIVATE_DATA_STRIDE
        hot_lines = trace_mod.HOT_REGION_BYTES >> LINE_SHIFT
        hot_first = private_base >> LINE_SHIFT
        self.l1d.install_span(hot_first, hot_lines)

        warm_bytes = min(trace_mod.WARM_REGION_BYTES, profile.data_working_set)
        warm_first = (private_base + trace_mod.HOT_REGION_BYTES) >> LINE_SHIFT
        warm_lines = max(1, warm_bytes >> LINE_SHIFT)
        if private_budget_lines is not None:
            warm_lines = min(warm_lines, max(1, private_budget_lines))
        l2_head = min(warm_lines, (self.l2.config.size // 2) >> LINE_SHIFT)
        self.l3.install_span(warm_first, warm_lines)
        self.l2.install_span(warm_first, l2_head)

        # The private L1I / L2 hold this core's hot code head regardless
        # of who warms the shared L3.
        code_first = trace_mod.USER_CODE_BASE >> LINE_SHIFT
        code_lines = max(4, min(profile.code_footprint, 3 << 20) >> LINE_SHIFT)
        l1i_head = min(code_lines, self.l1i.config.size >> LINE_SHIFT)
        l2_code_head = min(code_lines, (self.l2.config.size // 2) >> LINE_SHIFT)
        self.l2.install_span(code_first, l2_code_head)
        self.l1i.install_span(code_first, l1i_head)

        if not install_shared_and_code:
            return

        if profile.shared_fraction > 0:
            shared_bytes = min(
                trace_mod.SHARED_WARM_BYTES // 2, profile.shared_working_set
            )
            shared_first = trace_mod.SHARED_DATA_BASE >> LINE_SHIFT
            self.l3.install_span(shared_first, max(1, shared_bytes >> LINE_SHIFT))

        self.l3.install_span(code_first, code_lines)

    def run_sample(
        self,
        profile: PhaseProfile,
        n_ops: int,
        rng: np.random.Generator,
    ) -> SampleCounts:
        """Simulate ``n_ops`` sampled instructions of ``profile``.

        Returns:
            Raw sample counters (unscaled).  Cycle accounting and scaling
            to the phase's nominal instruction count happen in
            :class:`repro.arch.processor.Processor`.

        The loop body is deliberately flat: the op stream is consumed as
        parallel columns, scalar counters are accumulated in locals and
        flushed into ``counts`` once, and the MLP tracking is inlined —
        this is the hottest loop in the repository.
        """
        counts = SampleCounts()
        stream = synthesize_stream(profile, n_ops, self.core_id, rng)
        codes = stream.codes
        addresses = stream.addresses
        takens = stream.takens
        pcs = stream.pcs
        outstanding: list[int] = []
        heappop = heapq.heappop
        fetch = self._fetch
        load = self._load
        store = self._store
        predict = self.branch.predict_and_update
        mispredicts = 0
        mlp_active = 0
        mlp_sum = 0
        for tick, code in enumerate(codes):
            while outstanding and outstanding[0] <= tick:
                heappop(outstanding)
            if outstanding:
                mlp_active += 1
                mlp_sum += len(outstanding)
            if code & OP_FETCH_FLAG:
                # New 16-byte fetch block (precomputed at synthesis time).
                fetch(pcs[tick], counts)
                code ^= OP_FETCH_FLAG
            if code == OP_LOAD:
                load(addresses[tick], tick, outstanding, counts)
            elif code == OP_STORE:
                store(addresses[tick], tick, outstanding, counts)
            elif code == OP_BRANCH:
                if not predict(addresses[tick], takens[tick]):
                    mispredicts += 1
        # Per-class tallies are pure functions of the stream — precomputed
        # vectorised at synthesis time instead of counted per op here.
        tallies = stream.tallies
        counts.instructions = n_ops
        counts.kernel_instructions = tallies.kernel
        counts.loads = tallies.loads
        counts.stores = tallies.stores
        counts.branches_retired = tallies.branches
        counts.branch_mispredicts = mispredicts
        counts.int_ops = tallies.int_alu
        counts.x87_ops = tallies.fp_x87
        counts.sse_ops = tallies.fp_sse
        counts.mlp_active = mlp_active
        counts.mlp_sum = mlp_sum
        return counts

    def run_compact(self, sample, discard: bool = False) -> SampleCounts:
        """Simulate one :class:`~repro.arch.batch.CompactSample`.

        The batched-engine twin of :meth:`run_sample`: walks only the
        compacted interesting events (loads, stores, line-changing
        fetches), replays the branch stream through the predictor in one
        tight pass, applies the elided same-line fetches as batched
        counter increments, and computes the MLP integrals post hoc from
        the recorded fill deadlines.  Produces counters and
        microarchitectural state bit-identical to feeding the same
        synthesised ops through :meth:`run_sample`.

        The body is one flat fused loop: the per-event work of
        :meth:`_fetch` / :meth:`_load` / :meth:`_store` — including the
        cache fills, TLB/STLB walks, prefetch installs and the coherence
        directory's no-other-holder fast paths — is inlined with every
        shared structure and counter held in locals, flushed into the
        returned :class:`SampleCounts` (and the per-level ``.stats``)
        once.  Three locality fast paths shortcut provably state-free
        work (see the inline proofs): repeat-page TLB probes on both
        sides, repeat-line loads, and the lazily written-back stream
        tracker.  Keep the reference methods and this kernel in lockstep
        — the equivalence tests pin them together.

        Args:
            sample: The compacted sample to simulate.
            discard: The caller will throw the counters away (a warm-up
                sample); skips the post-hoc MLP computation.
        """
        counts = SampleCounts()
        codes = sample.codes
        ticks = sample.ticks
        mem_lines = sample.mem_lines
        mem_pages = sample.mem_pages
        fetch_lines = sample.fetch_lines
        fetch_pages = sample.fetch_pages

        l1i = self.l1i
        l1i_sets, l1i_mask, l1i_assoc = l1i._sets, l1i._set_mask, l1i._assoc
        l1d = self.l1d
        l1d_sets, l1d_mask, l1d_assoc = l1d._sets, l1d._set_mask, l1d._assoc
        l2 = self.l2
        l2_sets, l2_mask, l2_assoc = l2._sets, l2._set_mask, l2._assoc
        l3 = self.l3
        l3_sets, l3_nsets, l3_assoc = l3._sets, l3._num_sets, l3._assoc
        itlb = self.itlb
        itlb_l1 = itlb.l1
        itlb_sets, itlb_mask = itlb_l1._sets, itlb_l1._set_mask
        itlb_assoc = itlb_l1._assoc
        dtlb = self.dtlb
        dtlb_l1 = dtlb.l1
        dtlb_sets, dtlb_mask = dtlb_l1._sets, dtlb_l1._set_mask
        dtlb_assoc = dtlb_l1._assoc
        stlb = itlb.stlb  # one STLB backs both the I- and D-side
        stlb_sets, stlb_mask, stlb_assoc = stlb._sets, stlb._set_mask, stlb._assoc
        directory = self.directory
        dir_lines = directory._lines
        dir_lines_get = dir_lines.get
        dir_read_miss = directory.read_miss
        dir_write_miss = directory.write_miss
        dir_upgrade = directory.upgrade
        core_id = self.core_id
        lfb = self._lfb
        lfb_append = lfb.append
        trackers = self._stream_trackers
        trackers_get = trackers.get
        last_fetch_line = self._last_fetch_line
        prefetch_pair = _prefetch_pair

        r_none = SnoopResponse.NONE
        r_hit = SnoopResponse.HIT
        r_hite = SnoopResponse.HITE
        r_hitm = SnoopResponse.HITM
        m_shared = MesiState.SHARED
        m_exclusive = MesiState.EXCLUSIVE
        m_modified = MesiState.MODIFIED

        # Local mirror of every counter the loop can touch; the per-level
        # ``.stats`` objects flush together with ``counts`` at the end.
        # Where a site increments both a stats field and a SampleCounts
        # field (e.g. every demand L2 hit), one local feeds both.
        l1i_hits = l1i_misses = l1i_evictions = 0
        l1d_hits = l1d_misses = l1d_evictions = 0
        l1d_writebacks = l1d_invalidations = 0
        l2_hits = l2_misses = l2_evictions = l2_writebacks = 0
        l3_hits = l3_misses = 0  # demand-visible (SampleCounts level)
        l3_stat_hits = l3_stat_misses = 0  # includes sibling-path fills
        l3_evictions = l3_writebacks = 0
        icache_l2_hits = icache_l3_hits = icache_mem = 0
        itlb_l1_hits = itlb_stlb_hits = itlb_walks = 0
        dtlb_l1_hits = dtlb_stlb_hits = dtlb_walks = 0
        load_hit_lfb = load_hit_l2 = load_hit_sibling = 0
        load_hit_l3 = load_llc_miss = 0
        offcore_data = offcore_code = offcore_rfo = offcore_writeback = 0
        snoop_hit = snoop_hite = snoop_hitm = 0

        push_ticks: list[int] = []
        push_deadlines: list[int] = []
        push_tick = push_ticks.append
        push_deadline = push_deadlines.append

        # A sample's first fetch is never elided (see repro.arch.batch):
        # prewarm may touch the L1I between samples, so only *within* a
        # sample is a same-line refetch provably state-preserving.
        elided = sample.elided

        # Locality fast paths, each exact by construction:
        #
        # * Only fetches touch the ITLB-L1 and only loads/stores touch
        #   the DTLB-L1, so after any access to page P that page is MRU
        #   in its L1 and a repeat access is a guaranteed hit whose
        #   move_to_end is a no-op — one compare replaces two dict probes
        #   (elided fetches are same-line, hence same-page, preserving
        #   the invariant).
        # * After any data access to line L, L is MRU in the L1D, so a
        #   load immediately repeating the line is a pure counter bump.
        #   (Stores never take it: the dirty bit and directory state
        #   still matter.)
        # * The stream tracker's entry for the *current* page lives in
        #   ``last_mline`` and is written back to the dict only when the
        #   page changes (or at sample end).  Plain-dict value updates
        #   never reorder keys, so the dict's key order — which drives
        #   the FIFO tracker eviction — matches the eagerly written
        #   reference dict at every step, and no other code reads the
        #   trackers mid-sample.
        last_ipage = -1
        last_dpage = -1
        last_mline = -1

        for code, tick, line, page4k, fline, fpage in zip(
            codes, ticks, mem_lines, mem_pages, fetch_lines, fetch_pages
        ):
            if code >= 4:  # EV_FETCH
                code -= 4
                if fpage == last_ipage:
                    itlb_l1_hits += 1
                else:
                    tlb_set = itlb_sets[fpage & itlb_mask]
                    if fpage in tlb_set:
                        tlb_set.move_to_end(fpage)
                        itlb_l1_hits += 1
                    else:
                        stlb_set = stlb_sets[fpage & stlb_mask]
                        if fpage in stlb_set:
                            stlb_set.move_to_end(fpage)
                            itlb_stlb_hits += 1
                        else:
                            itlb_walks += 1
                            if len(stlb_set) >= stlb_assoc:
                                stlb_set.popitem(last=False)
                            stlb_set[fpage] = None
                        if len(tlb_set) >= itlb_assoc:
                            tlb_set.popitem(last=False)
                        tlb_set[fpage] = None
                    last_ipage = fpage
                cache_set = l1i_sets[fline & l1i_mask]
                if fline in cache_set:
                    l1i_hits += 1
                    cache_set.move_to_end(fline)
                    hit = True
                else:
                    l1i_misses += 1
                    if len(cache_set) >= l1i_assoc:
                        cache_set.popitem(last=False)
                        l1i_evictions += 1
                    cache_set[fline] = False
                    hit = False
                if fline == last_fetch_line + 1:
                    # Next-line prefetcher (install_line: silent victims).
                    ahead = fline + 1
                    a_set = l1i_sets[ahead & l1i_mask]
                    if ahead in a_set:
                        a_set.move_to_end(ahead)
                    else:
                        if len(a_set) >= l1i_assoc:
                            a_set.popitem(last=False)
                        a_set[ahead] = False
                    a_set = l2_sets[ahead & l2_mask]
                    if ahead in a_set:
                        a_set.move_to_end(ahead)
                    else:
                        if len(a_set) >= l2_assoc:
                            a_set.popitem(last=False)
                        a_set[ahead] = False
                    a_set = l3_sets[ahead % l3_nsets]
                    if ahead in a_set:
                        a_set.move_to_end(ahead)
                    else:
                        if len(a_set) >= l3_assoc:
                            a_set.popitem(last=False)
                        a_set[ahead] = False
                last_fetch_line = fline
                if not hit:
                    l2_set = l2_sets[fline & l2_mask]
                    if fline in l2_set:
                        l2_set.move_to_end(fline)
                        l2_hits += 1
                        icache_l2_hits += 1
                    else:
                        l2_misses += 1
                        offcore_code += 1
                        if len(l2_set) >= l2_assoc:
                            victim, vdirty = l2_set.popitem(last=False)
                            l2_evictions += 1
                            if vdirty:
                                l2_writebacks += 1
                                offcore_writeback += 1
                            v_set = l1d_sets[victim & l1d_mask]
                            if victim in v_set:
                                del v_set[victim]
                                l1d_invalidations += 1
                            holders = dir_lines_get(victim)
                            if holders is not None and core_id in holders:
                                del holders[core_id]
                                if not holders:
                                    del dir_lines[victim]
                        l2_set[fline] = False
                        l3_set = l3_sets[fline % l3_nsets]
                        if fline in l3_set:
                            l3_stat_hits += 1
                            l3_set.move_to_end(fline)
                            icache_l3_hits += 1
                            l3_hits += 1
                        else:
                            l3_stat_misses += 1
                            if len(l3_set) >= l3_assoc:
                                victim, vdirty = l3_set.popitem(last=False)
                                l3_evictions += 1
                                if vdirty:
                                    l3_writebacks += 1
                            l3_set[fline] = False
                            l3_misses += 1
                            icache_mem += 1
            if code == 0:  # EV_LOAD
                if line == last_mline:
                    # Repeat of the previous data line: guaranteed L1D
                    # hit (MRU, move_to_end no-op), same page, tracker
                    # value unchanged, no prefetch trigger.
                    l1d_hits += 1
                    dtlb_l1_hits += 1
                    continue
                if page4k == last_dpage:
                    last = last_mline
                    last_mline = line
                    dtlb_l1_hits += 1
                    if line == last + 1:
                        offcore_data += prefetch_pair(
                            line,
                            l1d_sets, l1d_mask, l1d_assoc,
                            l2_sets, l2_mask, l2_assoc,
                            l3_sets, l3_nsets, l3_assoc,
                        )
                else:
                    if last_dpage >= 0:
                        trackers[last_dpage] = last_mline
                    last = trackers_get(page4k)
                    trackers[page4k] = line
                    last_dpage = page4k
                    last_mline = line
                    if last is not None:
                        if line == last + 1:
                            offcore_data += prefetch_pair(
                                line,
                                l1d_sets, l1d_mask, l1d_assoc,
                                l2_sets, l2_mask, l2_assoc,
                                l3_sets, l3_nsets, l3_assoc,
                            )
                    elif len(trackers) > _STREAM_TRACKERS:
                        trackers.pop(next(iter(trackers)))
                    tlb_set = dtlb_sets[page4k & dtlb_mask]
                    if page4k in tlb_set:
                        tlb_set.move_to_end(page4k)
                        dtlb_l1_hits += 1
                    else:
                        stlb_set = stlb_sets[page4k & stlb_mask]
                        if page4k in stlb_set:
                            stlb_set.move_to_end(page4k)
                            dtlb_stlb_hits += 1
                        else:
                            dtlb_walks += 1
                            if len(stlb_set) >= stlb_assoc:
                                stlb_set.popitem(last=False)
                            stlb_set[page4k] = None
                        if len(tlb_set) >= dtlb_assoc:
                            tlb_set.popitem(last=False)
                        tlb_set[page4k] = None
                cache_set = l1d_sets[line & l1d_mask]
                if line in cache_set:
                    l1d_hits += 1
                    cache_set.move_to_end(line)
                    continue
                l1d_misses += 1
                if len(cache_set) >= l1d_assoc:
                    victim, vdirty = cache_set.popitem(last=False)
                    l1d_evictions += 1
                    if vdirty:
                        l1d_writebacks += 1
                        # Dirty L1D victim: absorbed by the L2, or escapes.
                        v_set = l2_sets[victim & l2_mask]
                        if victim in v_set:
                            v_set[victim] = True
                        else:
                            offcore_writeback += 1
                            holders = dir_lines_get(victim)
                            if holders is not None and core_id in holders:
                                del holders[core_id]
                                if not holders:
                                    del dir_lines[victim]
                cache_set[line] = False
                if line in lfb:
                    load_hit_lfb += 1
                    continue
                l2_set = l2_sets[line & l2_mask]
                if line in l2_set:
                    l2_set.move_to_end(line)
                    load_hit_l2 += 1
                    l2_hits += 1
                    continue
                l2_misses += 1
                offcore_data += 1
                if len(l2_set) >= l2_assoc:
                    victim, vdirty = l2_set.popitem(last=False)
                    l2_evictions += 1
                    if vdirty:
                        l2_writebacks += 1
                        offcore_writeback += 1
                    v_set = l1d_sets[victim & l1d_mask]
                    if victim in v_set:
                        del v_set[victim]
                        l1d_invalidations += 1
                    holders = dir_lines_get(victim)
                    if holders is not None and core_id in holders:
                        del holders[core_id]
                        if not holders:
                            del dir_lines[victim]
                l2_set[line] = False
                lfb_append(line)
                holders = dir_lines_get(line)
                if holders is None:
                    # Directory fast path: no holders, response NONE, the
                    # requester installs in Exclusive.
                    dir_lines[line] = {core_id: m_exclusive}
                else:
                    response = dir_read_miss(core_id, line)
                    if response is not r_none:
                        if response is r_hit:
                            snoop_hit += 1
                        elif response is r_hite:
                            snoop_hite += 1
                        elif response is r_hitm:
                            snoop_hitm += 1
                        load_hit_sibling += 1
                        push_tick(tick)
                        push_deadline(tick + _MLP_SERVICE_SIBLING)
                        # Cache-to-cache transfers also install in the L3.
                        l3_set = l3_sets[line % l3_nsets]
                        if line in l3_set:
                            l3_stat_hits += 1
                            l3_set.move_to_end(line)
                        else:
                            l3_stat_misses += 1
                            if len(l3_set) >= l3_assoc:
                                victim, vdirty = l3_set.popitem(last=False)
                                l3_evictions += 1
                                if vdirty:
                                    l3_writebacks += 1
                            l3_set[line] = False
                        continue
                l3_set = l3_sets[line % l3_nsets]
                push_tick(tick)
                if line in l3_set:
                    l3_stat_hits += 1
                    l3_set.move_to_end(line)
                    load_hit_l3 += 1
                    l3_hits += 1
                    push_deadline(tick + _MLP_SERVICE_L3)
                else:
                    l3_stat_misses += 1
                    if len(l3_set) >= l3_assoc:
                        victim, vdirty = l3_set.popitem(last=False)
                        l3_evictions += 1
                        if vdirty:
                            l3_writebacks += 1
                    l3_set[line] = False
                    l3_misses += 1
                    load_llc_miss += 1
                    push_deadline(tick + _MLP_SERVICE_MEM)
            elif code == 1:  # EV_STORE
                if page4k == last_dpage:
                    last = last_mline
                    last_mline = line
                    dtlb_l1_hits += 1
                    if line == last + 1:
                        offcore_data += prefetch_pair(
                            line,
                            l1d_sets, l1d_mask, l1d_assoc,
                            l2_sets, l2_mask, l2_assoc,
                            l3_sets, l3_nsets, l3_assoc,
                        )
                else:
                    if last_dpage >= 0:
                        trackers[last_dpage] = last_mline
                    last = trackers_get(page4k)
                    trackers[page4k] = line
                    last_dpage = page4k
                    last_mline = line
                    if last is not None:
                        if line == last + 1:
                            offcore_data += prefetch_pair(
                                line,
                                l1d_sets, l1d_mask, l1d_assoc,
                                l2_sets, l2_mask, l2_assoc,
                                l3_sets, l3_nsets, l3_assoc,
                            )
                    elif len(trackers) > _STREAM_TRACKERS:
                        trackers.pop(next(iter(trackers)))
                    tlb_set = dtlb_sets[page4k & dtlb_mask]
                    if page4k in tlb_set:
                        tlb_set.move_to_end(page4k)
                        dtlb_l1_hits += 1
                    else:
                        stlb_set = stlb_sets[page4k & stlb_mask]
                        if page4k in stlb_set:
                            stlb_set.move_to_end(page4k)
                            dtlb_stlb_hits += 1
                        else:
                            dtlb_walks += 1
                            if len(stlb_set) >= stlb_assoc:
                                stlb_set.popitem(last=False)
                            stlb_set[page4k] = None
                        if len(tlb_set) >= dtlb_assoc:
                            tlb_set.popitem(last=False)
                        tlb_set[page4k] = None
                cache_set = l1d_sets[line & l1d_mask]
                if line in cache_set:
                    l1d_hits += 1
                    cache_set.move_to_end(line)
                    cache_set[line] = True
                    holders = dir_lines_get(line)
                    if holders is not None:
                        state = holders.get(core_id)
                        if state is m_shared:
                            response = dir_upgrade(core_id, line)
                            if response is r_hit:
                                snoop_hit += 1
                            elif response is r_hite:
                                snoop_hite += 1
                            elif response is r_hitm:
                                snoop_hitm += 1
                            offcore_rfo += 1
                        elif state is m_exclusive:
                            holders[core_id] = m_modified  # silent E -> M
                    continue
                l1d_misses += 1
                if len(cache_set) >= l1d_assoc:
                    victim, vdirty = cache_set.popitem(last=False)
                    l1d_evictions += 1
                    if vdirty:
                        l1d_writebacks += 1
                        v_set = l2_sets[victim & l2_mask]
                        if victim in v_set:
                            v_set[victim] = True
                        else:
                            offcore_writeback += 1
                            holders = dir_lines_get(victim)
                            if holders is not None and core_id in holders:
                                del holders[core_id]
                                if not holders:
                                    del dir_lines[victim]
                cache_set[line] = True
                if line in lfb:
                    load_hit_lfb += 1  # stores merging into in-flight fill
                    continue
                l2_set = l2_sets[line & l2_mask]
                if line in l2_set:
                    l2_set.move_to_end(line)
                    l2_set[line] = True
                    l2_hits += 1
                    holders = dir_lines_get(line)
                    if holders is not None:
                        state = holders.get(core_id)
                        if state is m_shared:
                            response = dir_upgrade(core_id, line)
                            if response is r_hit:
                                snoop_hit += 1
                            elif response is r_hite:
                                snoop_hite += 1
                            elif response is r_hitm:
                                snoop_hitm += 1
                            offcore_rfo += 1
                        elif state is m_exclusive:
                            holders[core_id] = m_modified
                    continue
                l2_misses += 1
                offcore_rfo += 1
                if len(l2_set) >= l2_assoc:
                    victim, vdirty = l2_set.popitem(last=False)
                    l2_evictions += 1
                    if vdirty:
                        l2_writebacks += 1
                        offcore_writeback += 1
                    v_set = l1d_sets[victim & l1d_mask]
                    if victim in v_set:
                        del v_set[victim]
                        l1d_invalidations += 1
                    holders = dir_lines_get(victim)
                    if holders is not None and core_id in holders:
                        del holders[core_id]
                        if not holders:
                            del dir_lines[victim]
                l2_set[line] = True
                lfb_append(line)
                holders = dir_lines_get(line)
                if holders is None:
                    # Directory fast path: RFO with no other holder.
                    dir_lines[line] = {core_id: m_modified}
                else:
                    response = dir_write_miss(core_id, line)
                    if response is not r_none:
                        if response is r_hit:
                            snoop_hit += 1
                        elif response is r_hite:
                            snoop_hite += 1
                        elif response is r_hitm:
                            snoop_hitm += 1
                        push_tick(tick)
                        push_deadline(tick + _MLP_SERVICE_SIBLING)
                        l3_set = l3_sets[line % l3_nsets]
                        if line in l3_set:
                            l3_stat_hits += 1
                            l3_set.move_to_end(line)
                            l3_set[line] = True
                        else:
                            l3_stat_misses += 1
                            if len(l3_set) >= l3_assoc:
                                victim, vdirty = l3_set.popitem(last=False)
                                l3_evictions += 1
                                if vdirty:
                                    l3_writebacks += 1
                            l3_set[line] = True
                        continue
                l3_set = l3_sets[line % l3_nsets]
                push_tick(tick)
                if line in l3_set:
                    l3_stat_hits += 1
                    l3_set.move_to_end(line)
                    l3_set[line] = True
                    l3_hits += 1
                    push_deadline(tick + _MLP_SERVICE_L3)
                else:
                    l3_stat_misses += 1
                    if len(l3_set) >= l3_assoc:
                        victim, vdirty = l3_set.popitem(last=False)
                        l3_evictions += 1
                        if vdirty:
                            l3_writebacks += 1
                    l3_set[line] = True
                    l3_misses += 1
                    push_deadline(tick + _MLP_SERVICE_MEM)

        self._last_fetch_line = last_fetch_line
        if last_dpage >= 0:
            trackers[last_dpage] = last_mline  # tracker write-back

        # The branch stream trains the predictor in one tight pass — its
        # state is independent of the memory hierarchy, so replay order
        # relative to the event loop is immaterial.
        mispredicts = self.branch.predict_batch(
            sample.branch_pcs, sample.branch_takens
        )

        # Flush the locals: elided fetches are guaranteed L1I + ITLB-L1
        # hits (see repro.arch.batch), applied in one batched increment.
        l1i_stats = l1i.stats
        l1i_stats.hits += l1i_hits + elided
        l1i_stats.misses += l1i_misses
        l1i_stats.evictions += l1i_evictions
        l1d_stats = l1d.stats
        l1d_stats.hits += l1d_hits
        l1d_stats.misses += l1d_misses
        l1d_stats.evictions += l1d_evictions
        l1d_stats.writebacks += l1d_writebacks
        l1d_stats.invalidations += l1d_invalidations
        l2_stats = l2.stats
        l2_stats.hits += l2_hits
        l2_stats.misses += l2_misses
        l2_stats.evictions += l2_evictions
        l2_stats.writebacks += l2_writebacks
        l3_stats = l3.stats
        l3_stats.hits += l3_stat_hits
        l3_stats.misses += l3_stat_misses
        l3_stats.evictions += l3_evictions
        l3_stats.writebacks += l3_writebacks
        itlb_stats = itlb.stats
        itlb_stats.l1_hits += itlb_l1_hits + elided
        itlb_stats.stlb_hits += itlb_stlb_hits
        itlb_stats.walks += itlb_walks
        itlb_stats.walk_cycles += itlb_walks * _PAGE_WALK_CYCLES
        dtlb_stats = dtlb.stats
        dtlb_stats.l1_hits += dtlb_l1_hits
        dtlb_stats.stlb_hits += dtlb_stlb_hits
        dtlb_stats.walks += dtlb_walks
        dtlb_stats.walk_cycles += dtlb_walks * _PAGE_WALK_CYCLES

        counts.l1i_accesses = l1i_hits + l1i_misses + elided
        counts.l1i_hits = l1i_hits + elided
        counts.l1i_misses = l1i_misses
        counts.icache_l2_hits = icache_l2_hits
        counts.icache_l3_hits = icache_l3_hits
        counts.icache_mem = icache_mem
        counts.itlb_stlb_hits = itlb_stlb_hits
        counts.itlb_walks = itlb_walks
        counts.itlb_walk_cycles = itlb_walks * _PAGE_WALK_CYCLES
        counts.dtlb_stlb_hits = dtlb_stlb_hits
        counts.dtlb_walks = dtlb_walks
        counts.dtlb_walk_cycles = dtlb_walks * _PAGE_WALK_CYCLES
        counts.load_hit_lfb = load_hit_lfb
        counts.load_hit_l2 = load_hit_l2
        counts.load_hit_sibling = load_hit_sibling
        counts.load_hit_l3 = load_hit_l3
        counts.load_llc_miss = load_llc_miss
        counts.l2_hits = l2_hits
        counts.l2_misses = l2_misses
        counts.l3_hits = l3_hits
        counts.l3_misses = l3_misses
        counts.offcore_data = offcore_data
        counts.offcore_code = offcore_code
        counts.offcore_rfo = offcore_rfo
        counts.offcore_writeback = offcore_writeback
        counts.snoop_hit = snoop_hit
        counts.snoop_hite = snoop_hite
        counts.snoop_hitm = snoop_hitm

        tallies = sample.tallies
        counts.instructions = sample.n_ops
        counts.kernel_instructions = tallies.kernel
        counts.loads = tallies.loads
        counts.stores = tallies.stores
        counts.branches_retired = tallies.branches
        counts.branch_mispredicts = mispredicts
        counts.int_ops = tallies.int_alu
        counts.x87_ops = tallies.fp_x87
        counts.sse_ops = tallies.fp_sse
        if not discard:
            from repro.arch.batch import mlp_from_deadlines

            counts.mlp_sum, counts.mlp_active = mlp_from_deadlines(
                push_ticks, push_deadlines, sample.n_ops
            )
        return counts

    def reset(self) -> None:
        """Flush all private state (between workloads)."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()
        self.itlb.l1.flush()
        self.dtlb.l1.flush()
        self.itlb.stlb.flush()
        self.branch.reset()
        self._lfb.clear()
        self._stream_trackers.clear()
        self._last_fetch_line = -2


def wrong_path_branches(mispredicts: int) -> int:
    """Speculative wrong-path branch executions caused by mispredictions."""
    return mispredicts * _WRONG_PATH_BRANCHES
