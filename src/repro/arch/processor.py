"""Socket/core topology and the phase-to-raw-events driver.

:class:`Processor` assembles the Table III machine — two sockets of six
out-of-order cores, each with split 32 KB L1s, a 256 KB private L2, and a
12 MB L3 shared per socket — and drives :class:`~repro.arch.core_model.
CoreModel` instances over the phase profiles a workload produced.

Simulation protocol (mirroring Section IV-C of the paper):

* each phase gets a *ramp-up* (warm-up) sample whose counters are
  discarded, then a measured sample;
* several cores run the phase concurrently (big-data tasks are
  data-parallel), sharing the socket's L3 and coherence directory so
  sibling hits and snoop responses happen for real;
* measured sample counters are cycle-accounted and scaled from the sample
  size to the phase's nominal instruction count, then summed over phases
  into one raw-event mapping per workload run.
"""

from __future__ import annotations

import gc

from dataclasses import dataclass

import numpy as np

from repro.arch.batch import PhasePlan, plan_workload
from repro.arch.cache import CacheConfig, SetAssociativeCache
from repro.arch.coherence import CoherenceDirectory
from repro.arch.core_model import CoreModel, wrong_path_branches
from repro.arch.pipeline import CycleAccounting, CycleModel, SampleCounts
from repro.arch.trace import PhaseProfile
from repro.errors import ConfigurationError
from repro.obs.timeline import current_timeline

__all__ = ["ProcessorConfig", "Processor", "events_from_sample"]


@dataclass(frozen=True)
class ProcessorConfig:
    """Table III hardware configuration."""

    sockets: int = 2
    cores_per_socket: int = 6
    frequency_ghz: float = 2.4
    l3_size: int = 12 * 1024 * 1024
    l3_associativity: int = 16
    hyperthreading: bool = False  # disabled in the paper's setup
    turbo_boost: bool = False  # disabled in the paper's setup

    def __post_init__(self) -> None:
        if self.sockets <= 0 or self.cores_per_socket <= 0:
            raise ConfigurationError("sockets and cores_per_socket must be positive")
        if self.hyperthreading or self.turbo_boost:
            raise ConfigurationError(
                "the modelled testbed runs with Hyper-Threading and Turbo "
                "Boost disabled (Table III); enable is not supported"
            )


def _merge_counts(total: SampleCounts, part: SampleCounts) -> None:
    """Accumulate ``part`` into ``total`` field by field."""
    for name in vars(part):
        setattr(total, name, getattr(total, name) + getattr(part, name))


def _union_footprint(profiles: list[PhaseProfile]) -> PhaseProfile:
    """A profile whose footprints cover every phase (for one pre-warm)."""
    from dataclasses import replace

    base = max(profiles, key=lambda p: p.data_working_set)
    return replace(
        base,
        code_footprint=max(p.code_footprint for p in profiles),
        data_working_set=max(p.data_working_set for p in profiles),
        shared_working_set=max(p.shared_working_set for p in profiles),
        shared_fraction=max(p.shared_fraction for p in profiles),
    )


def events_from_sample(
    counts: SampleCounts,
    accounting: CycleAccounting,
    scale: float,
) -> dict[str, float]:
    """Convert sample counters + cycle accounting into raw PMU events.

    Args:
        counts: Aggregated sample counters for one phase.
        accounting: Cycle breakdown for the same sample.
        scale: Nominal-instructions / sampled-instructions factor.

    Returns:
        Mapping from raw event name (a subset of
        :data:`repro.metrics.derivation.REQUIRED_EVENTS`) to scaled count.
    """
    br_executed = counts.branches_retired + wrong_path_branches(counts.branch_mispredicts)
    user_instructions = counts.instructions - counts.kernel_instructions
    events = {
        "inst_retired.any": counts.instructions,
        "cpu_clk_unhalted.core": accounting.cycles,
        "mem_inst_retired.loads": counts.loads,
        "mem_inst_retired.stores": counts.stores,
        "br_inst_retired.all_branches": counts.branches_retired,
        "arith.int": counts.int_ops,
        "fp_comp_ops_exe.x87": counts.x87_ops,
        "fp_comp_ops_exe.sse_fp": counts.sse_ops,
        "inst_retired.kernel": counts.kernel_instructions,
        "inst_retired.user": user_instructions,
        "uops_retired.any": accounting.uops_retired,
        "l1i.misses": counts.l1i_misses,
        "l1i.hits": counts.l1i_hits,
        "l1i.cycles_stalled": accounting.fetch_stall,
        "l2_rqsts.miss": counts.l2_misses,
        "l2_rqsts.hit": counts.l2_hits,
        "llc.misses": counts.l3_misses,
        "llc.hits": counts.l3_hits,
        "mem_load_retired.hit_lfb": counts.load_hit_lfb,
        "mem_load_retired.l2_hit": counts.load_hit_l2,
        "mem_load_retired.other_core_l2_hit_hitm": counts.load_hit_sibling,
        "mem_load_retired.llc_unshared_hit": counts.load_hit_l3,
        "mem_load_retired.llc_miss": counts.load_llc_miss,
        "itlb_misses.any": counts.itlb_walks,
        "itlb_misses.walk_cycles": counts.itlb_walk_cycles,
        "dtlb_misses.any": counts.dtlb_walks,
        "dtlb_misses.walk_cycles": counts.dtlb_walk_cycles,
        "dtlb_misses.stlb_hit": counts.dtlb_stlb_hits,
        "br_misp_retired.all_branches": counts.branch_mispredicts,
        "br_inst_exec.any": br_executed,
        "ild_stall.any": accounting.ild_stall,
        "decoder_stall.any": accounting.decoder_stall,
        "rat_stalls.any": accounting.rat_stall,
        "resource_stalls.any": accounting.resource_stall,
        "uops_executed.core_active_cycles": accounting.uops_exe_cycles,
        "uops_executed.core_stall_cycles": accounting.uops_stall_cycles,
        "offcore_requests.demand.read_data": counts.offcore_data,
        "offcore_requests.demand.read_code": counts.offcore_code,
        "offcore_requests.demand.rfo": counts.offcore_rfo,
        "offcore_requests.writeback": counts.offcore_writeback,
        "snoop_response.hit": counts.snoop_hit,
        "snoop_response.hite": counts.snoop_hite,
        "snoop_response.hitm": counts.snoop_hitm,
        "offcore_requests_outstanding.cycles_sum": counts.mlp_sum,
        "offcore_requests_outstanding.active_cycles": counts.mlp_active,
        "mem_access.any": counts.loads + counts.stores,
    }
    return {name: value * scale for name, value in events.items()}


class Processor:
    """The Table III two-socket Westmere-like machine.

    Phase simulation runs on socket 0 (the paper pins measurement to
    per-core counters and averages; cross-socket traffic is not separately
    modelled).  The other socket exists so topology-dependent consumers
    (e.g. the cluster model's core-count arithmetic) see the real machine.
    """

    def __init__(self, config: ProcessorConfig | None = None) -> None:
        self.config = config or ProcessorConfig()
        self.l3 = SetAssociativeCache(
            CacheConfig("L3", self.config.l3_size, self.config.l3_associativity)
        )
        self.directory = CoherenceDirectory(self.config.cores_per_socket)
        self.cores = [
            CoreModel(core_id, self.l3, self.directory)
            for core_id in range(self.config.cores_per_socket)
        ]
        self._cycle_model = CycleModel()

    @property
    def total_cores(self) -> int:
        """All cores in the machine (both sockets)."""
        return self.config.sockets * self.config.cores_per_socket

    def run_phase(
        self,
        profile: PhaseProfile,
        rng: np.random.Generator,
        active_cores: int = 4,
        ops_per_core: int = 8000,
        warmup_fraction: float = 0.3,
        prewarm: bool = True,
        engine: str = "batched",
        plan: PhasePlan | None = None,
    ) -> dict[str, float]:
        """Simulate one phase and return scaled raw events.

        Args:
            profile: The phase to simulate.
            rng: Seeded generator; consumed deterministically.
            active_cores: How many sibling cores run the phase.
            ops_per_core: Measured sample size per core.
            warmup_fraction: Ramp-up sample (fraction of ``ops_per_core``)
                whose counters are discarded, mirroring the paper's
                ramp-up protocol.
            prewarm: Install the steady-state resident set first.
                ``run_workload`` pre-warms once with the union footprint
                and disables the per-phase pass.
            engine: ``"batched"`` compacts each sample to its interesting
                events first (:mod:`repro.arch.batch`); ``"windowed"`` is
                the per-op reference loop.  Bit-identical by contract.
            plan: Pre-synthesised samples for this phase (batched engine
                only); when given, ``rng`` is not consumed — the caller
                already drew the phase's randomness into the plan.

        Raises:
            ConfigurationError: If ``active_cores`` exceeds the socket.
        """
        if not 1 <= active_cores <= self.config.cores_per_socket:
            raise ConfigurationError(
                f"active_cores={active_cores} must be in "
                f"[1, {self.config.cores_per_socket}]"
            )
        if ops_per_core <= 0:
            raise ConfigurationError("ops_per_core must be positive")
        if engine not in ("batched", "windowed"):
            raise ConfigurationError(f"unknown simulation engine: {engine!r}")

        total = SampleCounts()
        cores = self.cores[:active_cores]
        if engine == "batched":
            if plan is None:
                plan = plan_workload(
                    [profile],
                    rng,
                    [core.core_id for core in cores],
                    ops_per_core,
                    warmup_fraction,
                )[0]
            for core, warmup in zip(cores, plan.warmups):
                if prewarm:
                    core.prewarm(profile)  # steady-state resident set
                core.run_compact(warmup, discard=True)  # ramp-up, discarded
            for core, measured in zip(cores, plan.measured):
                _merge_counts(total, core.run_compact(measured))
        else:
            warmup_ops = max(1, int(ops_per_core * warmup_fraction))
            for core in cores:
                if prewarm:
                    core.prewarm(profile)  # steady-state resident set
                core.run_sample(profile, warmup_ops, rng)  # ramp-up, discarded
            for core in cores:
                part = core.run_sample(profile, ops_per_core, rng)
                _merge_counts(total, part)

        accounting = self._cycle_model.account(total, profile.uops_per_instruction)
        scale = profile.instructions / max(1, total.instructions)
        return events_from_sample(total, accounting, scale)

    def run_workload(
        self,
        profiles: list[PhaseProfile],
        rng: np.random.Generator,
        active_cores: int = 4,
        ops_per_core: int = 8000,
        warmup_fraction: float = 0.3,
        engine: str = "batched",
        plan: list[PhasePlan] | None = None,
    ) -> dict[str, float]:
        """Simulate a workload's phases back to back and sum raw events.

        Private core state is flushed before the first phase (a fresh
        process); it persists *across* phases of the same workload, as it
        would on real hardware.

        Args:
            engine: See :meth:`run_phase`.  With the batched engine every
                window's synthesis is hoisted ahead of all simulation
                (simulation consumes no randomness, so the draw order —
                and hence the result — is unchanged).
            plan: Pre-synthesised plan for all phases, one
                :class:`~repro.arch.batch.PhasePlan` per profile in order
                (batched engine only).  Callers batching across slaves or
                workloads pass plans built from each slave's own rng with
                a shared scratch; ``rng`` is then not consumed here.
        """
        if not profiles:
            raise ConfigurationError("run_workload needs at least one phase profile")
        if plan is not None and len(plan) != len(profiles):
            raise ConfigurationError("plan length must match profiles")
        # The hot loops allocate steadily (directory entries, fill
        # tuples) but almost nothing cyclic; generational GC passes in
        # the middle of a workload are pure overhead, so pause collection
        # for the duration and restore the caller's setting after.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run_workload_inner(
                profiles, rng, active_cores, ops_per_core,
                warmup_fraction, engine, plan,
            )
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run_workload_inner(
        self,
        profiles: list[PhaseProfile],
        rng: np.random.Generator,
        active_cores: int,
        ops_per_core: int,
        warmup_fraction: float,
        engine: str,
        plan: list[PhasePlan] | None,
    ) -> dict[str, float]:
        self.reset()
        union = _union_footprint(profiles)
        l3_lines = self.config.l3_size // 64
        code_lines = min(max(4, union.code_footprint // 64), (3 << 20) // 64)
        shared_lines = (
            min((4 << 20) // 64, max(1, union.shared_working_set // 64))
            if union.shared_fraction > 0
            else 0
        )
        private_budget = max(
            1024, (l3_lines - code_lines - shared_lines) // (active_cores + 1)
        )
        for index, core in enumerate(self.cores[:active_cores]):
            core.prewarm(
                union,
                private_budget_lines=private_budget,
                install_shared_and_code=(index == 0),
            )
        if engine == "batched" and plan is None:
            plan = plan_workload(
                profiles,
                rng,
                [core.core_id for core in self.cores[:active_cores]],
                ops_per_core,
                warmup_fraction,
            )
        sampler = current_timeline()
        totals: dict[str, float] = {}
        for window, profile in enumerate(profiles):
            events = self.run_phase(
                profile,
                rng,
                active_cores=active_cores,
                ops_per_core=ops_per_core,
                warmup_fraction=warmup_fraction,
                prewarm=False,
                engine=engine,
                plan=plan[window] if plan is not None else None,
            )
            if sampler is not None:
                # Observational: the sampler copies `events` and derives
                # window metrics from the copy — the measurement is done.
                sampler.sim_window(
                    window, profile.name, profile.instructions, events
                )
            for name, value in events.items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def reset(self) -> None:
        """Flush all cores, the L3 and the coherence directory."""
        for core in self.cores:
            core.reset()
        self.l3.flush()
        self.directory = CoherenceDirectory(self.config.cores_per_socket)
        for core in self.cores:
            core.directory = self.directory
