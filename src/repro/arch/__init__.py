"""Simulated Westmere-like microarchitecture (Table III testbed)."""

from repro.arch.branch import BranchStats, GsharePredictor
from repro.arch.cache import CacheAccess, CacheConfig, CacheStats, SetAssociativeCache
from repro.arch.coherence import CoherenceDirectory, MesiState, SnoopResponse, SnoopStats
from repro.arch.core_model import CoreModel
from repro.arch.offcore import OffcoreCounters
from repro.arch.pipeline import CycleAccounting, CycleModel, Latencies, SampleCounts
from repro.arch.processor import Processor, ProcessorConfig, events_from_sample
from repro.arch.tlb import Tlb, TlbConfig, TlbHierarchy, TlbOutcome
from repro.arch.trace import (
    InstructionMix,
    MemOp,
    OpKind,
    PhaseProfile,
    merge_profiles,
    synthesize_ops,
)

__all__ = [
    "BranchStats",
    "GsharePredictor",
    "CacheAccess",
    "CacheConfig",
    "CacheStats",
    "SetAssociativeCache",
    "CoherenceDirectory",
    "MesiState",
    "SnoopResponse",
    "SnoopStats",
    "CoreModel",
    "OffcoreCounters",
    "CycleAccounting",
    "CycleModel",
    "Latencies",
    "SampleCounts",
    "Processor",
    "ProcessorConfig",
    "events_from_sample",
    "Tlb",
    "TlbConfig",
    "TlbHierarchy",
    "TlbOutcome",
    "InstructionMix",
    "MemOp",
    "OpKind",
    "PhaseProfile",
    "merge_profiles",
    "synthesize_ops",
]
