"""Batched window-level simulation: compact event streams per sample.

The reference engine (:meth:`~repro.arch.core_model.CoreModel.run_sample`)
walks every synthesised operation through a Python dispatch loop.  Most
ops never touch microarchitectural state, though: ALU/FP/other ops only
advance the tick, branches only train the (self-contained) predictor, and
the majority of frontend fetches re-probe the 64-byte line the previous
fetch just made MRU — a guaranteed hit that changes nothing but four
counters.  This module exploits that: it synthesises *all* windows of a
workload (warm-up and measured samples for every core, every phase) in
one up-front vectorised pass over preallocated buffers, then compacts
each sample down to the events the simulation actually has to execute.

A :class:`CompactSample` carries, per sample:

* the *interesting events* — loads, stores, and fetch-block transitions
  that enter a new cache line — as parallel plain-list columns in
  original op order, with each event's original tick (the MLP integral
  needs it);
* the count of *elided* same-line fetches, applied to the L1I/ITLB
  counters in one batched increment;
* the full branch outcome stream, replayed through the predictor in a
  separate tight loop (its state is independent of the memory
  hierarchy);
* the vectorised per-class tallies the synthesis already computed.

Bit-identity with the per-op reference loop is an invariant, not an
aspiration: the simulation consumes no randomness (all draws happen at
synthesis time, in an unchanged order), elided fetches are provably
state-preserving (the line and its page are MRU in the L1I/ITLB and
nothing touches either between consecutive fetches), and the MLP
integral is computed post hoc from the recorded fill deadlines via the
closed form of the reference loop's occupancy count.  The equivalence is
pinned by tests (``tests/arch/test_batch_equivalence.py``) and by the
``bench_speed --check`` gate.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.arch.tlb import PAGE_SHIFT
from repro.arch.trace import (
    OP_BRANCH,
    OP_FETCH_FLAG,
    OP_STORE,
    OpTallies,
    PhaseProfile,
    SynthScratch,
    synthesize_columns,
)

__all__ = [
    "EV_LOAD",
    "EV_STORE",
    "EV_NONE",
    "EV_FETCH",
    "CompactSample",
    "PhasePlan",
    "synthesize_compact",
    "plan_workload",
    "mlp_from_deadlines",
]

_LINE_SHIFT = 6  # 64-byte lines (keep in sync with core_model.LINE_SHIFT)
_OP_CODE_MASK = OP_FETCH_FLAG - 1

#: Compact event codes: low bits name the data-side op (load/store/none),
#: :data:`EV_FETCH` marks a non-elided frontend fetch riding the same op.
EV_LOAD = 0
EV_STORE = 1
EV_NONE = 2
EV_FETCH = 4


class CompactSample(NamedTuple):
    """One synthesised sample, reduced to the events that do work.

    Attributes:
        n_ops: Ops the sample represents (ticks; most never appear in
            ``codes`` — they are ALU/FP ops, branches, or elided
            fetches).
        codes: Per event, ``EV_LOAD``/``EV_STORE``/``EV_NONE`` plus
            :data:`EV_FETCH` when the op opens a new 64-byte fetch line.
        ticks: Original op index per event (drives the MLP integral).
        mem_lines: Data-side 64-byte line per event (0 for fetch-only
            events; the simulation kernel never needs the raw address).
        mem_pages: Data-side 4 KiB page per event — doubles as the
            stream-tracker key and the DTLB page.
        fetch_lines: Fetch-side line per event (for ``EV_FETCH``).
        fetch_pages: Fetch-side page per event (for ``EV_FETCH``).
        elided: Same-line fetches removed from the event list; each is a
            guaranteed L1I + ITLB-L1 hit applied as batched counter
            increments.  The *first* fetch of the sample is never
            elided: pre-warming may touch the L1I between samples, so
            only *within* a sample is a same-line refetch provably
            state-preserving.
        branch_pcs: Branch-site PCs in stream order (the predictor pass).
        branch_takens: Branch outcomes aligned with ``branch_pcs``.
        tallies: Vectorised per-class op counts.
    """

    n_ops: int
    codes: list[int]
    ticks: list[int]
    mem_lines: list[int]
    mem_pages: list[int]
    fetch_lines: list[int]
    fetch_pages: list[int]
    elided: int
    branch_pcs: list[int]
    branch_takens: list[bool]
    tallies: OpTallies


class PhasePlan(NamedTuple):
    """All synthesised samples of one window (phase): per-core warm-up
    samples (counters discarded) and per-core measured samples."""

    profile: PhaseProfile
    warmups: tuple[CompactSample, ...]
    measured: tuple[CompactSample, ...]


def synthesize_compact(
    profile: PhaseProfile,
    n_ops: int,
    core_id: int,
    rng: np.random.Generator,
    scratch: SynthScratch | None = None,
) -> CompactSample:
    """Synthesise one sample and compact it to its interesting events.

    Consumes ``rng`` exactly like :func:`~repro.arch.trace.
    synthesize_stream` (the compaction is pure numpy post-processing), so
    hoisting and batching compact synthesis never changes what is drawn.
    """
    cols = synthesize_columns(profile, n_ops, core_id, rng, scratch=scratch)
    codes = cols.codes
    pcs = cols.pcs

    bare = codes & _OP_CODE_MASK
    fetch = codes >= OP_FETCH_FLAG  # flag is the top bit of the code
    is_mem = bare <= OP_STORE

    # Same-line fetch elision: a fetch whose 64-byte line equals the
    # previous fetch's line is a guaranteed L1I + ITLB-L1 hit with no
    # state change (the line/page are MRU and nothing touches the L1I or
    # ITLB in between; the next-line prefetcher needs line == last + 1).
    fetch_idx = np.nonzero(fetch)[0]
    fetch_lines = pcs[fetch_idx] >> _LINE_SHIFT
    elide = np.zeros(len(fetch_idx), dtype=bool)
    if len(fetch_idx) > 1:
        np.equal(fetch_lines[1:], fetch_lines[:-1], out=elide[1:])
    fetch_keep = fetch.copy()
    fetch_keep[fetch_idx[elide]] = False

    event = is_mem | fetch_keep
    ev_idx = np.nonzero(event)[0]
    ev_codes = np.where(is_mem[ev_idx], bare[ev_idx], EV_NONE)
    ev_codes[fetch_keep[ev_idx]] += EV_FETCH

    is_branch = bare == OP_BRANCH
    ev_addresses = cols.addresses[ev_idx]
    ev_pcs = pcs[ev_idx]
    return CompactSample(
        n_ops=n_ops,
        codes=ev_codes.tolist(),
        ticks=ev_idx.tolist(),
        mem_lines=(ev_addresses >> _LINE_SHIFT).tolist(),
        mem_pages=(ev_addresses >> PAGE_SHIFT).tolist(),
        fetch_lines=(ev_pcs >> _LINE_SHIFT).tolist(),
        fetch_pages=(ev_pcs >> PAGE_SHIFT).tolist(),
        elided=int(elide.sum()),
        branch_pcs=cols.addresses[is_branch].tolist(),
        branch_takens=cols.takens[is_branch].tolist(),
        tallies=cols.tallies,
    )


def plan_workload(
    profiles: list[PhaseProfile],
    rng: np.random.Generator,
    active_core_ids: list[int],
    ops_per_core: int,
    warmup_fraction: float,
    scratch: SynthScratch | None = None,
) -> list[PhasePlan]:
    """Synthesise every window of a workload up front, in batch.

    The per-window rng draw order is identical to the interleaved
    reference protocol (per phase: each core's warm-up sample, then each
    core's measured sample) — simulation consumes no randomness, so
    hoisting all synthesis ahead of all simulation is bit-identical.
    One :class:`~repro.arch.trace.SynthScratch` (default: a fresh one)
    backs every sample's uniform draws, so a whole workload — and, when
    the caller passes the same scratch for several slaves or workloads,
    a whole suite — reuses one set of preallocated buffers.
    """
    scratch = scratch if scratch is not None else SynthScratch()
    warmup_ops = max(1, int(ops_per_core * warmup_fraction))
    plan: list[PhasePlan] = []
    for profile in profiles:
        warmups = tuple(
            synthesize_compact(profile, warmup_ops, core_id, rng, scratch)
            for core_id in active_core_ids
        )
        measured = tuple(
            synthesize_compact(profile, ops_per_core, core_id, rng, scratch)
            for core_id in active_core_ids
        )
        plan.append(PhasePlan(profile=profile, warmups=warmups, measured=measured))
    return plan


def mlp_from_deadlines(
    push_ticks: list[int], deadlines: list[int], n_ops: int
) -> tuple[int, int]:
    """The MLP integrals, computed post hoc from recorded fills.

    The reference loop pushes a service deadline per off-core fill and,
    each tick, pops expired entries then counts the survivors.  An entry
    pushed at tick ``t`` with deadline ``d`` is therefore outstanding at
    exactly the ticks ``u`` with ``t < u < d`` (and ``u < n_ops``), so
    the occupancy series is a difference array — no heap required.

    Returns:
        ``(mlp_sum, mlp_active)``: total outstanding-entry ticks and the
        number of ticks with at least one entry outstanding, equal
        bit-for-bit to the reference loop's counters.
    """
    if not push_ticks:
        return 0, 0
    starts = np.asarray(push_ticks, dtype=np.int64) + 1
    ends = np.minimum(np.asarray(deadlines, dtype=np.int64), n_ops)
    delta = np.bincount(starts, minlength=n_ops + 1)
    delta -= np.bincount(ends, minlength=n_ops + 1)
    occupancy = np.cumsum(delta[:n_ops])
    return int(occupancy.sum()), int(np.count_nonzero(occupancy))
