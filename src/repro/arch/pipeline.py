"""Cycle accounting and pipeline-stall model.

Superscalar out-of-order processors "prevent us from precisely breaking
down the execution time" (Section III-B); like the PMU events the paper
counts, this model attributes *stall cycles* to architectural causes
rather than attempting an exact interval simulation.  The accounting
identity is::

    cycles = base_issue + frontend_exposed + backend_exposed + flush

where ``base_issue`` is the uop stream pushed through a 4-wide issue
engine, ``frontend_exposed`` covers instruction-fetch stalls (L1I misses
by service level, ITLB activity) plus decode stalls (ILD / decoder),
``backend_exposed`` covers data-side resource stalls (load service
latency by hit level discounted by the measured memory-level parallelism,
DTLB walks, store/RFO pressure, RAT pressure from uop expansion), and
``flush`` is the branch-misprediction penalty.

Every stall term is also exported as the corresponding raw PMU event so
that :mod:`repro.metrics.derivation` can compute the Table II ratios
(FETCH_STALL, ILD_STALL, DECODER_STALL, RAT_STALL, RESOURCE_STALL,
UOPS_EXE_CYCLE, UOPS_STALL, ITLB_CYCLE, DTLB_CYCLE and ILP).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Latencies", "SampleCounts", "CycleAccounting", "CycleModel"]


@dataclass(frozen=True)
class Latencies:
    """Service latencies (cycles) of the modelled Westmere-like hierarchy."""

    l2_hit: int = 10
    l3_hit: int = 38
    sibling_l2: int = 60
    memory: int = 190
    lfb_hit: int = 6
    stlb_fill: int = 7
    branch_flush: int = 15
    issue_width: int = 4


@dataclass
class SampleCounts:
    """Raw counters accumulated over one simulated sample of a phase.

    All counts are in units of the sample (``instructions`` sampled ops);
    the core model scales them to the phase's nominal instruction count
    after cycle accounting.
    """

    instructions: int = 0
    kernel_instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches_retired: int = 0
    branch_mispredicts: int = 0
    int_ops: int = 0
    x87_ops: int = 0
    sse_ops: int = 0

    # Instruction-side memory hierarchy.
    l1i_accesses: int = 0
    l1i_hits: int = 0
    l1i_misses: int = 0
    icache_l2_hits: int = 0
    icache_l3_hits: int = 0
    icache_mem: int = 0
    itlb_stlb_hits: int = 0
    itlb_walks: int = 0
    itlb_walk_cycles: int = 0

    # Data-side memory hierarchy.
    dtlb_stlb_hits: int = 0
    dtlb_walks: int = 0
    dtlb_walk_cycles: int = 0
    load_hit_lfb: int = 0
    load_hit_l2: int = 0
    load_hit_sibling: int = 0
    load_hit_l3: int = 0
    load_llc_miss: int = 0

    # Unified cache totals (demand data + code).
    l2_hits: int = 0
    l2_misses: int = 0
    l3_hits: int = 0
    l3_misses: int = 0

    # Offcore traffic.
    offcore_data: int = 0
    offcore_code: int = 0
    offcore_rfo: int = 0
    offcore_writeback: int = 0

    # Snoop responses observed by this core's requests.
    snoop_hit: int = 0
    snoop_hite: int = 0
    snoop_hitm: int = 0

    # Memory-level parallelism integrals (arbitrary but consistent units).
    mlp_sum: float = 0.0
    mlp_active: float = 0.0

    @property
    def mlp(self) -> float:
        """Mean outstanding misses while at least one is outstanding."""
        return self.mlp_sum / self.mlp_active if self.mlp_active else 0.0


@dataclass(frozen=True)
class CycleAccounting:
    """Cycle breakdown produced by :class:`CycleModel`."""

    cycles: float
    base_issue: float
    fetch_stall: float
    ild_stall: float
    decoder_stall: float
    rat_stall: float
    resource_stall: float
    flush: float
    uops_exe_cycles: float
    uops_stall_cycles: float
    uops_retired: float


class CycleModel:
    """Turns sample counters plus a uop-expansion factor into cycles.

    The constants are calibrated so a cache-friendly integer workload
    lands near IPC 2 and a memory-bound workload near IPC 0.5, matching
    the broad IPC range the big-data characterization literature reports
    for these suites.
    """

    #: Fraction of frontend fetch latency not hidden by the fetch queue.
    FETCH_EXPOSURE = 0.35
    #: Fraction of backend data latency not hidden beyond MLP overlap.
    BACKEND_EXPOSURE = 0.85
    #: Store/RFO buffer pressure cycles per RFO.
    RFO_PRESSURE = 4.0
    #: RAT stall cycles per *extra* uop from instruction cracking.
    RAT_PER_EXTRA_UOP = 0.35
    #: Baseline ILD/decoder stall per instruction (length-changing prefixes).
    ILD_BASE = 0.004
    DECODER_BASE = 0.003
    #: How strongly backend backpressure propagates into decode stalls.
    BACKPRESSURE_COUPLING = 0.06

    def __init__(self, latencies: Latencies | None = None) -> None:
        self.latencies = latencies or Latencies()

    def account(self, counts: SampleCounts, uops_per_instruction: float) -> CycleAccounting:
        """Compute the cycle breakdown for one sample.

        Args:
            counts: Sample counters from the core model.
            uops_per_instruction: The phase's uop expansion factor.
        """
        lat = self.latencies
        uops = counts.instructions * uops_per_instruction
        base_issue = uops / lat.issue_width

        fetch_latency = (
            counts.icache_l2_hits * lat.l2_hit
            + counts.icache_l3_hits * lat.l3_hit
            + counts.icache_mem * lat.memory
            + counts.itlb_walk_cycles
            + counts.itlb_stlb_hits * lat.stlb_fill
        )
        fetch_stall = fetch_latency * self.FETCH_EXPOSURE

        raw_backend = (
            counts.load_hit_lfb * lat.lfb_hit
            + counts.load_hit_l2 * lat.l2_hit
            + counts.load_hit_sibling * lat.sibling_l2
            + counts.load_hit_l3 * lat.l3_hit
            + counts.load_llc_miss * lat.memory
            + counts.dtlb_walk_cycles
            + counts.dtlb_stlb_hits * lat.stlb_fill
        )
        # Out-of-order overlap: concurrent misses share their latency.
        mlp = max(1.0, counts.mlp)
        overlap = 1.0 + 0.6 * (mlp - 1.0)
        resource_stall = (
            raw_backend * self.BACKEND_EXPOSURE / overlap
            + counts.offcore_rfo * self.RFO_PRESSURE
        )

        rat_stall = max(0.0, uops - counts.instructions) * self.RAT_PER_EXTRA_UOP

        backpressure = resource_stall / base_issue if base_issue else 0.0
        ild_stall = counts.instructions * self.ILD_BASE * (
            1.0 + self.BACKPRESSURE_COUPLING * backpressure * 10.0
        )
        decoder_stall = counts.instructions * self.DECODER_BASE * (
            1.0 + self.BACKPRESSURE_COUPLING * backpressure * 10.0
        ) + max(0.0, uops_per_instruction - 1.0) * counts.instructions * 0.01

        flush = counts.branch_mispredicts * lat.branch_flush

        cycles = base_issue + fetch_stall + resource_stall + rat_stall + flush + (
            ild_stall + decoder_stall
        ) * 0.5

        # Execute-port occupancy: frontend starvation and full backend
        # stalls leave the execution units idle; partial overlap keeps
        # some ports busy during backend stalls.
        uops_stall_cycles = min(
            0.95 * cycles,
            0.9 * resource_stall + 0.4 * fetch_stall + 0.5 * flush + rat_stall,
        )
        uops_exe_cycles = max(0.0, cycles - uops_stall_cycles)

        return CycleAccounting(
            cycles=cycles,
            base_issue=base_issue,
            fetch_stall=fetch_stall,
            ild_stall=ild_stall,
            decoder_stall=decoder_stall,
            rat_stall=rat_stall,
            resource_stall=resource_stall,
            flush=flush,
            uops_exe_cycles=uops_exe_cycles,
            uops_stall_cycles=uops_stall_cycles,
            uops_retired=uops,
        )
