"""Offcore request classification (Table II nos. 35-38).

"Offcore requests tell us about individual core requests to the LLC":
everything that escapes a core's private L1/L2 hierarchy is classified as
a demand data read, a demand code read, a request-for-ownership (RFO), or
a dirty-line write-back.  The Table II metrics are the *shares* of each
class in total offcore traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OffcoreCounters"]


@dataclass
class OffcoreCounters:
    """Per-core offcore request counters."""

    data_reads: int = 0
    code_reads: int = 0
    rfo: int = 0
    writebacks: int = 0

    @property
    def total(self) -> int:
        return self.data_reads + self.code_reads + self.rfo + self.writebacks

    def record_data_read(self) -> None:
        self.data_reads += 1

    def record_code_read(self) -> None:
        self.code_reads += 1

    def record_rfo(self) -> None:
        self.rfo += 1

    def record_writeback(self) -> None:
        self.writebacks += 1

    def shares(self) -> dict[str, float]:
        """Return the four traffic shares (zero if no traffic at all)."""
        total = self.total
        if total == 0:
            return {"data": 0.0, "code": 0.0, "rfo": 0.0, "writeback": 0.0}
        return {
            "data": self.data_reads / total,
            "code": self.code_reads / total,
            "rfo": self.rfo / total,
            "writeback": self.writebacks / total,
        }
