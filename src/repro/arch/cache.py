"""Set-associative cache model with LRU replacement.

The simulated memory hierarchy of the testbed processor (Table III) is built
from instances of :class:`SetAssociativeCache`: split 32 KB L1I/L1D, a
256 KB private unified L2 per core, and a 12 MB L3 shared by the six cores
of a socket.  The model is a functional tag-array simulation — real sets,
real ways, real LRU state — driven by the sampled address streams the
instrumentation layer synthesises from engine activity.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import NamedTuple

from repro.errors import ConfigurationError

__all__ = ["CacheConfig", "CacheAccess", "CacheStats", "SetAssociativeCache"]


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Attributes:
        name: Human-readable level name (e.g. ``"L1D"``).
        size: Total capacity in bytes.
        associativity: Number of ways per set.
        line_size: Cache line size in bytes.
        write_back: Whether dirty lines are written back on eviction
            (all caches in the modelled Westmere hierarchy are write-back).
    """

    name: str
    size: int
    associativity: int
    line_size: int = 64
    write_back: bool = True

    def __post_init__(self) -> None:
        if self.size <= 0 or self.associativity <= 0 or self.line_size <= 0:
            raise ConfigurationError(f"{self.name}: all cache dimensions must be positive")
        if not _is_power_of_two(self.line_size):
            raise ConfigurationError(f"{self.name}: line size must be a power of two")
        if self.size % (self.associativity * self.line_size) != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size} is not divisible by "
                f"associativity*line_size = {self.associativity * self.line_size}"
            )
        # Note: the set count need not be a power of two — the modelled
        # Westmere L3 (12 MB, 16-way) has 12288 sets across three slices.

    @property
    def num_sets(self) -> int:
        """Number of sets in the tag array."""
        return self.size // (self.associativity * self.line_size)


class CacheAccess(NamedTuple):
    """Outcome of a single cache access (NamedTuple: created per access).

    Attributes:
        hit: Whether the line was present.
        line_addr: The line-aligned address that was accessed.
        evicted_line: Line address evicted to make room, if any.
        writeback: Whether the evicted line was dirty (needs a write-back).
    """

    hit: bool
    line_addr: int
    evicted_line: int | None = None
    writeback: bool = False


#: Shared immutable fields for the overwhelmingly common hit case.
_NO_EVICTION: tuple[int | None, bool] = (None, False)


@dataclass
class CacheStats:
    """Running hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A write-back, write-allocate set-associative cache with true LRU.

    Each set is an :class:`collections.OrderedDict` mapping line address to
    a dirty bit, ordered from least to most recently used.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._num_sets = config.num_sets
        self._line_shift = config.line_size.bit_length() - 1
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]

    def line_address(self, addr: int) -> int:
        """Return the line-aligned address containing byte ``addr``."""
        return addr >> self._line_shift

    def _set_for(self, line_addr: int) -> OrderedDict[int, bool]:
        return self._sets[line_addr % self._num_sets]

    def access(self, addr: int, is_write: bool = False) -> CacheAccess:
        """Access byte address ``addr``; fill on miss (write-allocate).

        Returns:
            A :class:`CacheAccess` describing hit/miss and any eviction.
        """
        line = addr >> self._line_shift
        cache_set = self._sets[line % self._num_sets]
        if line in cache_set:
            self.stats.hits += 1
            cache_set.move_to_end(line)
            if is_write:
                cache_set[line] = True
            return CacheAccess(True, line, *_NO_EVICTION)

        self.stats.misses += 1
        evicted_line: int | None = None
        writeback = False
        if len(cache_set) >= self.config.associativity:
            evicted_line, evicted_dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            writeback = evicted_dirty and self.config.write_back
            if writeback:
                self.stats.writebacks += 1
        cache_set[line] = is_write
        return CacheAccess(False, line, evicted_line, writeback)

    def install_line(self, line_addr: int) -> None:
        """Fill ``line_addr`` without demand-access statistics (prefetch).

        Hardware prefetchers bring lines in ahead of demand; PMU demand
        events do not count them.  A victim is still evicted (silently —
        the caller models prefetches as best-effort and ignores dirty
        victims, a second-order effect).
        """
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            return
        if len(cache_set) >= self.config.associativity:
            cache_set.popitem(last=False)
        cache_set[line_addr] = False

    def contains(self, addr: int) -> bool:
        """Whether the line holding byte ``addr`` is resident (no LRU update)."""
        line = self.line_address(addr)
        return line in self._set_for(line)

    def line_resident(self, line_addr: int) -> bool:
        """Whether line-aligned address ``line_addr`` is resident."""
        return line_addr in self._set_for(line_addr)

    def is_dirty(self, line_addr: int) -> bool:
        """Whether resident line ``line_addr`` is dirty (False if absent)."""
        return self._set_for(line_addr).get(line_addr, False)

    def invalidate_line(self, line_addr: int) -> bool:
        """Drop line ``line_addr`` if present (coherence invalidation).

        Returns:
            True if the line was present and dirty (i.e. data was lost to
            the invalidation and must have been transferred).
        """
        cache_set = self._set_for(line_addr)
        if line_addr not in cache_set:
            return False
        dirty = cache_set.pop(line_addr)
        self.stats.invalidations += 1
        return dirty

    def set_dirty(self, line_addr: int) -> bool:
        """Mark resident line ``line_addr`` dirty (a write-back landing).

        Returns:
            True if the line was resident (the write-back was absorbed).
        """
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            cache_set[line_addr] = True
            return True
        return False

    def mark_clean(self, line_addr: int) -> None:
        """Clear the dirty bit of a resident line (after a coherence WB)."""
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            cache_set[line_addr] = False

    def flush(self) -> None:
        """Empty the cache, keeping statistics."""
        for cache_set in self._sets:
            cache_set.clear()

    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(cache_set) for cache_set in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self.config
        return (
            f"SetAssociativeCache({cfg.name}, {cfg.size >> 10}KB, "
            f"{cfg.associativity}-way, {cfg.line_size}B lines)"
        )
