"""Set-associative cache model with LRU replacement.

The simulated memory hierarchy of the testbed processor (Table III) is built
from instances of :class:`SetAssociativeCache`: split 32 KB L1I/L1D, a
256 KB private unified L2 per core, and a 12 MB L3 shared by the six cores
of a socket.  The model is a functional tag-array simulation — real sets,
real ways, real LRU state — driven by the sampled address streams the
instrumentation layer synthesises from engine activity.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import NamedTuple

from repro.errors import ConfigurationError

__all__ = [
    "CacheConfig",
    "CacheAccess",
    "CacheStats",
    "SetAssociativeCache",
    "ACCESS_HIT",
    "ACCESS_WRITEBACK",
    "ACCESS_EVICTED",
    "ACCESS_VICTIM_SHIFT",
    "unpack_access",
]


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Attributes:
        name: Human-readable level name (e.g. ``"L1D"``).
        size: Total capacity in bytes.
        associativity: Number of ways per set.
        line_size: Cache line size in bytes.
        write_back: Whether dirty lines are written back on eviction
            (all caches in the modelled Westmere hierarchy are write-back).
    """

    name: str
    size: int
    associativity: int
    line_size: int = 64
    write_back: bool = True

    def __post_init__(self) -> None:
        if self.size <= 0 or self.associativity <= 0 or self.line_size <= 0:
            raise ConfigurationError(f"{self.name}: all cache dimensions must be positive")
        if not _is_power_of_two(self.line_size):
            raise ConfigurationError(f"{self.name}: line size must be a power of two")
        if self.size % (self.associativity * self.line_size) != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size} is not divisible by "
                f"associativity*line_size = {self.associativity * self.line_size}"
            )
        # Note: the set count need not be a power of two — the modelled
        # Westmere L3 (12 MB, 16-way) has 12288 sets across three slices.

    @property
    def num_sets(self) -> int:
        """Number of sets in the tag array."""
        return self.size // (self.associativity * self.line_size)


class CacheAccess(NamedTuple):
    """Outcome of a single cache access (convenience decoding of the
    packed-int protocol used on the hot path — see :data:`ACCESS_HIT`).

    Attributes:
        hit: Whether the line was present.
        line_addr: The line-aligned address that was accessed.
        evicted_line: Line address evicted to make room, if any.
        writeback: Whether the evicted line was dirty (needs a write-back).
    """

    hit: bool
    line_addr: int
    evicted_line: int | None = None
    writeback: bool = False


# Packed access-result protocol.  The simulator performs millions of cache
# accesses per workload; constructing a CacheAccess for each one dominated
# the profile, so :meth:`SetAssociativeCache.access_packed` encodes the
# outcome in a single int instead:
#
#   bit 0 (ACCESS_HIT)       line was present
#   bit 1 (ACCESS_WRITEBACK) the victim was dirty (write-back required)
#   bit 2 (ACCESS_EVICTED)   a victim line was evicted
#   bits 3+                  the victim's line address (valid iff bit 2)
#
# A hit is always exactly ``1`` and a victimless miss exactly ``0`` — both
# are interned small ints, so the common cases allocate nothing.
ACCESS_HIT = 0b001
ACCESS_WRITEBACK = 0b010
ACCESS_EVICTED = 0b100
ACCESS_VICTIM_SHIFT = 3


def unpack_access(packed: int, line_addr: int) -> CacheAccess:
    """Decode a packed access result into a :class:`CacheAccess`."""
    if packed & ACCESS_EVICTED:
        return CacheAccess(
            bool(packed & ACCESS_HIT),
            line_addr,
            packed >> ACCESS_VICTIM_SHIFT,
            bool(packed & ACCESS_WRITEBACK),
        )
    return CacheAccess(bool(packed & ACCESS_HIT), line_addr)


@dataclass
class CacheStats:
    """Running hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A write-back, write-allocate set-associative cache with true LRU.

    Each set is an :class:`collections.OrderedDict` mapping line address to
    a dirty bit, ordered from least to most recently used.
    """

    __slots__ = (
        "config",
        "stats",
        "_num_sets",
        "_set_mask",
        "_line_shift",
        "_assoc",
        "_write_back",
        "_sets",
    )

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._num_sets = config.num_sets
        # Power-of-two set counts (every cache but the modelled L3) index
        # with a precomputed mask; 0 means "fall back to modulo".
        self._set_mask = (
            self._num_sets - 1 if _is_power_of_two(self._num_sets) else 0
        )
        self._line_shift = config.line_size.bit_length() - 1
        self._assoc = config.associativity
        self._write_back = config.write_back
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]

    def line_address(self, addr: int) -> int:
        """Return the line-aligned address containing byte ``addr``."""
        return addr >> self._line_shift

    def _set_for(self, line_addr: int) -> OrderedDict[int, bool]:
        mask = self._set_mask
        return self._sets[line_addr & mask if mask else line_addr % self._num_sets]

    def access(self, addr: int, is_write: bool = False) -> CacheAccess:
        """Access byte address ``addr``; fill on miss (write-allocate).

        Returns:
            A :class:`CacheAccess` describing hit/miss and any eviction.
            (Convenience wrapper; the simulator hot path calls
            :meth:`access_packed` directly.)
        """
        return unpack_access(
            self.access_packed(addr, is_write), addr >> self._line_shift
        )

    def access_packed(self, addr: int, is_write: bool = False) -> int:
        """Access byte address ``addr``; fill on miss (write-allocate).

        Returns:
            The packed outcome (see the ``ACCESS_*`` bit constants):
            ``1`` for a hit, ``0`` for a victimless miss, otherwise
            ``ACCESS_EVICTED | writeback_bit | victim_line << 3``.
        """
        line = addr >> self._line_shift
        mask = self._set_mask
        cache_set = self._sets[line & mask if mask else line % self._num_sets]
        stats = self.stats
        if line in cache_set:
            stats.hits += 1
            cache_set.move_to_end(line)
            if is_write:
                cache_set[line] = True
            return ACCESS_HIT

        return self.fill_miss(cache_set, line, is_write)

    def fill_miss(
        self, cache_set: OrderedDict[int, bool], line: int, is_write: bool
    ) -> int:
        """Complete a demand miss: account stats, evict, fill ``line``.

        Split out of :meth:`access_packed` so the core model can inline
        the hit check (one set probe) and only pay a call on the miss
        path.  ``cache_set`` must be the set ``line`` maps to.

        Returns:
            The packed miss outcome (``ACCESS_HIT`` clear; see
            :meth:`access_packed`).
        """
        stats = self.stats
        stats.misses += 1
        packed = 0
        if len(cache_set) >= self._assoc:
            evicted_line, evicted_dirty = cache_set.popitem(last=False)
            stats.evictions += 1
            packed = ACCESS_EVICTED | (evicted_line << ACCESS_VICTIM_SHIFT)
            if evicted_dirty and self._write_back:
                stats.writebacks += 1
                packed |= ACCESS_WRITEBACK
        cache_set[line] = is_write
        return packed

    def install_line(self, line_addr: int) -> None:
        """Fill ``line_addr`` without demand-access statistics (prefetch).

        Hardware prefetchers bring lines in ahead of demand; PMU demand
        events do not count them.  A victim is still evicted (silently —
        the caller models prefetches as best-effort and ignores dirty
        victims, a second-order effect).
        """
        mask = self._set_mask
        cache_set = self._sets[
            line_addr & mask if mask else line_addr % self._num_sets
        ]
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            return
        if len(cache_set) >= self._assoc:
            cache_set.popitem(last=False)
        cache_set[line_addr] = False

    def install_span(self, first_line: int, count: int) -> None:
        """Install ``count`` lines ending at ``first_line`` (coldest first).

        Equivalent to ``install_line(first_line + offset)`` for ``offset``
        descending from ``count - 1`` to 0, with the per-line call overhead
        hoisted out — pre-warming installs hundreds of thousands of lines.
        """
        sets = self._sets
        mask = self._set_mask
        num_sets = self._num_sets
        assoc = self._assoc
        capacity = num_sets * assoc
        if count >= 4 * capacity:
            # A span this large wipes the cache: each set sees >= 4x its
            # associativity in distinct installs, so every pre-existing
            # line (and every span line present before its own install)
            # is evicted before the final window lands.  The end state is
            # therefore exactly the last ``capacity`` installed lines —
            # the lowest ones, since installs run coldest-first — all
            # clean, in install order.  Rebuild that state directly
            # instead of touching millions of lines (evictions here are
            # silent by install_line semantics, so no stats are owed).
            for cache_set in sets:
                cache_set.clear()
            for line in range(first_line + capacity - 1, first_line - 1, -1):
                sets[line & mask if mask else line % num_sets][line] = False
            return
        if count >= num_sets:
            # Wide span: visit each set once and walk its arithmetic
            # subsequence of lines directly, hoisting the set lookup out
            # of the per-line loop.  install_line effects are confined
            # to the line's own set (silent evictions, no stats), so
            # reordering installs *across* sets — while keeping each
            # set's installs in original descending order — leaves the
            # final state bit-identical.  (Contiguous lines hit set
            # ``line % num_sets`` whether the cache indexes by mask or
            # by modulo, so one grouping works for both.)
            hi = first_line + count - 1
            for index in range(num_sets):
                top = hi - ((hi - index) % num_sets)
                cache_set = sets[index]
                for line in range(top, first_line - 1, -num_sets):
                    if line in cache_set:
                        cache_set.move_to_end(line)
                    else:
                        if len(cache_set) >= assoc:
                            cache_set.popitem(last=False)
                        cache_set[line] = False
            return
        for line in range(first_line + count - 1, first_line - 1, -1):
            cache_set = sets[line & mask if mask else line % num_sets]
            if line in cache_set:
                cache_set.move_to_end(line)
                continue
            if len(cache_set) >= assoc:
                cache_set.popitem(last=False)
            cache_set[line] = False

    def contains(self, addr: int) -> bool:
        """Whether the line holding byte ``addr`` is resident (no LRU update)."""
        line = self.line_address(addr)
        return line in self._set_for(line)

    def line_resident(self, line_addr: int) -> bool:
        """Whether line-aligned address ``line_addr`` is resident."""
        return line_addr in self._set_for(line_addr)

    def is_dirty(self, line_addr: int) -> bool:
        """Whether resident line ``line_addr`` is dirty (False if absent)."""
        return self._set_for(line_addr).get(line_addr, False)

    def invalidate_line(self, line_addr: int) -> bool:
        """Drop line ``line_addr`` if present (coherence invalidation).

        Returns:
            True if the line was present and dirty (i.e. data was lost to
            the invalidation and must have been transferred).
        """
        cache_set = self._set_for(line_addr)
        if line_addr not in cache_set:
            return False
        dirty = cache_set.pop(line_addr)
        self.stats.invalidations += 1
        return dirty

    def set_dirty(self, line_addr: int) -> bool:
        """Mark resident line ``line_addr`` dirty (a write-back landing).

        Returns:
            True if the line was resident (the write-back was absorbed).
        """
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            cache_set[line_addr] = True
            return True
        return False

    def mark_clean(self, line_addr: int) -> None:
        """Clear the dirty bit of a resident line (after a coherence WB)."""
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            cache_set[line_addr] = False

    def flush(self) -> None:
        """Empty the cache, keeping statistics."""
        for cache_set in self._sets:
            cache_set.clear()

    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(cache_set) for cache_set in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self.config
        return (
            f"SetAssociativeCache({cfg.name}, {cfg.size >> 10}KB, "
            f"{cfg.associativity}-way, {cfg.line_size}B lines)"
        )
