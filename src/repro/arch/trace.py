"""Phase profiles and synthetic operation streams.

This module is the contract between the software-stack engines and the
microarchitecture simulator.  When a stack executes a job, the
instrumentation layer (:mod:`repro.stacks.instrument`) condenses each
execution phase (map, shuffle, reduce, RDD stage, scan, join build ...)
into a :class:`PhaseProfile`: an aggregate description of the instruction
mix, code and data footprints, locality, sharing and branch behaviour that
the phase exhibited.  :func:`synthesize_ops` then expands a profile into a
sampled stream of concrete operations with concrete addresses, which
:class:`repro.arch.core_model.CoreModel` simulates against real tag
arrays, TLBs, branch tables and the coherence bus.

Two design points matter for realism:

* **Sampling.**  A phase that nominally represents billions of
  instructions is simulated through a deterministic sample of tens of
  thousands of operations; the resulting *rates* (misses per kilo
  instruction, stall ratios) are applied to the nominal instruction
  count.  The paper's methodology is likewise rate-based: every Table II
  metric is a ratio or a per-kilo-instruction count measured in steady
  state.
* **Zipf-skewed reuse.**  Real code and data references are heavily
  skewed towards a hot head (hot loops, hot hash buckets, hot pages).
  Addresses are therefore drawn from a power-law over the footprint:
  ``index = floor(N * u**skew)`` for uniform ``u``, so a fraction of hot
  lines absorbs most traffic while the tail still exercises capacity.
  This is what makes hit rates respond smoothly to footprint size instead
  of collapsing to all-compulsory-misses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import NamedTuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "OpKind",
    "MemOp",
    "OpStream",
    "OpTallies",
    "StreamColumns",
    "SynthScratch",
    "OP_FETCH_FLAG",
    "InstructionMix",
    "PhaseProfile",
    "synthesize_ops",
    "synthesize_stream",
    "synthesize_columns",
    "merge_profiles",
    "OP_LOAD",
    "OP_STORE",
    "OP_BRANCH",
    "OP_INT_ALU",
    "OP_FP_X87",
    "OP_FP_SSE",
    "OP_OTHER",
]

#: Base of the (simulated) user code segment.
USER_CODE_BASE = 0x0040_0000
#: Base of the (simulated) kernel code segment.
KERNEL_CODE_BASE = 0x7FFF_8000_0000
#: Base of the per-core private data heap; cores are spaced far apart.
PRIVATE_DATA_BASE = 0x0000_7000_0000_0000
#: Stride between per-core private heaps.
PRIVATE_DATA_STRIDE = 0x0000_0010_0000_0000
#: Base of the node-wide shared data region (shuffle buffers, cached RDD
#: partitions, page-cache pages).
SHARED_DATA_BASE = 0x0000_7F00_0000_0000
#: Size of the hot stack/locals region that absorbs high-locality accesses.
HOT_REGION_BYTES = 16 * 1024
#: Size of the per-core "warm" tier: the hot heads of hash tables,
#: dictionaries and buffers that keep L2/L3 hit rates high even when the
#: nominal working set is huge.
WARM_REGION_BYTES = 2 * (1 << 20)
#: Warm tier of the shared region (hot cached partitions).
SHARED_WARM_BYTES = 8 * (1 << 20)
#: Byte spacing between synthetic branch sites (distinct predictor PCs).
BRANCH_SITE_STRIDE = 256


class OpKind(enum.Enum):
    """Operation classes the core model distinguishes."""

    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    INT_ALU = "int"
    FP_X87 = "x87"
    FP_SSE = "sse"
    OTHER = "other"


#: Integer operation codes used on the simulator hot path.  The order
#: matches :meth:`InstructionMix.as_probabilities` so a mix draw *is* the
#: op code.  :data:`KIND_FROM_CODE` maps a code back to its :class:`OpKind`.
OP_LOAD = 0
OP_STORE = 1
OP_BRANCH = 2
OP_INT_ALU = 3
OP_FP_X87 = 4
OP_FP_SSE = 5
OP_OTHER = 6

KIND_FROM_CODE: tuple[OpKind, ...] = (
    OpKind.LOAD,
    OpKind.STORE,
    OpKind.BRANCH,
    OpKind.INT_ALU,
    OpKind.FP_X87,
    OpKind.FP_SSE,
    OpKind.OTHER,
)


class MemOp(NamedTuple):
    """One synthesised operation (convenience view; the hot path consumes
    the parallel arrays of :class:`OpStream` instead).

    Attributes:
        kind: Operation class.
        address: Byte address for LOAD/STORE; branch-site PC for BRANCH;
            0 otherwise.
        kernel: Whether the instruction executes in ring 0.
        taken: Branch outcome (meaningful only for BRANCH ops).
        shared: Whether a LOAD/STORE targets the shared data region.
    """

    kind: OpKind
    address: int = 0
    kernel: bool = False
    taken: bool = False
    shared: bool = False


#: Bit set in :attr:`OpStream.codes` when the op's fetch PC enters a new
#: 16-byte fetch block (i.e. the frontend must probe the L1I).  The
#: boundary test is a pure function of the PC column, so it is computed
#: vectorised at synthesis time instead of per-op in the simulation loop.
OP_FETCH_FLAG = 8
_OP_CODE_MASK = OP_FETCH_FLAG - 1


class OpTallies(NamedTuple):
    """Per-class op counts of one synthesised sample (see ``OpStream``)."""

    loads: int
    stores: int
    branches: int
    int_alu: int
    fp_x87: int
    fp_sse: int
    kernel: int


class OpStream(NamedTuple):
    """A synthesised sample as parallel plain-``list`` columns.

    One ``OpStream`` replaces ``n_ops`` :class:`MemOp` allocations — the
    core model indexes the columns directly, which is what lets a sample
    of tens of thousands of operations simulate without creating a Python
    object per instruction.

    Attributes:
        codes: Per instruction, the ``OP_*`` operation code in the low
            bits plus :data:`OP_FETCH_FLAG` when this op starts a new
            16-byte fetch block (mask with ``~OP_FETCH_FLAG`` for the
            bare code).
        addresses: Byte address (LOAD/STORE), branch-site PC (BRANCH), or 0.
        kernels: Ring-0 flag per instruction.
        takens: Branch outcome (False for non-branches).
        shareds: Whether a LOAD/STORE targets the shared data region.
        pcs: Fetch PC per instruction.
        tallies: Per-class op counts, pre-computed vectorised so the
            simulation loop does not tally per op.
    """

    codes: list[int]
    addresses: list[int]
    kernels: list[bool]
    takens: list[bool]
    shareds: list[bool]
    pcs: list[int]
    tallies: OpTallies


@dataclass(frozen=True)
class InstructionMix:
    """Fractions of retired instructions by class; must sum to at most 1.

    The remainder (1 - sum) is treated as ``OTHER`` (moves, nops, address
    generation folded into other classes, ...).
    """

    load: float
    store: float
    branch: float
    int_alu: float
    fp_x87: float = 0.0
    fp_sse: float = 0.0

    def __post_init__(self) -> None:
        parts = (self.load, self.store, self.branch, self.int_alu, self.fp_x87, self.fp_sse)
        if any(p < 0 for p in parts):
            raise ConfigurationError("instruction mix fractions must be non-negative")
        if sum(parts) > 1.0 + 1e-9:
            raise ConfigurationError(f"instruction mix sums to {sum(parts):.4f} > 1")

    @property
    def other(self) -> float:
        return max(
            0.0,
            1.0
            - (self.load + self.store + self.branch + self.int_alu + self.fp_x87 + self.fp_sse),
        )

    def as_probabilities(self) -> tuple[tuple[OpKind, float], ...]:
        """The mix as (kind, probability) pairs including OTHER."""
        return (
            (OpKind.LOAD, self.load),
            (OpKind.STORE, self.store),
            (OpKind.BRANCH, self.branch),
            (OpKind.INT_ALU, self.int_alu),
            (OpKind.FP_X87, self.fp_x87),
            (OpKind.FP_SSE, self.fp_sse),
            (OpKind.OTHER, self.other),
        )


@dataclass(frozen=True)
class PhaseProfile:
    """Aggregate description of one execution phase.

    Produced by :mod:`repro.stacks.instrument` from real engine activity
    and consumed by the core model via :func:`synthesize_ops`.

    Attributes:
        name: Phase label (e.g. ``"map"``, ``"shuffle"``, ``"stage-2"``).
        instructions: Nominal retired-instruction count the phase represents.
        mix: Instruction mix fractions.
        kernel_fraction: Fraction of instructions executing in ring 0
            (I/O-heavy phases — HDFS reads, shuffle over sockets — run
            large stretches of kernel code).
        uops_per_instruction: Micro-op expansion factor (complex framework
            code tends to crack into more uops).
        code_footprint: Bytes of hot code the phase executes.  This is the
            lever behind the paper's central finding: Hadoop's framework
            executes a far larger instruction footprint than Spark's.
        code_locality: In [0, 1]; probability that the next fetch is
            sequential rather than a jump to a Zipf-chosen location in the
            footprint.
        code_reuse_skew: Power-law exponent of jump targets (>1 = hot
            functions dominate; higher = tighter hot set).
        data_working_set: Bytes of private data the phase cycles through.
        hot_data_fraction: Fraction of data accesses landing in a small hot
            region (locals, stack, hot hashmap heads).
        data_streaming_fraction: Fraction of non-hot private accesses that
            stream sequentially (record scans) rather than revisit lines.
        data_reuse_skew: Power-law exponent of non-streaming private data
            reuse.
        data_tail_fraction: Fraction of non-streaming references that
            sweep the *full* working set instead of the warm tier (cold
            sweeps, GC-like scans); drives LLC misses and TLB walks.
        shared_fraction: Fraction of data accesses targeting the node-wide
            shared region (cached RDD partitions, shuffle buffers).
        shared_working_set: Bytes of the shared region touched by the phase.
        shared_reuse_skew: Power-law exponent of shared-region reuse; a
            skewed head is what makes sibling cores actually collide on
            lines (snoop HIT/HITM traffic).
        shared_tail_fraction: Fraction of shared references sweeping the
            full shared region instead of its warm tier.
        shared_write_fraction: Fraction of shared-region accesses that are
            stores (drives RFO traffic and HITM snoop responses).
        branch_entropy: In [0, 1]; 0 = perfectly biased branches,
            1 = 50/50 coin flips.  Controls the *outcome* stream only; the
            misprediction rate is whatever gshare achieves on it.
    """

    name: str
    instructions: int
    mix: InstructionMix
    kernel_fraction: float = 0.0
    uops_per_instruction: float = 1.3
    code_footprint: int = 64 * 1024
    code_locality: float = 0.9
    code_reuse_skew: float = 3.0
    data_working_set: int = 1 << 20
    hot_data_fraction: float = 0.4
    data_streaming_fraction: float = 0.5
    data_reuse_skew: float = 2.5
    data_tail_fraction: float = 0.18
    shared_fraction: float = 0.0
    shared_working_set: int = 1 << 20
    shared_reuse_skew: float = 3.5
    shared_tail_fraction: float = 0.25
    shared_write_fraction: float = 0.1
    branch_entropy: float = 0.15

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ConfigurationError(f"phase {self.name!r}: instructions must be positive")
        for attr in (
            "kernel_fraction",
            "code_locality",
            "hot_data_fraction",
            "data_streaming_fraction",
            "data_tail_fraction",
            "shared_fraction",
            "shared_tail_fraction",
            "shared_write_fraction",
            "branch_entropy",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"phase {self.name!r}: {attr}={value} outside [0, 1]"
                )
        for attr in ("code_reuse_skew", "data_reuse_skew", "shared_reuse_skew"):
            if getattr(self, attr) < 1.0:
                raise ConfigurationError(
                    f"phase {self.name!r}: {attr} must be >= 1 (1 = uniform)"
                )
        if self.uops_per_instruction < 1.0:
            raise ConfigurationError(
                f"phase {self.name!r}: uops_per_instruction must be >= 1"
            )
        if self.code_footprint <= 0 or self.data_working_set <= 0:
            raise ConfigurationError(f"phase {self.name!r}: footprints must be positive")
        if self.shared_working_set <= 0:
            raise ConfigurationError(f"phase {self.name!r}: shared_working_set must be positive")

    def scaled(self, factor: float) -> "PhaseProfile":
        """A copy of this profile representing ``factor``× the instructions."""
        return replace(self, instructions=max(1, int(self.instructions * factor)))


def merge_profiles(name: str, profiles: list[PhaseProfile]) -> PhaseProfile:
    """Merge phases into one, weighting parameters by instruction counts.

    Useful for collapsing many small tasks of the same kind into a single
    representative phase before simulation.

    Raises:
        ConfigurationError: If ``profiles`` is empty.
    """
    if not profiles:
        raise ConfigurationError("cannot merge an empty list of profiles")
    total = sum(p.instructions for p in profiles)
    weights = [p.instructions / total for p in profiles]

    def wavg(getter) -> float:
        return float(sum(w * getter(p) for w, p in zip(weights, profiles)))

    mix = InstructionMix(
        load=wavg(lambda p: p.mix.load),
        store=wavg(lambda p: p.mix.store),
        branch=wavg(lambda p: p.mix.branch),
        int_alu=wavg(lambda p: p.mix.int_alu),
        fp_x87=wavg(lambda p: p.mix.fp_x87),
        fp_sse=wavg(lambda p: p.mix.fp_sse),
    )
    return PhaseProfile(
        name=name,
        instructions=total,
        mix=mix,
        kernel_fraction=wavg(lambda p: p.kernel_fraction),
        uops_per_instruction=wavg(lambda p: p.uops_per_instruction),
        code_footprint=max(p.code_footprint for p in profiles),
        code_locality=wavg(lambda p: p.code_locality),
        code_reuse_skew=wavg(lambda p: p.code_reuse_skew),
        data_working_set=max(p.data_working_set for p in profiles),
        hot_data_fraction=wavg(lambda p: p.hot_data_fraction),
        data_streaming_fraction=wavg(lambda p: p.data_streaming_fraction),
        data_reuse_skew=wavg(lambda p: p.data_reuse_skew),
        data_tail_fraction=wavg(lambda p: p.data_tail_fraction),
        shared_fraction=wavg(lambda p: p.shared_fraction),
        shared_working_set=max(p.shared_working_set for p in profiles),
        shared_reuse_skew=wavg(lambda p: p.shared_reuse_skew),
        shared_tail_fraction=wavg(lambda p: p.shared_tail_fraction),
        shared_write_fraction=wavg(lambda p: p.shared_write_fraction),
        branch_entropy=wavg(lambda p: p.branch_entropy),
    )


def _zipf_offset(u: float, span: int, skew: float) -> int:
    """Map uniform ``u`` in [0,1) to a power-law-skewed byte offset.

    ``skew == 1`` is uniform; larger values concentrate mass near offset 0
    (the hot head of the region).
    """
    return int(span * (u**skew))


#: Modelled kernel hot-code footprint (syscall, network, VFS paths).
KERNEL_CODE_FOOTPRINT = 512 * 1024
#: Kernel code is also hot-path skewed.
_KERNEL_REUSE_SKEW = 3.0
#: Mean instructions per stretch of ring-0 execution (a syscall runs
#: thousands of instructions, not one) — kernel mode comes in bursts.
_KERNEL_BURST_MEAN = 400.0


def _kernel_bursts(
    kernel_fraction: float, n_ops: int, rng: np.random.Generator
) -> np.ndarray:
    """Ring-0 flags as alternating exponential user/kernel bursts.

    The long-run kernel share equals ``kernel_fraction`` while execution
    switches address spaces only every few hundred instructions, as real
    syscall-heavy code does.
    """
    if kernel_fraction <= 0.0:
        return np.zeros(n_ops, dtype=bool)
    if kernel_fraction >= 1.0:
        return np.ones(n_ops, dtype=bool)
    mean_user = _KERNEL_BURST_MEAN * (1.0 - kernel_fraction) / kernel_fraction
    flags = np.empty(n_ops, dtype=bool)
    position = 0
    in_kernel = False
    while position < n_ops:
        mean = _KERNEL_BURST_MEAN if in_kernel else mean_user
        run = 1 + int(rng.exponential(mean))
        flags[position : position + run] = in_kernel
        position += run
        in_kernel = not in_kernel
    return flags


@lru_cache(maxsize=512)
def _mix_probabilities(mix: InstructionMix) -> np.ndarray:
    """Normalised op-class distribution table for ``mix`` (memoised).

    The same phase mixes recur across warm-up and measured samples of
    every core and slave; rebuilding and renormalising the distribution
    per sample was measurable, so it is computed once per distinct mix.
    """
    _, probabilities = zip(*mix.as_probabilities())
    probs = np.asarray(probabilities, dtype=float)
    return probs / probs.sum()


def _chain_offsets(
    member: np.ndarray,
    jump: np.ndarray,
    targets: np.ndarray,
    span: int,
    n_ops: int,
) -> np.ndarray:
    """Vectorised fetch-offset chain for one address space.

    Ops where ``member`` is set belong to this chain (user or kernel).  A
    jump moves the chain to ``targets[i]``; a sequential op advances the
    previous chain offset by 4 modulo ``span``.  Equivalent to threading a
    single ``pc`` variable through the ops one at a time, but computed as
    a handful of array passes: the offset at op ``i`` is
    ``(target_of_last_jump + 4 * ops_since_that_jump) % span`` (with a
    virtual offset-0 "jump" before the first op).
    """
    chain_pos = np.cumsum(member) - 1
    jump_here = member & jump
    indices = np.arange(n_ops)
    last_jump = np.maximum.accumulate(np.where(jump_here, indices, -1))
    clamped = np.maximum(last_jump, 0)
    has_jump = last_jump >= 0
    base = np.where(has_jump, targets[clamped], 0)
    base_pos = np.where(has_jump, chain_pos[clamped], -1)
    return (base + 4 * (chain_pos - base_pos)) % span


class StreamColumns(NamedTuple):
    """A synthesised sample as numpy columns (the pre-``tolist`` form).

    Shared between :func:`synthesize_stream` (which converts every column
    to a plain list for the reference per-op loop) and the batched engine
    (:mod:`repro.arch.batch`), which compacts the columns down to the
    events the simulation actually has to walk.  ``codes`` carries
    :data:`OP_FETCH_FLAG` exactly like :attr:`OpStream.codes`.
    """

    codes: np.ndarray
    addresses: np.ndarray
    kernels: np.ndarray
    takens: np.ndarray
    shareds: np.ndarray
    pcs: np.ndarray
    tallies: OpTallies


#: Uniform ``rng.random(n_ops)`` draws one synthesis makes — sizes the
#: scratch block so a whole sample's draws fit without reallocation.
_SCRATCH_DRAWS = 13


class SynthScratch:
    """Preallocated uniform-draw buffers reused across samples.

    Synthesis makes :data:`_SCRATCH_DRAWS` full-length uniform draws per
    sample; drawing them with ``rng.random(out=view)`` into slices of one
    preallocated block produces bit-identical values (the generator
    consumes the same doubles in the same order) while the buffers are
    reused across every window, core, slave and workload of a batch
    instead of being reallocated tens of thousands of times.
    """

    __slots__ = ("_block", "_n", "_used")

    def __init__(self) -> None:
        self._block = np.empty(0, dtype=np.float64)
        self._n = 0
        self._used = 0

    def begin(self, n_ops: int) -> None:
        """Start a sample of ``n_ops`` ops; grows the block if needed."""
        needed = _SCRATCH_DRAWS * n_ops
        if self._block.size < needed:
            self._block = np.empty(needed, dtype=np.float64)
        self._n = n_ops
        self._used = 0

    def take(self) -> np.ndarray:
        """The next ``n_ops``-sized float64 view (fresh array if exhausted)."""
        start, end = self._used, self._used + self._n
        if end > self._block.size:
            return np.empty(self._n, dtype=np.float64)
        self._used = end
        return self._block[start:end]


def synthesize_columns(
    profile: PhaseProfile,
    n_ops: int,
    core_id: int,
    rng: np.random.Generator,
    scratch: SynthScratch | None = None,
) -> StreamColumns:
    """Expand ``profile`` into ``n_ops`` sampled operations for one core.

    Returns:
        A :class:`StreamColumns` of parallel numpy columns (op codes,
        addresses, ring-0 flags, branch outcomes, shared flags, fetch
        PCs).

    The synthesis is deterministic given ``rng``'s state — with or
    without ``scratch`` (the buffers only change *where* the uniform
    draws land, never what is drawn).  Branches come from a set of
    *branch sites* (stable PCs spaced through the code region,
    Zipf-weighted like the code itself) so the predictor can actually
    train on them; each site has a fixed taken-bias drawn from
    ``branch_entropy`` (low entropy = strongly biased = predictable).

    Every column is computed as vectorised numpy passes — the random
    draws are batched in a fixed order and the sequential state
    (streaming cursor, user/kernel fetch-PC chains) is expressed as
    cumulative sums and forward fills.
    """
    if n_ops <= 0:
        raise ConfigurationError("n_ops must be positive")

    if scratch is not None:
        scratch.begin(n_ops)
        rand = lambda: rng.random(out=scratch.take())  # noqa: E731
    else:
        rand = lambda: rng.random(n_ops)  # noqa: E731

    probs = _mix_probabilities(profile.mix)
    # The mix order matches the OP_* codes, so a draw is an op code.
    codes = rng.choice(len(probs), size=n_ops, p=probs)
    kernel_flags = _kernel_bursts(profile.kernel_fraction, n_ops, rng)

    # Branch sites: stable PCs with fixed biases.  The number of distinct
    # sites grows with the code footprint (bigger binaries have more
    # static branches competing for predictor state).
    n_sites = int(np.clip(profile.code_footprint // 16384, 12, 64))
    half_spread = 0.5 * (1.0 - profile.branch_entropy)
    site_bias = np.where(rng.random(n_sites) < 0.5, 0.5 - half_spread, 0.5 + half_spread)
    # Hot sites execute most often; site popularity is even more skewed
    # than code reuse (inner loops re-run their branches constantly).
    sites = np.minimum(
        (n_sites * rand() ** (profile.code_reuse_skew + 2.0)).astype(int),
        n_sites - 1,
    )
    branch_taken = rand() < site_bias[sites]

    # Code side: jump-vs-sequential decisions and Zipf jump offsets.
    is_jump = rand() >= profile.code_locality
    user_span = max(256, profile.code_footprint)
    user_targets = (
        user_span * rand() ** profile.code_reuse_skew
    ).astype(int) & ~3
    kernel_targets = (
        KERNEL_CODE_FOOTPRINT * rand() ** _KERNEL_REUSE_SKEW
    ).astype(int) & ~3

    # Data side: region choice and Zipf offsets, all pre-drawn.
    private_span = max(64, profile.data_working_set)
    shared_span = max(64, profile.shared_working_set)
    u_region = rand()
    shared_pick = u_region < profile.shared_fraction
    hot_pick = rand() < profile.hot_data_fraction
    stream_pick = rand() < profile.data_streaming_fraction
    # Two-tier reuse: most non-streaming references land in a warm region
    # (hash-table heads, live buffers); the tail sweeps the full span.
    warm_private = min(WARM_REGION_BYTES, private_span)
    warm_shared = min(SHARED_WARM_BYTES, shared_span)
    shared_warm_pick = rand() >= profile.shared_tail_fraction
    shared_spans = np.where(shared_warm_pick, warm_shared, shared_span)
    shared_offsets = (
        shared_spans * rand() ** profile.shared_reuse_skew
    ).astype(int) & ~7
    hot_offsets = rng.integers(0, HOT_REGION_BYTES, size=n_ops) & ~7
    warm_pick = rand() >= profile.data_tail_fraction
    private_spans = np.where(warm_pick, warm_private, private_span)
    private_offsets = (
        private_spans * rand() ** profile.data_reuse_skew
    ).astype(int) & ~7
    demote_store = rand() > profile.shared_write_fraction

    # Fetch PCs: two independent sequential-with-jumps chains (user and
    # kernel address spaces), interleaved by the ring-0 burst flags.
    user_offsets = _chain_offsets(
        ~kernel_flags, is_jump, user_targets, user_span, n_ops
    )
    kernel_offsets = _chain_offsets(
        kernel_flags, is_jump, kernel_targets, KERNEL_CODE_FOOTPRINT, n_ops
    )
    pcs = np.where(
        kernel_flags,
        KERNEL_CODE_BASE + kernel_offsets,
        USER_CODE_BASE + user_offsets,
    )

    # Memory addresses by region, then branch-site PCs, then demotion of
    # most shared stores to loads (shared traffic is read-dominated; all
    # cores draw from the same skewed head, so hot shared lines really
    # are resident in several private hierarchies).
    private_base = PRIVATE_DATA_BASE + core_id * PRIVATE_DATA_STRIDE
    data_base = private_base + HOT_REGION_BYTES
    is_mem = codes <= OP_STORE
    shared_sel = is_mem & shared_pick
    hot_sel = is_mem & ~shared_pick & hot_pick
    stream_sel = is_mem & ~shared_pick & ~hot_pick & stream_pick
    private_sel = is_mem & ~shared_pick & ~hot_pick & ~stream_pick
    # The streaming cursor advances 8 bytes per streaming reference;
    # its position at each such op is a cumulative count of stream ops.
    stream_positions = (private_offsets[0] + 8 * np.cumsum(stream_sel)) % private_span

    addresses = np.zeros(n_ops, dtype=np.int64)
    addresses[shared_sel] = SHARED_DATA_BASE + shared_offsets[shared_sel]
    addresses[hot_sel] = private_base + hot_offsets[hot_sel]
    addresses[stream_sel] = data_base + stream_positions[stream_sel]
    addresses[private_sel] = data_base + private_offsets[private_sel]
    is_branch = codes == OP_BRANCH
    addresses[is_branch] = USER_CODE_BASE + sites[is_branch] * BRANCH_SITE_STRIDE

    codes = np.where(
        (codes == OP_STORE) & shared_sel & demote_store, OP_LOAD, codes
    )
    takens = branch_taken & is_branch

    tallies = OpTallies(
        loads=int((codes == OP_LOAD).sum()),
        stores=int((codes == OP_STORE).sum()),
        branches=int(is_branch.sum()),
        int_alu=int((codes == OP_INT_ALU).sum()),
        fp_x87=int((codes == OP_FP_X87).sum()),
        fp_sse=int((codes == OP_FP_SSE).sum()),
        kernel=int(kernel_flags.sum()),
    )

    # Frontend fetch boundaries: the core probes the L1I only when the PC
    # enters a new 16-byte block, which depends solely on the PC column —
    # fold the decision into the op code as OP_FETCH_FLAG.
    blocks = pcs >> 4
    fetch_flags = np.empty(n_ops, dtype=bool)
    fetch_flags[0] = True
    np.not_equal(blocks[1:], blocks[:-1], out=fetch_flags[1:])
    codes = np.where(fetch_flags, codes | OP_FETCH_FLAG, codes)

    return StreamColumns(
        codes=codes,
        addresses=addresses,
        kernels=kernel_flags,
        takens=takens,
        shareds=shared_sel,
        pcs=pcs,
        tallies=tallies,
    )


def synthesize_stream(
    profile: PhaseProfile,
    n_ops: int,
    core_id: int,
    rng: np.random.Generator,
) -> OpStream:
    """Expand ``profile`` into ``n_ops`` sampled operations for one core.

    Returns:
        An :class:`OpStream` of parallel plain-list columns — the form
        the reference per-op simulation loop consumes.  This is a thin
        ``tolist`` wrapper over :func:`synthesize_columns`; the batched
        engine compacts the numpy columns directly instead.
    """
    cols = synthesize_columns(profile, n_ops, core_id, rng)
    return OpStream(
        codes=cols.codes.tolist(),
        addresses=cols.addresses.tolist(),
        kernels=cols.kernels.tolist(),
        takens=cols.takens.tolist(),
        shareds=cols.shareds.tolist(),
        pcs=cols.pcs.tolist(),
        tallies=cols.tallies,
    )


def synthesize_ops(
    profile: PhaseProfile,
    n_ops: int,
    core_id: int,
    rng: np.random.Generator,
) -> tuple[list[MemOp], list[int]]:
    """Expand ``profile`` into ``(ops, pcs)`` lists of :class:`MemOp`.

    Convenience wrapper over :func:`synthesize_stream` producing one
    :class:`MemOp` per instruction; the core model consumes the columnar
    stream directly instead.
    """
    stream = synthesize_stream(profile, n_ops, core_id, rng)
    kinds = KIND_FROM_CODE
    mask = _OP_CODE_MASK
    ops = [
        MemOp(kinds[code & mask], address, kernel, taken, shared)
        for code, address, kernel, taken, shared in zip(
            stream.codes,
            stream.addresses,
            stream.kernels,
            stream.takens,
            stream.shareds,
        )
    ]
    return ops, stream.pcs
