"""Branch predictor model.

A gshare predictor: a table of 2-bit saturating counters indexed by the
XOR of the (line-granular) branch PC and a global history register.  The
workload instrumentation layer generates branch *outcomes* (per-branch
taken biases derived from engine behaviour); the predictor then earns
whatever misprediction rate its tables achieve, which feeds the
``BR_MISS`` metric, the speculative ``BR_EXE_TO_RE`` ratio, and the
misprediction penalty in the pipeline stall model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["BranchStats", "GsharePredictor"]

_TAKEN_THRESHOLD = 2  # 2-bit counter: 0,1 predict not-taken; 2,3 predict taken


@dataclass
class BranchStats:
    """Running branch counters."""

    predicted: int = 0
    mispredicted: int = 0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredicted / self.predicted if self.predicted else 0.0


class GsharePredictor:
    """Gshare with 2-bit saturating counters and limited history mixing.

    Args:
        history_bits: Width of the global history register; the pattern
            table has ``2**history_bits`` entries.
        history_use_bits: How many history bits are XOR-ed into the index.
            Big-data branch outcomes are dominated by per-site bias rather
            than long correlated patterns, so mixing in the full history
            would only alias the tables; a few bits capture short local
            correlation while letting per-site counters train.
    """

    def __init__(self, history_bits: int = 12, history_use_bits: int = 4) -> None:
        if not 1 <= history_bits <= 24:
            raise ConfigurationError("history_bits must be in [1, 24]")
        if not 0 <= history_use_bits <= history_bits:
            raise ConfigurationError("history_use_bits must be in [0, history_bits]")
        self.history_bits = history_bits
        self.history_use_bits = history_use_bits
        self._mask = (1 << history_bits) - 1
        self._use_mask = (1 << history_use_bits) - 1
        self._table = bytearray([1]) * (1 << history_bits)
        self._history = 0
        self.stats = BranchStats()

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict branch at ``pc``, then train with the real outcome.

        Returns:
            True if the prediction was correct.
        """
        index = ((pc >> 2) ^ (self._history & self._use_mask)) & self._mask
        counter = self._table[index]
        prediction = counter >= _TAKEN_THRESHOLD
        correct = prediction == taken

        self.stats.predicted += 1
        if not correct:
            self.stats.mispredicted += 1

        if taken and counter < 3:
            self._table[index] = counter + 1
        elif not taken and counter > 0:
            self._table[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._mask
        return correct

    def predict_batch(self, pcs: list[int], takens: list[bool]) -> int:
        """Run a whole sample's branch stream through the predictor.

        Predictor state is self-contained (tables, history, stats), so
        the batched engine replays all of a sample's branches in one
        tight loop instead of a call per branch.  The table updates,
        final history and statistics are bit-identical to calling
        :meth:`predict_and_update` per branch in the same order.

        Returns:
            The number of mispredicted branches.
        """
        table = self._table
        mask = self._mask
        use_mask = self._use_mask
        history = self._history
        mispredicts = 0
        for pc, taken in zip(pcs, takens):
            index = ((pc >> 2) ^ (history & use_mask)) & mask
            counter = table[index]
            if taken:
                if counter < _TAKEN_THRESHOLD:
                    mispredicts += 1
                if counter < 3:
                    table[index] = counter + 1
                history = ((history << 1) | 1) & mask
            else:
                if counter >= _TAKEN_THRESHOLD:
                    mispredicts += 1
                if counter:
                    table[index] = counter - 1
                history = (history << 1) & mask
        self._history = history
        self.stats.predicted += len(pcs)
        self.stats.mispredicted += mispredicts
        return mispredicts

    def reset(self) -> None:
        """Clear tables and statistics."""
        self._table = bytearray([1]) * (1 << self.history_bits)
        self._history = 0
        self.stats = BranchStats()
