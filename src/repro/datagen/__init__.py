"""BDGS-equivalent synthetic data generators (all seeded/deterministic)."""

from repro.datagen.bdgs import Bdgs, DataSetSpec
from repro.datagen.graph import DirectedGraph, GraphGenerator
from repro.datagen.points import PointCloud, PointGenerator
from repro.datagen.sequencefile import SequenceFileGenerator, SequenceRecord
from repro.datagen.table import Order, OrderItem, TransactionGenerator
from repro.datagen.text import LabeledDocument, TextGenerator, Vocabulary

__all__ = [
    "Bdgs",
    "DataSetSpec",
    "DirectedGraph",
    "GraphGenerator",
    "PointCloud",
    "PointGenerator",
    "SequenceFileGenerator",
    "SequenceRecord",
    "Order",
    "OrderItem",
    "TransactionGenerator",
    "LabeledDocument",
    "TextGenerator",
    "Vocabulary",
]
