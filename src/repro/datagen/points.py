"""Numeric vector generation for the K-means workload.

BigDataBench's K-means clusters feature vectors derived from text.  We
generate Gaussian-mixture points directly: ``k`` well-separated centers
with configurable spread, so a correct K-means implementation provably
recovers the structure (tests assert recovery) and the amount of floating
point work per record matches a vector-clustering workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataGenerationError

__all__ = ["PointCloud", "PointGenerator"]


@dataclass(frozen=True)
class PointCloud:
    """Generated points with their ground-truth assignment.

    Attributes:
        points: ``(n, d)`` float array.
        true_labels: Ground-truth mixture component per point.
        true_centers: ``(k, d)`` component means.
    """

    points: np.ndarray
    true_labels: np.ndarray
    true_centers: np.ndarray


class PointGenerator:
    """Seeded Gaussian-mixture point generator."""

    def __init__(self, seed: int = 19) -> None:
        self._rng = np.random.default_rng(seed)

    def generate(
        self,
        count: int,
        dimensions: int = 8,
        clusters: int = 5,
        spread: float = 0.05,
    ) -> PointCloud:
        """Generate ``count`` points from ``clusters`` separated Gaussians.

        Centers are placed uniformly in the unit cube; ``spread`` is the
        per-component standard deviation (small relative to typical
        center separation, so clusters are recoverable).

        Raises:
            DataGenerationError: On non-positive shape parameters.
        """
        if count <= 0 or dimensions <= 0 or clusters <= 0:
            raise DataGenerationError("count, dimensions, clusters must be positive")
        if spread <= 0:
            raise DataGenerationError("spread must be positive")
        rng = self._rng
        centers = rng.random((clusters, dimensions))
        labels = rng.integers(0, clusters, size=count)
        noise = rng.normal(0.0, spread, size=(count, dimensions))
        points = centers[labels] + noise
        return PointCloud(points=points, true_labels=labels, true_centers=centers)
