"""Key/value sequence-file records (the Sort workload's input format).

Table I drives Sort with an 80 GB unstructured *sequence file*: binary
key/value records.  We generate deterministic random keys with
configurable duplication so sort implementations see realistic comparison
and shuffle-partitioning behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataGenerationError

__all__ = ["SequenceRecord", "SequenceFileGenerator"]


@dataclass(frozen=True, order=True)
class SequenceRecord:
    """One key/value record; ordering compares keys first (sort semantics)."""

    key: bytes
    value: bytes


class SequenceFileGenerator:
    """Generates sequence-file records with seeded randomness."""

    def __init__(self, seed: int = 11) -> None:
        self._rng = np.random.default_rng(seed)

    def records(
        self,
        count: int,
        key_bytes: int = 10,
        value_bytes: int = 90,
        distinct_key_fraction: float = 1.0,
    ) -> list[SequenceRecord]:
        """Generate ``count`` records.

        Args:
            count: Number of records.
            key_bytes: Key width in bytes.
            value_bytes: Value width in bytes.
            distinct_key_fraction: In (0, 1]; smaller values introduce
                duplicate keys (e.g. 0.5 means roughly half the key space,
                so each key appears about twice).

        Raises:
            DataGenerationError: On non-positive sizes or a fraction
                outside (0, 1].
        """
        if count < 0:
            raise DataGenerationError("record count must be non-negative")
        if key_bytes <= 0 or value_bytes < 0:
            raise DataGenerationError("key/value sizes must be positive")
        if not 0.0 < distinct_key_fraction <= 1.0:
            raise DataGenerationError("distinct_key_fraction must be in (0, 1]")
        if count == 0:
            return []

        distinct = max(1, int(count * distinct_key_fraction))
        key_pool = self._rng.integers(0, 256, size=(distinct, key_bytes), dtype=np.uint8)
        key_choice = self._rng.integers(0, distinct, size=count)
        values = self._rng.integers(0, 256, size=(count, value_bytes), dtype=np.uint8)
        return [
            SequenceRecord(
                key=key_pool[int(key_choice[i])].tobytes(),
                value=values[i].tobytes(),
            )
            for i in range(count)
        ]
