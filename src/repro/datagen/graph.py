"""Synthetic graph generation (BDGS graph generator equivalent).

PageRank in Table I runs on an unstructured graph with 2^24 vertices.  Web
graphs have power-law in-degree distributions; we generate directed graphs
with a preferential-attachment scheme (each new vertex links to ``m``
targets chosen proportionally to current in-degree plus a uniform
smoothing term), which yields the heavy-tailed in-degree structure
PageRank's convergence behaviour depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataGenerationError

__all__ = ["DirectedGraph", "GraphGenerator"]


@dataclass(frozen=True)
class DirectedGraph:
    """An immutable directed graph as an edge list.

    Attributes:
        num_vertices: Vertex count; vertices are ``0..num_vertices-1``.
        edges: ``(src, dst)`` pairs.
    """

    num_vertices: int
    edges: tuple[tuple[int, int], ...]

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def out_degree(self) -> dict[int, int]:
        """Out-degree per vertex (vertices with no out-edges omitted)."""
        degrees: dict[int, int] = {}
        for src, _ in self.edges:
            degrees[src] = degrees.get(src, 0) + 1
        return degrees

    def adjacency(self) -> dict[int, list[int]]:
        """Successor lists (vertices with no out-edges omitted)."""
        adj: dict[int, list[int]] = {}
        for src, dst in self.edges:
            adj.setdefault(src, []).append(dst)
        return adj


class GraphGenerator:
    """Preferential-attachment directed graph generator."""

    def __init__(self, seed: int = 13) -> None:
        self._rng = np.random.default_rng(seed)

    def generate(self, num_vertices: int, edges_per_vertex: int = 4) -> DirectedGraph:
        """Generate a graph with power-law in-degrees.

        Args:
            num_vertices: Number of vertices (>= 2).
            edges_per_vertex: Out-links added per vertex.

        Raises:
            DataGenerationError: On fewer than two vertices or no edges.
        """
        if num_vertices < 2:
            raise DataGenerationError("need at least two vertices")
        if edges_per_vertex <= 0:
            raise DataGenerationError("edges_per_vertex must be positive")

        rng = self._rng
        # in_weight[v] = in_degree(v) + 1 (uniform smoothing).
        in_weight = np.ones(num_vertices, dtype=float)
        edges: list[tuple[int, int]] = []
        for src in range(num_vertices):
            m = min(edges_per_vertex, num_vertices - 1)
            probs = in_weight.copy()
            probs[src] = 0.0  # no self loops
            probs /= probs.sum()
            targets = rng.choice(num_vertices, size=m, replace=False, p=probs)
            for dst in targets:
                edges.append((src, int(dst)))
                in_weight[int(dst)] += 1.0
        return DirectedGraph(num_vertices=num_vertices, edges=tuple(edges))
