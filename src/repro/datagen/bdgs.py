"""BDGS facade: one seeded entry point for all synthetic data.

The paper's inputs come from the Big Data Generator Suite (BDGS [16]),
which scales six raw data sets up to the Table I problem sizes.  Our
equivalent generates structurally faithful data at laptop scale and keeps
the *declared* Table I size as metadata: workload instrumentation uses
the declared size to parameterise footprint models while the engines
process the actual (scaled-down) records, so both the computation and the
footprint-dependent microarchitectural effects are exercised.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.graph import DirectedGraph, GraphGenerator
from repro.datagen.points import PointCloud, PointGenerator
from repro.datagen.sequencefile import SequenceFileGenerator, SequenceRecord
from repro.datagen.table import Order, OrderItem, TransactionGenerator
from repro.datagen.text import LabeledDocument, TextGenerator

__all__ = ["DataSetSpec", "Bdgs"]

GiB = 1 << 30


@dataclass(frozen=True)
class DataSetSpec:
    """Declared properties of a Table I data set.

    Attributes:
        name: Data-set label.
        declared_bytes: The paper's problem size in bytes (e.g. 80 GB for
            Sort) — used by footprint models, not by generation.
        data_type: Table I data type (unstructured / semi-structured /
            structured).
        data_format: Human description (text, sequence file, graph, table).
    """

    name: str
    declared_bytes: int
    data_type: str
    data_format: str


class Bdgs:
    """Facade over all generators with a single master seed."""

    def __init__(self, seed: int = 42) -> None:
        self.seed = seed
        self._text = TextGenerator(seed=seed)
        self._seq = SequenceFileGenerator(seed=seed + 1)
        self._graph = GraphGenerator(seed=seed + 2)
        self._table = TransactionGenerator(seed=seed + 3)
        self._points = PointGenerator(seed=seed + 4)

    # -- unstructured ---------------------------------------------------------

    def text_lines(self, count: int, words_per_line: int = 12) -> list[str]:
        """Text lines for Grep / WordCount."""
        return self._text.lines(count, words_per_line=words_per_line)

    def labeled_documents(self, count: int, **kwargs) -> list[LabeledDocument]:
        """Class-labeled documents for Naive Bayes."""
        return self._text.labeled_documents(count, **kwargs)

    def sequence_records(self, count: int, **kwargs) -> list[SequenceRecord]:
        """Key/value records for Sort."""
        return self._seq.records(count, **kwargs)

    def graph(self, num_vertices: int, edges_per_vertex: int = 4) -> DirectedGraph:
        """Power-law directed graph for PageRank."""
        return self._graph.generate(num_vertices, edges_per_vertex=edges_per_vertex)

    def points(self, count: int, **kwargs) -> PointCloud:
        """Gaussian-mixture vectors for K-means."""
        return self._points.generate(count, **kwargs)

    # -- structured -----------------------------------------------------------

    def orders(self, count: int, **kwargs) -> list[Order]:
        """ORDER fact table rows."""
        return self._table.orders(count, **kwargs)

    def order_items(self, count: int, num_orders: int, **kwargs) -> list[OrderItem]:
        """ORDER_ITEM detail table rows."""
        return self._table.items(count, num_orders, **kwargs)
