"""Synthetic text generation (BDGS "Text Generator" equivalent).

BDGS generates semantically plausible text by sampling from topic models
trained on Wikipedia.  Offline, we generate text from a synthetic
vocabulary with a Zipfian unigram distribution and optional per-topic
skews, which preserves the properties the workloads depend on: a heavy
head of frequent words (WordCount combiners work), rare-word tails
(Grep selectivity is controllable), and topic-dependent word usage
(Naive Bayes has signal to learn).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataGenerationError

__all__ = ["Vocabulary", "TextGenerator", "LabeledDocument"]

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


@dataclass(frozen=True)
class LabeledDocument:
    """A document with a class label (for Naive Bayes training/testing)."""

    label: str
    words: tuple[str, ...]

    @property
    def text(self) -> str:
        return " ".join(self.words)


class Vocabulary:
    """A deterministic synthetic vocabulary of pronounceable words."""

    def __init__(self, size: int, seed: int = 7) -> None:
        if size <= 0:
            raise DataGenerationError("vocabulary size must be positive")
        rng = np.random.default_rng(seed)
        words: list[str] = []
        seen: set[str] = set()
        while len(words) < size:
            syllables = int(rng.integers(1, 4))
            word = "".join(
                _CONSONANTS[int(rng.integers(0, len(_CONSONANTS)))]
                + _VOWELS[int(rng.integers(0, len(_VOWELS)))]
                for _ in range(syllables)
            )
            if word not in seen:
                seen.add(word)
                words.append(word)
        self.words = tuple(words)

    def __len__(self) -> int:
        return len(self.words)

    def __getitem__(self, index: int) -> str:
        return self.words[index]


class TextGenerator:
    """Generates Zipf-distributed text over a synthetic vocabulary.

    Args:
        vocabulary_size: Number of distinct words.
        zipf_exponent: Unigram distribution exponent (~1.1 matches natural
            language reasonably).
        seed: Seed for both vocabulary construction and sampling.
    """

    def __init__(
        self,
        vocabulary_size: int = 5000,
        zipf_exponent: float = 1.1,
        seed: int = 7,
    ) -> None:
        if zipf_exponent <= 0:
            raise DataGenerationError("zipf_exponent must be positive")
        self.vocabulary = Vocabulary(vocabulary_size, seed=seed)
        self._rng = np.random.default_rng(seed + 1)
        ranks = np.arange(1, vocabulary_size + 1, dtype=float)
        weights = ranks ** (-zipf_exponent)
        self._base_probs = weights / weights.sum()

    def words(self, count: int) -> list[str]:
        """Sample ``count`` words from the unigram distribution."""
        if count < 0:
            raise DataGenerationError("word count must be non-negative")
        indices = self._rng.choice(len(self.vocabulary), size=count, p=self._base_probs)
        return [self.vocabulary[int(i)] for i in indices]

    def lines(self, count: int, words_per_line: int = 12) -> list[str]:
        """Sample ``count`` text lines (for Grep / WordCount inputs)."""
        if words_per_line <= 0:
            raise DataGenerationError("words_per_line must be positive")
        flat = self.words(count * words_per_line)
        return [
            " ".join(flat[i * words_per_line : (i + 1) * words_per_line])
            for i in range(count)
        ]

    def documents(self, count: int, words_per_doc: int = 100) -> list[tuple[str, ...]]:
        """Sample ``count`` unlabeled documents."""
        if words_per_doc <= 0:
            raise DataGenerationError("words_per_doc must be positive")
        flat = self.words(count * words_per_doc)
        return [
            tuple(flat[i * words_per_doc : (i + 1) * words_per_doc])
            for i in range(count)
        ]

    def labeled_documents(
        self,
        count: int,
        classes: tuple[str, ...] = ("sports", "finance", "science", "travel"),
        words_per_doc: int = 80,
        topic_strength: float = 3.0,
    ) -> list[LabeledDocument]:
        """Sample class-labeled documents with topic-skewed vocabularies.

        Each class boosts a disjoint slice of the vocabulary by
        ``topic_strength``, giving Naive Bayes real signal to learn while
        keeping a shared Zipfian background.

        Raises:
            DataGenerationError: On empty ``classes`` or bad shape params.
        """
        if not classes:
            raise DataGenerationError("need at least one class")
        if topic_strength < 1.0:
            raise DataGenerationError("topic_strength must be >= 1")
        vocab_size = len(self.vocabulary)
        slice_size = max(1, vocab_size // (len(classes) * 4))
        class_probs: dict[str, np.ndarray] = {}
        for class_index, label in enumerate(classes):
            boosted = self._base_probs.copy()
            start = class_index * slice_size
            end = min(vocab_size, start + slice_size)
            boosted[start:end] *= topic_strength
            class_probs[label] = boosted / boosted.sum()

        documents: list[LabeledDocument] = []
        labels = [classes[int(i)] for i in self._rng.integers(0, len(classes), size=count)]
        for label in labels:
            indices = self._rng.choice(vocab_size, size=words_per_doc, p=class_probs[label])
            documents.append(
                LabeledDocument(
                    label=label,
                    words=tuple(self.vocabulary[int(i)] for i in indices),
                )
            )
        return documents
