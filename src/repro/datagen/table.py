"""Structured e-commerce transaction tables (BDGS table generator).

The ten interactive-analytics workloads of Table I run SQL-like operators
over a structured "e-commerce transaction data set".  Following the
BigDataBench schema, we generate an ``ORDER`` fact table and an
``ORDER_ITEM`` detail table with realistic skews: a Zipfian buyer
distribution (loyal customers), a Zipfian goods distribution (popular
products), and uniform-ish dates across a year.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataGenerationError

__all__ = ["Order", "OrderItem", "TransactionGenerator"]

_CATEGORIES = (
    "books",
    "electronics",
    "clothing",
    "grocery",
    "toys",
    "sports",
    "home",
    "beauty",
)


@dataclass(frozen=True)
class Order:
    """One row of the ORDER fact table."""

    order_id: int
    buyer_id: int
    date: int  # day-of-year, 1..365


@dataclass(frozen=True)
class OrderItem:
    """One row of the ORDER_ITEM detail table."""

    item_id: int
    order_id: int
    goods_id: int
    category: str
    quantity: int
    price: float

    @property
    def amount(self) -> float:
        """Line total."""
        return round(self.quantity * self.price, 2)


class TransactionGenerator:
    """Seeded generator of the two-table e-commerce data set."""

    def __init__(self, seed: int = 17) -> None:
        self._rng = np.random.default_rng(seed)

    def orders(self, count: int, num_buyers: int | None = None) -> list[Order]:
        """Generate ``count`` orders with a Zipf-skewed buyer distribution.

        Raises:
            DataGenerationError: On a negative count.
        """
        if count < 0:
            raise DataGenerationError("order count must be non-negative")
        if count == 0:
            return []
        rng = self._rng
        num_buyers = num_buyers or max(1, count // 5)
        u = rng.random(count)
        buyers = (num_buyers * (u**2.0)).astype(int)  # loyal-customer head
        dates = rng.integers(1, 366, size=count)
        return [
            Order(order_id=i + 1, buyer_id=int(buyers[i]) + 1, date=int(dates[i]))
            for i in range(count)
        ]

    def items(
        self,
        count: int,
        num_orders: int,
        num_goods: int | None = None,
        id_offset: int = 0,
    ) -> list[OrderItem]:
        """Generate ``count`` order items referencing ``num_orders`` orders.

        Args:
            count: Number of item rows.
            num_orders: Highest referenced ``order_id`` (foreign key space).
            num_goods: Distinct products (defaults to ``max(8, count // 20)``).
            id_offset: Added to ``item_id`` (lets callers generate two
                disjoint-id tables with the same schema for Union /
                Difference workloads).

        Raises:
            DataGenerationError: On non-positive ``num_orders`` or a
                negative count.
        """
        if count < 0:
            raise DataGenerationError("item count must be non-negative")
        if num_orders <= 0:
            raise DataGenerationError("num_orders must be positive")
        if count == 0:
            return []
        rng = self._rng
        num_goods = num_goods or max(8, count // 20)
        u = rng.random(count)
        goods = (num_goods * (u**2.5)).astype(int)  # popular-product head
        orders = rng.integers(1, num_orders + 1, size=count)
        quantities = rng.integers(1, 9, size=count)
        prices = np.round(rng.lognormal(mean=2.5, sigma=0.8, size=count), 2)
        return [
            OrderItem(
                item_id=id_offset + i + 1,
                order_id=int(orders[i]),
                goods_id=int(goods[i]) + 1,
                category=_CATEGORIES[(int(goods[i]) + 1) % len(_CATEGORIES)],
                quantity=int(quantities[i]),
                price=float(max(0.5, prices[i])),
            )
            for i in range(count)
        ]
