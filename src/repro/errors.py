"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class DataGenerationError(ReproError):
    """A synthetic data generator could not produce the requested data."""


class StackExecutionError(ReproError):
    """A software-stack engine (Hadoop/Spark/Hive/Shark) failed to run a job."""


class WorkloadError(ReproError):
    """A workload definition is invalid or failed to execute."""


class ProfilingError(ReproError):
    """The PMU/profiler layer was used incorrectly."""


class AnalysisError(ReproError):
    """A statistical-analysis step (PCA, clustering, BIC) received bad input."""


class SubsetError(AnalysisError):
    """The budget-aware subsetting engine was given an invalid budget,
    an empty candidate pool, or costs that do not match the pool."""


class CollectionCancelled(ReproError):
    """A suite collection was cancelled before it completed."""


class StoreError(ReproError):
    """The persistent result store was used incorrectly or is corrupt."""


class WorkerPoolError(ReproError):
    """A persistent collection worker died or the pool protocol broke."""


class ServiceError(ReproError):
    """The characterization service (server, jobs, client) failed a request."""
