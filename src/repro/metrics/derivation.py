"""Derive the 45 Table II metrics from raw hardware event counts.

Some Table II metrics need several raw events (the paper notes it collects
"more than 50 events (some metrics require multiple events)").  This module
is the bridge between the raw PMU counts collected by :mod:`repro.perf` and
the metric vectors consumed by the statistical pipeline in
:mod:`repro.core`.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import AnalysisError
from repro.metrics.catalog import METRIC_NAMES, NUM_METRICS

__all__ = ["REQUIRED_EVENTS", "derive_metrics", "metrics_to_array", "metrics_from_array"]

#: Raw event names the derivation consumes.  The profiler uses this set to
#: know what to program into the PMU.
REQUIRED_EVENTS: tuple[str, ...] = (
    "inst_retired.any",
    "cpu_clk_unhalted.core",
    "mem_inst_retired.loads",
    "mem_inst_retired.stores",
    "br_inst_retired.all_branches",
    "arith.int",
    "fp_comp_ops_exe.x87",
    "fp_comp_ops_exe.sse_fp",
    "inst_retired.kernel",
    "inst_retired.user",
    "uops_retired.any",
    "l1i.misses",
    "l1i.hits",
    "l1i.cycles_stalled",
    "l2_rqsts.miss",
    "l2_rqsts.hit",
    "llc.misses",
    "llc.hits",
    "mem_load_retired.hit_lfb",
    "mem_load_retired.l2_hit",
    "mem_load_retired.other_core_l2_hit_hitm",
    "mem_load_retired.llc_unshared_hit",
    "mem_load_retired.llc_miss",
    "itlb_misses.any",
    "itlb_misses.walk_cycles",
    "dtlb_misses.any",
    "dtlb_misses.walk_cycles",
    "dtlb_misses.stlb_hit",
    "br_misp_retired.all_branches",
    "br_inst_exec.any",
    "ild_stall.any",
    "decoder_stall.any",
    "rat_stalls.any",
    "resource_stalls.any",
    "uops_executed.core_active_cycles",
    "uops_executed.core_stall_cycles",
    "offcore_requests.demand.read_data",
    "offcore_requests.demand.read_code",
    "offcore_requests.demand.rfo",
    "offcore_requests.writeback",
    "snoop_response.hit",
    "snoop_response.hite",
    "snoop_response.hitm",
    "offcore_requests_outstanding.cycles_sum",
    "offcore_requests_outstanding.active_cycles",
    "mem_access.any",
)


def _safe_div(numerator: float, denominator: float) -> float:
    """Divide, mapping a zero denominator to 0.0 (a dead counter, not NaN)."""
    if denominator == 0:
        return 0.0
    return numerator / denominator


def derive_metrics(counts: Mapping[str, float]) -> dict[str, float]:
    """Turn raw event ``counts`` into the 45 Table II metrics.

    Args:
        counts: Mapping from raw event name (see :data:`REQUIRED_EVENTS`)
            to the observed (possibly multiplex-scaled) count.

    Returns:
        Mapping from metric name to value, containing exactly the 45
        catalog metrics.

    Raises:
        AnalysisError: If a required raw event is missing from ``counts``.
    """
    missing = [name for name in REQUIRED_EVENTS if name not in counts]
    if missing:
        raise AnalysisError(f"missing raw events for metric derivation: {missing}")

    inst = float(counts["inst_retired.any"])
    cycles = float(counts["cpu_clk_unhalted.core"])

    def pki(event_name: str) -> float:
        return _safe_div(float(counts[event_name]) * 1000.0, inst)

    def per_inst(event_name: str) -> float:
        return _safe_div(float(counts[event_name]), inst)

    def per_cycle(event_name: str) -> float:
        return _safe_div(float(counts[event_name]), cycles)

    offcore_total = (
        float(counts["offcore_requests.demand.read_data"])
        + float(counts["offcore_requests.demand.read_code"])
        + float(counts["offcore_requests.demand.rfo"])
        + float(counts["offcore_requests.writeback"])
    )

    br_retired = float(counts["br_inst_retired.all_branches"])
    mem_accesses = float(counts["mem_access.any"])
    fp_total = float(counts["fp_comp_ops_exe.x87"]) + float(counts["fp_comp_ops_exe.sse_fp"])

    values: dict[str, float] = {
        # Instruction mix.
        "LOAD": per_inst("mem_inst_retired.loads"),
        "STORE": per_inst("mem_inst_retired.stores"),
        "BRANCH": per_inst("br_inst_retired.all_branches"),
        "INTEGER": per_inst("arith.int"),
        "FP_X87": per_inst("fp_comp_ops_exe.x87"),
        "SSE_FP": per_inst("fp_comp_ops_exe.sse_fp"),
        "KERNEL_MODE": per_inst("inst_retired.kernel"),
        "USER_MODE": per_inst("inst_retired.user"),
        "UOPS_TO_INS": per_inst("uops_retired.any"),
        # Cache behavior.
        "L1I_MISS": pki("l1i.misses"),
        "L1I_HIT": pki("l1i.hits"),
        "L2_MISS": pki("l2_rqsts.miss"),
        "L2_HIT": pki("l2_rqsts.hit"),
        "L3_MISS": pki("llc.misses"),
        "L3_HIT": pki("llc.hits"),
        "LOAD_HIT_LFB": pki("mem_load_retired.hit_lfb"),
        "LOAD_HIT_L2": pki("mem_load_retired.l2_hit"),
        "LOAD_HIT_SIBE": pki("mem_load_retired.other_core_l2_hit_hitm"),
        "LOAD_HIT_L3": pki("mem_load_retired.llc_unshared_hit"),
        "LOAD_LLC_MISS": pki("mem_load_retired.llc_miss"),
        # TLB behavior.
        "ITLB_MISS": pki("itlb_misses.any"),
        "ITLB_CYCLE": per_cycle("itlb_misses.walk_cycles"),
        "DTLB_MISS": pki("dtlb_misses.any"),
        "DTLB_CYCLE": per_cycle("dtlb_misses.walk_cycles"),
        "DATA_HIT_STLB": pki("dtlb_misses.stlb_hit"),
        # Branch execution.
        "BR_MISS": _safe_div(float(counts["br_misp_retired.all_branches"]), br_retired),
        "BR_EXE_TO_RE": _safe_div(float(counts["br_inst_exec.any"]), br_retired),
        # Pipeline behavior.
        "FETCH_STALL": per_cycle("l1i.cycles_stalled"),
        "ILD_STALL": per_cycle("ild_stall.any"),
        "DECODER_STALL": per_cycle("decoder_stall.any"),
        "RAT_STALL": per_cycle("rat_stalls.any"),
        "RESOURCE_STALL": per_cycle("resource_stalls.any"),
        "UOPS_EXE_CYCLE": per_cycle("uops_executed.core_active_cycles"),
        "UOPS_STALL": per_cycle("uops_executed.core_stall_cycles"),
        # Offcore requests (shares of all offcore traffic).
        "OFFCORE_DATA": _safe_div(
            float(counts["offcore_requests.demand.read_data"]), offcore_total
        ),
        "OFFCORE_CODE": _safe_div(
            float(counts["offcore_requests.demand.read_code"]), offcore_total
        ),
        "OFFCORE_RFO": _safe_div(float(counts["offcore_requests.demand.rfo"]), offcore_total),
        "OFFCORE_WB": _safe_div(float(counts["offcore_requests.writeback"]), offcore_total),
        # Snoop responses.
        "SNOOP_HIT": pki("snoop_response.hit"),
        "SNOOP_HITE": pki("snoop_response.hite"),
        "SNOOP_HITM": pki("snoop_response.hitm"),
        # Parallelism.
        "ILP": _safe_div(inst, cycles),
        "MLP": _safe_div(
            float(counts["offcore_requests_outstanding.cycles_sum"]),
            float(counts["offcore_requests_outstanding.active_cycles"]),
        ),
        # Operation intensity.
        "INT_TO_MEM": _safe_div(float(counts["arith.int"]), mem_accesses),
        "FP_TO_MEM": _safe_div(fp_total, mem_accesses),
    }
    return values


def metrics_to_array(values: Mapping[str, float]) -> np.ndarray:
    """Pack a metric mapping into a length-45 vector in catalog order.

    Raises:
        AnalysisError: If any catalog metric is missing from ``values``.
    """
    missing = [name for name in METRIC_NAMES if name not in values]
    if missing:
        raise AnalysisError(f"metric mapping is missing catalog metrics: {missing}")
    return np.array([float(values[name]) for name in METRIC_NAMES], dtype=float)


def metrics_from_array(vector: np.ndarray) -> dict[str, float]:
    """Unpack a length-45 catalog-order vector into a metric mapping.

    Raises:
        AnalysisError: If ``vector`` does not have exactly 45 entries.
    """
    flat = np.asarray(vector, dtype=float).reshape(-1)
    if flat.shape[0] != NUM_METRICS:
        raise AnalysisError(
            f"expected a {NUM_METRICS}-element metric vector, got shape {vector.shape}"
        )
    return {name: float(flat[i]) for i, name in enumerate(METRIC_NAMES)}
