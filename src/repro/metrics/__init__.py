"""Table II metric catalog, raw hardware events, and metric derivation."""

from repro.metrics.catalog import (
    METRIC_INDEX,
    METRIC_NAMES,
    METRICS,
    NUM_METRICS,
    MetricCategory,
    MetricKind,
    MetricSpec,
    metric,
    metrics_in_category,
)
from repro.metrics.derivation import (
    REQUIRED_EVENTS,
    derive_metrics,
    metrics_from_array,
    metrics_to_array,
)
from repro.metrics.events import EVENT_NAMES, EVENTS, FIXED_EVENTS, EventDomain, EventSpec, event

__all__ = [
    "METRIC_INDEX",
    "METRIC_NAMES",
    "METRICS",
    "NUM_METRICS",
    "MetricCategory",
    "MetricKind",
    "MetricSpec",
    "metric",
    "metrics_in_category",
    "REQUIRED_EVENTS",
    "derive_metrics",
    "metrics_from_array",
    "metrics_to_array",
    "EVENT_NAMES",
    "EVENTS",
    "FIXED_EVENTS",
    "EventDomain",
    "EventSpec",
    "event",
]
