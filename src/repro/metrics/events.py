"""Raw hardware performance events.

The paper collects "more than 50 events" via perf by programming Westmere
MSRs with event select codes and unit masks (Section IV-C).  This module
defines the raw event vocabulary our simulated PMU exposes.  Event codes and
unit masks follow the Intel SDM naming style for the Westmere
microarchitecture; they are used by :mod:`repro.perf.pmu` to program
counters and by :mod:`repro.metrics.derivation` to turn counts into the 45
Table II metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["EventDomain", "EventSpec", "EVENTS", "EVENT_NAMES", "event", "FIXED_EVENTS"]


class EventDomain(enum.Enum):
    """Where an event is counted."""

    CORE = "core"  # per-core programmable counter
    FIXED = "fixed"  # fixed-function counter (instructions, cycles)
    UNCORE = "uncore"  # shared L3 / snoop / offcore fabric


@dataclass(frozen=True)
class EventSpec:
    """One raw hardware event.

    Attributes:
        name: Canonical event name (perf style, dot-separated).
        code: Event-select code (Westmere-flavoured, for realism in the PMU).
        umask: Unit mask.
        domain: Counting domain (core / fixed / uncore).
        description: Human description.
    """

    name: str
    code: int
    umask: int
    domain: EventDomain
    description: str

    @property
    def selector(self) -> int:
        """The (code, umask) pair packed like IA32_PERFEVTSELx bits 0-15."""
        return (self.umask << 8) | self.code


def _ev(name: str, code: int, umask: int, domain: EventDomain, description: str) -> EventSpec:
    return EventSpec(name, code, umask, domain, description)


_C = EventDomain.CORE
_F = EventDomain.FIXED
_U = EventDomain.UNCORE

#: The raw event vocabulary (57 events; the paper collects "more than 50").
EVENTS: tuple[EventSpec, ...] = (
    # Fixed-function counters.
    _ev("inst_retired.any", 0xC0, 0x00, _F, "instructions retired"),
    _ev("cpu_clk_unhalted.core", 0x3C, 0x00, _F, "unhalted core cycles"),
    # Retired instruction classes (instruction mix).
    _ev("mem_inst_retired.loads", 0x0B, 0x01, _C, "retired load instructions"),
    _ev("mem_inst_retired.stores", 0x0B, 0x02, _C, "retired store instructions"),
    _ev("br_inst_retired.all_branches", 0xC4, 0x00, _C, "retired branch instructions"),
    _ev("arith.int", 0x14, 0x02, _C, "retired integer ALU operations"),
    _ev("fp_comp_ops_exe.x87", 0x10, 0x01, _C, "computational x87 FP operations"),
    _ev("fp_comp_ops_exe.sse_fp", 0x10, 0x04, _C, "computational SSE FP operations"),
    _ev("inst_retired.kernel", 0xC0, 0x02, _C, "instructions retired in ring 0"),
    _ev("inst_retired.user", 0xC0, 0x01, _C, "instructions retired in ring 3"),
    _ev("uops_retired.any", 0xC2, 0x01, _C, "micro-ops retired"),
    # L1 instruction cache.
    _ev("l1i.misses", 0x80, 0x02, _C, "L1I cache misses"),
    _ev("l1i.hits", 0x80, 0x01, _C, "L1I cache hits"),
    _ev("l1i.cycles_stalled", 0x80, 0x04, _C, "cycles instruction fetch is stalled"),
    # L2 cache.
    _ev("l2_rqsts.miss", 0x24, 0xAA, _C, "L2 cache misses (all requests)"),
    _ev("l2_rqsts.hit", 0x24, 0x55, _C, "L2 cache hits (all requests)"),
    # L3 cache (uncore).
    _ev("llc.misses", 0x2E, 0x41, _U, "last-level cache misses"),
    _ev("llc.hits", 0x2E, 0x4F, _U, "last-level cache hits"),
    # Load data-source breakdown.
    _ev("mem_load_retired.hit_lfb", 0xCB, 0x40, _C, "retired loads that hit the line fill buffer"),
    _ev("mem_load_retired.l2_hit", 0xCB, 0x02, _C, "retired loads that hit L2"),
    _ev(
        "mem_load_retired.other_core_l2_hit_hitm",
        0xCB,
        0x04,
        _C,
        "retired loads served from a sibling core's L2",
    ),
    _ev("mem_load_retired.llc_unshared_hit", 0xCB, 0x08, _C, "retired loads hitting unshared L3 lines"),
    _ev("mem_load_retired.llc_miss", 0xCB, 0x10, _C, "retired loads missing the L3"),
    # TLBs.
    _ev("itlb_misses.any", 0x85, 0x01, _C, "ITLB misses at all levels"),
    _ev("itlb_misses.walk_cycles", 0x85, 0x04, _C, "cycles spent on ITLB miss page walks"),
    _ev("dtlb_misses.any", 0x49, 0x01, _C, "DTLB misses at all levels"),
    _ev("dtlb_misses.walk_cycles", 0x49, 0x04, _C, "cycles spent on DTLB miss page walks"),
    _ev("dtlb_misses.stlb_hit", 0x49, 0x10, _C, "DTLB first-level misses that hit the shared TLB"),
    _ev("dtlb_load_misses.any", 0x08, 0x01, _C, "DTLB load misses"),
    # Branches.
    _ev("br_misp_retired.all_branches", 0xC5, 0x00, _C, "mispredicted retired branches"),
    _ev("br_inst_exec.any", 0x88, 0x7F, _C, "branch instructions executed (speculative)"),
    # Pipeline / stall accounting.
    _ev("ild_stall.any", 0x87, 0x0F, _C, "instruction length decoder stall cycles"),
    _ev("decoder_stall.any", 0x87, 0x10, _C, "decoder stall cycles"),
    _ev("rat_stalls.any", 0xD2, 0x0F, _C, "register allocation table stall cycles"),
    _ev("resource_stalls.any", 0xA2, 0x01, _C, "backend resource stall cycles"),
    _ev("uops_executed.core_active_cycles", 0xB1, 0x3F, _C, "cycles with uops executing"),
    _ev("uops_executed.core_stall_cycles", 0xB1, 0x40, _C, "cycles with no uop executing"),
    # Offcore requests (uncore fabric).
    _ev("offcore_requests.demand.read_data", 0xB0, 0x01, _U, "offcore demand data read requests"),
    _ev("offcore_requests.demand.read_code", 0xB0, 0x02, _U, "offcore demand code read requests"),
    _ev("offcore_requests.demand.rfo", 0xB0, 0x04, _U, "offcore demand RFO requests"),
    _ev("offcore_requests.writeback", 0xB0, 0x40, _U, "offcore cache line write-backs"),
    # Snoop responses (uncore).
    _ev("snoop_response.hit", 0xB8, 0x01, _U, "snoop responses: HIT (clean shared line)"),
    _ev("snoop_response.hite", 0xB8, 0x02, _U, "snoop responses: HIT Exclusive"),
    _ev("snoop_response.hitm", 0xB8, 0x04, _U, "snoop responses: HIT Modified"),
    # Memory-level parallelism inputs.
    _ev(
        "offcore_requests_outstanding.cycles_sum",
        0x60,
        0x01,
        _C,
        "sum over cycles of outstanding offcore demand misses",
    ),
    _ev(
        "offcore_requests_outstanding.active_cycles",
        0x60,
        0x02,
        _C,
        "cycles with at least one outstanding offcore demand miss",
    ),
    # Operation-intensity inputs.
    _ev("mem_access.any", 0x0B, 0x03, _C, "memory accesses (loads + stores)"),
)

#: Map from event name to spec.
EVENT_NAMES: dict[str, EventSpec] = {spec.name: spec for spec in EVENTS}

#: The events serviced by fixed-function counters (always available).
FIXED_EVENTS: tuple[str, ...] = tuple(
    spec.name for spec in EVENTS if spec.domain is EventDomain.FIXED
)


def event(name: str) -> EventSpec:
    """Return the :class:`EventSpec` for ``name``.

    Raises:
        KeyError: If ``name`` is not a defined raw event.
    """
    return EVENT_NAMES[name]
