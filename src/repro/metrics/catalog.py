"""The 45 microarchitectural metrics of Table II.

The paper characterizes every workload with 45 metrics grouped into nine
categories (instruction mix, cache behavior, TLB behavior, branch execution,
pipeline behavior, offcore requests, snoop responses, parallelism, and
operation intensity).  This module is the single source of truth for metric
identity and ordering: every metric vector produced anywhere in the library
is indexed in catalog order, and the analysis layer labels factor loadings
and Kiviat axes from here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "MetricCategory",
    "MetricKind",
    "MetricSpec",
    "METRICS",
    "METRIC_NAMES",
    "METRIC_INDEX",
    "NUM_METRICS",
    "metrics_in_category",
    "metric",
]


class MetricCategory(enum.Enum):
    """The nine metric categories of Table II."""

    INSTRUCTION_MIX = "Instruction Mix"
    CACHE_BEHAVIOR = "Cache Behavior"
    TLB_BEHAVIOR = "TLB Behavior"
    BRANCH_EXECUTION = "Branch Execution"
    PIPELINE_BEHAVIOR = "Pipeline Behavior"
    OFFCORE_REQUEST = "Offcore Request"
    SNOOP_RESPONSE = "Snoop Response"
    PARALLELISM = "Parallelism"
    OPERATION_INTENSITY = "Operation Intensity"


class MetricKind(enum.Enum):
    """How a metric is normalised.

    PERCENTAGE
        A share of some population (e.g. load operations' percentage),
        expressed in [0, 1].
    PKI
        Events per kilo retired instructions.
    RATIO
        A dimensionless ratio (e.g. stalled cycles to total cycles, IPC).
    """

    PERCENTAGE = "percentage"
    PKI = "per-kilo-instructions"
    RATIO = "ratio"


@dataclass(frozen=True)
class MetricSpec:
    """One row of Table II.

    Attributes:
        number: The 1-based metric number used in the paper (1..45).
        name: The canonical metric name (underscored, e.g. ``L1I_MISS``).
        category: Which Table II category the metric belongs to.
        kind: How the metric is normalised.
        description: The Table II description, verbatim where possible.
    """

    number: int
    name: str
    category: MetricCategory
    kind: MetricKind
    description: str


def _spec(
    number: int,
    name: str,
    category: MetricCategory,
    kind: MetricKind,
    description: str,
) -> MetricSpec:
    return MetricSpec(number, name, category, kind, description)


_MIX = MetricCategory.INSTRUCTION_MIX
_CACHE = MetricCategory.CACHE_BEHAVIOR
_TLB = MetricCategory.TLB_BEHAVIOR
_BRANCH = MetricCategory.BRANCH_EXECUTION
_PIPE = MetricCategory.PIPELINE_BEHAVIOR
_OFFCORE = MetricCategory.OFFCORE_REQUEST
_SNOOP = MetricCategory.SNOOP_RESPONSE
_PAR = MetricCategory.PARALLELISM
_INTENSITY = MetricCategory.OPERATION_INTENSITY

_PCT = MetricKind.PERCENTAGE
_PKI = MetricKind.PKI
_RATIO = MetricKind.RATIO

#: All 45 metrics in Table II order.  Index ``i`` holds metric number ``i+1``.
METRICS: tuple[MetricSpec, ...] = (
    _spec(1, "LOAD", _MIX, _PCT, "load operations' percentage"),
    _spec(2, "STORE", _MIX, _PCT, "store operations' percentage"),
    _spec(3, "BRANCH", _MIX, _PCT, "branch operations' percentage"),
    _spec(4, "INTEGER", _MIX, _PCT, "integer operations' percentage"),
    _spec(5, "FP_X87", _MIX, _PCT, "X87 floating point operations' percentage"),
    _spec(6, "SSE_FP", _MIX, _PCT, "SSE floating point operations' percentage"),
    _spec(
        7,
        "KERNEL_MODE",
        _MIX,
        _RATIO,
        "the ratio of instructions running in kernel mode",
    ),
    _spec(
        8,
        "USER_MODE",
        _MIX,
        _RATIO,
        "the ratio of instructions running in user mode",
    ),
    _spec(
        9,
        "UOPS_TO_INS",
        _MIX,
        _RATIO,
        "the ratio of micro operations to instructions",
    ),
    _spec(10, "L1I_MISS", _CACHE, _PKI, "L1 instruction cache misses per K instructions"),
    _spec(11, "L1I_HIT", _CACHE, _PKI, "L1 instruction cache hits per K instructions"),
    _spec(12, "L2_MISS", _CACHE, _PKI, "L2 cache misses per K instructions"),
    _spec(13, "L2_HIT", _CACHE, _PKI, "L2 cache hits per K instructions"),
    _spec(14, "L3_MISS", _CACHE, _PKI, "L3 cache misses per K instructions"),
    _spec(15, "L3_HIT", _CACHE, _PKI, "L3 cache hits per K instructions"),
    _spec(
        16,
        "LOAD_HIT_LFB",
        _CACHE,
        _PKI,
        "loads that miss the L1D and hit the line fill buffer per K instructions",
    ),
    _spec(17, "LOAD_HIT_L2", _CACHE, _PKI, "loads that hit the L2 cache per K instructions"),
    _spec(
        18,
        "LOAD_HIT_SIBE",
        _CACHE,
        _PKI,
        "loads that hit a sibling core's L2 cache per K instructions",
    ),
    _spec(
        19,
        "LOAD_HIT_L3",
        _CACHE,
        _PKI,
        "loads that hit unshared lines in the L3 cache per K instructions",
    ),
    _spec(20, "LOAD_LLC_MISS", _CACHE, _PKI, "loads that miss the L3 cache per K instructions"),
    _spec(
        21,
        "ITLB_MISS",
        _TLB,
        _PKI,
        "misses in all levels of the instruction TLB per K instructions",
    ),
    _spec(
        22,
        "ITLB_CYCLE",
        _TLB,
        _RATIO,
        "the ratio of instruction TLB miss page walk cycles to total cycles",
    ),
    _spec(
        23,
        "DTLB_MISS",
        _TLB,
        _PKI,
        "misses in all levels of the data TLB per K instructions",
    ),
    _spec(
        24,
        "DTLB_CYCLE",
        _TLB,
        _RATIO,
        "the ratio of data TLB miss page walk cycles to total cycles",
    ),
    _spec(
        25,
        "DATA_HIT_STLB",
        _TLB,
        _PKI,
        "DTLB first level misses that hit in the second level TLB per K instructions",
    ),
    _spec(26, "BR_MISS", _BRANCH, _RATIO, "branch miss prediction ratio"),
    _spec(
        27,
        "BR_EXE_TO_RE",
        _BRANCH,
        _RATIO,
        "the ratio of executed branch instructions to retired branch instructions",
    ),
    _spec(
        28,
        "FETCH_STALL",
        _PIPE,
        _RATIO,
        "the ratio of instruction fetch stalled cycles to total cycles",
    ),
    _spec(
        29,
        "ILD_STALL",
        _PIPE,
        _RATIO,
        "the ratio of Instruction Length Decoder stalled cycles to total cycles",
    ),
    _spec(
        30,
        "DECODER_STALL",
        _PIPE,
        _RATIO,
        "the ratio of Decoder stalled cycles to total cycles",
    ),
    _spec(
        31,
        "RAT_STALL",
        _PIPE,
        _RATIO,
        "the ratio of Register Allocation Table stalled cycles to total cycles",
    ),
    _spec(
        32,
        "RESOURCE_STALL",
        _PIPE,
        _RATIO,
        "the ratio of resource-related stalled cycles to total cycles "
        "(load/store buffer full, reservation station full, reorder buffer "
        "full, and similar backend stalls)",
    ),
    _spec(
        33,
        "UOPS_EXE_CYCLE",
        _PIPE,
        _RATIO,
        "the ratio of cycles in which micro operations are executed to total cycles",
    ),
    _spec(
        34,
        "UOPS_STALL",
        _PIPE,
        _RATIO,
        "the ratio of cycles in which no micro operation executes to total cycles",
    ),
    _spec(35, "OFFCORE_DATA", _OFFCORE, _PCT, "percentage of offcore data requests"),
    _spec(36, "OFFCORE_CODE", _OFFCORE, _PCT, "percentage of offcore code requests"),
    _spec(
        37,
        "OFFCORE_RFO",
        _OFFCORE,
        _PCT,
        "percentage of offcore Request For Ownership requests",
    ),
    _spec(38, "OFFCORE_WB", _OFFCORE, _PCT, "percentage of data write-backs to uncore"),
    _spec(39, "SNOOP_HIT", _SNOOP, _PKI, "HIT snoop responses per K instructions"),
    _spec(40, "SNOOP_HITE", _SNOOP, _PKI, "HIT-Exclusive snoop responses per K instructions"),
    _spec(41, "SNOOP_HITM", _SNOOP, _PKI, "HIT-Modified snoop responses per K instructions"),
    _spec(42, "ILP", _PAR, _RATIO, "instruction level parallelism (IPC)"),
    _spec(
        43,
        "MLP",
        _PAR,
        _RATIO,
        "memory level parallelism (mean outstanding cache misses while at "
        "least one miss is outstanding)",
    ),
    _spec(
        44,
        "INT_TO_MEM",
        _INTENSITY,
        _RATIO,
        "integer computation to memory access ratio",
    ),
    _spec(
        45,
        "FP_TO_MEM",
        _INTENSITY,
        _RATIO,
        "floating point computation to memory access ratio",
    ),
)

#: Metric names in catalog order.
METRIC_NAMES: tuple[str, ...] = tuple(spec.name for spec in METRICS)

#: Map from metric name to 0-based index in catalog order.
METRIC_INDEX: dict[str, int] = {spec.name: i for i, spec in enumerate(METRICS)}

#: Number of metrics (45).
NUM_METRICS: int = len(METRICS)


def metric(name: str) -> MetricSpec:
    """Return the :class:`MetricSpec` for ``name``.

    Raises:
        KeyError: If ``name`` is not one of the 45 catalog metrics.
    """
    return METRICS[METRIC_INDEX[name]]


def metrics_in_category(category: MetricCategory) -> tuple[MetricSpec, ...]:
    """Return all metrics belonging to ``category``, in catalog order."""
    return tuple(spec for spec in METRICS if spec.category is category)
