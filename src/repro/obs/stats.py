"""Timing and percentile helpers shared by the benchmark harnesses.

``tools/bench_speed.py``, ``tools/bench_faults.py`` and
``tools/bench_service.py`` each used to hand-roll ``perf_counter``
bookkeeping and summary arithmetic; the shared vocabulary lives here so
every bench reports latencies the same way (and the service's ``/stats``
endpoint can reuse the same summaries).

Standard library only — no numpy, so the obs layer stays importable
everywhere.
"""

from __future__ import annotations

import math
import time

__all__ = ["Stopwatch", "best_of", "percentile", "summarize"]


class Stopwatch:
    """A context-manager wall clock::

        with Stopwatch() as sw:
            do_work()
        print(sw.seconds)
    """

    def __init__(self) -> None:
        self._start_ns = 0
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = (time.perf_counter_ns() - self._start_ns) / 1e9


def best_of(fn, trials: int) -> float:
    """Minimum wall time of ``fn()`` over ``trials`` runs (microbenchmark
    convention: the best trial is the least-noisy estimate)."""
    if trials < 1:
        raise ValueError("trials must be at least 1")
    best = math.inf
    for _ in range(trials):
        with Stopwatch() as sw:
            fn()
        best = min(best, sw.seconds)
    return best


def percentile(values: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation between ranks.

    Matches ``numpy.percentile(values, q * 100)`` for the default linear
    interpolation, without requiring numpy.

    Raises:
        ValueError: On an empty sample or ``q`` outside [0, 1].
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = q * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(ordered[lower])
    fraction = rank - lower
    return float(ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction)


def summarize(values: list[float], unit: str = "s") -> dict:
    """Count/min/mean/p50/p95/p99/max of a latency sample, rounded.

    The dict is JSON-ready and keyed the way every BENCH file and the
    ``/stats`` endpoint report distributions.
    """
    if not values:
        return {"count": 0, "unit": unit}
    return {
        "count": len(values),
        "unit": unit,
        "min": round(min(values), 6),
        "mean": round(sum(values) / len(values), 6),
        "p50": round(percentile(values, 0.50), 6),
        "p95": round(percentile(values, 0.95), 6),
        "p99": round(percentile(values, 0.99), 6),
        "max": round(max(values), 6),
    }
