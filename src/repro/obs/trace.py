"""Structured spans on a monotonic clock, exported as Chrome trace JSON.

A :class:`Tracer` collects complete ("ph": "X") and instant ("ph": "i")
events; :meth:`Tracer.to_chrome` renders the Trace Event Format that
``chrome://tracing`` and Perfetto load directly.  The active tracer is
ambient (a :mod:`contextvars` variable, like the fault injector) so the
engines deep inside a workload runner can reach it without threading a
parameter through every call site.

Zero-cost when disabled: the default tracer is ``None`` and the
module-level :func:`span` helper returns one shared
:class:`contextlib.nullcontext` instance — instrumented code pays a
``ContextVar.get`` and a dict build per span site, nothing more.
Tracing never perturbs execution: spans only *observe* wall time; no
randomness is consumed and no scheduling decision changes, so a traced
run's 45-metric matrix is bit-identical to an untraced run's.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
import time
from collections.abc import Iterator
from dataclasses import dataclass, field

__all__ = [
    "SpanEvent",
    "Tracer",
    "current_tracer",
    "tracing",
    "span",
    "instant",
    "span_paths",
]


#: Live span-name stack per thread (root-first), maintained by
#: :meth:`Tracer.span` on entry/exit.  This is what gives the sampling
#: profiler (:mod:`repro.obs.prof`) its span attribution: a sample of
#: thread ``tid`` is charged to ``tuple(_SPAN_STACKS[tid])`` — "which
#: phase of which workload", not just "which function".  Plain dict +
#: list mutations are GIL-atomic, so the sampler can snapshot it from a
#: signal handler without taking a lock; entries are removed when a
#: thread's outermost span exits so the map stays bounded by the number
#: of threads currently inside a span.
_SPAN_STACKS: dict[int, list[str]] = {}

# Thread idents are reused; a forked child inherits stacks for parent
# threads that no longer exist and would misattribute samples to them.
if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_SPAN_STACKS.clear)


def span_paths() -> dict[int, tuple[str, ...]]:
    """Snapshot of every thread's live span path (root-first).

    Safe to call from a signal handler: reads one dict and copies each
    list; a momentarily torn read during a concurrent push/pop only
    shifts a single sample's attribution by one span level.
    """
    snapshot: dict[int, tuple[str, ...]] = {}
    for tid, stack in list(_SPAN_STACKS.items()):
        path = tuple(stack)
        if path:
            snapshot[tid] = path
    return snapshot


@dataclass(frozen=True)
class SpanEvent:
    """One recorded event.

    Attributes:
        name: Span label ("task:map:wordcount", "simulate:slave-0", ...).
        cat: Comma-free category string ("task", "phase", "service", ...).
        ts_us: Start time in microseconds since the tracer's epoch.
        dur_us: Duration in microseconds; 0.0 for instant events.
        tid: Identifier of the thread that recorded the event.
        phase: Chrome trace phase — "X" (complete) or "i" (instant).
        args: JSON-safe extra fields shown in the trace viewer.
    """

    name: str
    cat: str
    ts_us: float
    dur_us: float
    tid: int
    phase: str = "X"
    args: dict = field(default_factory=dict)


class Tracer:
    """Collects span events for one traced execution (thread-safe).

    Args:
        max_events: When set, the tracer keeps only the newest
            ``max_events`` events (a bounded flight ring for span data)
            — what a long-running service uses so its tracer cannot
            grow without bound.  ``None`` (the default) keeps
            everything, the right choice for one traced run.
    """

    def __init__(self, max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be at least 1")
        self._epoch_ns = time.perf_counter_ns()
        #: Wall-clock anchor of the monotonic epoch.  Each process's
        #: ``ts`` values are relative to its own ``perf_counter`` epoch;
        #: a multi-process merge rebases them onto a common timeline via
        #: this anchor (see ``repro.obs.fleet.merge_traces``).
        self.epoch_unix_s = time.time()
        self._lock = threading.Lock()
        self._max_events = max_events
        self.events: list[SpanEvent] = []

    def _append(self, event: SpanEvent) -> None:
        with self._lock:
            self.events.append(event)
            if (
                self._max_events is not None
                and len(self.events) > self._max_events
            ):
                del self.events[: len(self.events) - self._max_events]

    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self._epoch_ns) / 1000.0

    @contextlib.contextmanager
    def span(self, name: str, cat: str = "", **args) -> Iterator[None]:
        """Record a complete event spanning the enclosed block."""
        tid = threading.get_ident()
        stack = _SPAN_STACKS.get(tid)
        if stack is None:
            stack = _SPAN_STACKS[tid] = []
        stack.append(name)
        start_ns = time.perf_counter_ns()
        try:
            yield
        finally:
            end_ns = time.perf_counter_ns()
            stack.pop()
            if not stack:
                _SPAN_STACKS.pop(tid, None)
            self._append(
                SpanEvent(
                    name=name,
                    cat=cat,
                    ts_us=(start_ns - self._epoch_ns) / 1000.0,
                    dur_us=(end_ns - start_ns) / 1000.0,
                    tid=tid,
                    args=args,
                )
            )

    def instant(self, name: str, cat: str = "", **args) -> None:
        """Record a zero-duration marker (fault injected, retry, ...)."""
        self._append(
            SpanEvent(
                name=name,
                cat=cat,
                ts_us=self._now_us(),
                dur_us=0.0,
                tid=threading.get_ident(),
                phase="i",
                args=args,
            )
        )

    # -- export ---------------------------------------------------------------

    def to_chrome(self, instance: str | None = None) -> dict:
        """The Chrome Trace Event Format document for this tracer.

        Args:
            instance: Optional fleet instance name recorded in
                ``otherData`` so a multi-process merge can label this
                process's lane.
        """
        pid = os.getpid()
        trace_events = []
        with self._lock:
            events = list(self.events)
        for event in events:
            entry = {
                "name": event.name,
                "cat": event.cat or "repro",
                "ph": event.phase,
                "ts": round(event.ts_us, 3),
                "pid": pid,
                "tid": event.tid,
                "args": event.args,
            }
            if event.phase == "X":
                entry["dur"] = round(event.dur_us, 3)
            else:
                entry["s"] = "t"  # instant scope: thread
            trace_events.append(entry)
        other: dict = {
            "producer": "repro.obs.trace",
            "pid": pid,
            "epoch_unix_s": round(self.epoch_unix_s, 6),
        }
        if instance is not None:
            other["instance"] = instance
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": other,
        }

    def summary(self, top: int = 10) -> list[dict]:
        """Total wall time per span name, descending — a quick hot list."""
        totals: dict[str, list[float]] = {}
        with self._lock:
            events = list(self.events)
        for event in events:
            if event.phase != "X":
                continue
            bucket = totals.setdefault(event.name, [0.0, 0.0])
            bucket[0] += event.dur_us
            bucket[1] += 1
        ranked = sorted(totals.items(), key=lambda kv: -kv[1][0])
        return [
            {"name": name, "total_us": round(total, 1), "count": int(count)}
            for name, (total, count) in ranked[:top]
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)


#: The ambient tracer instrumented code consults; ``None`` = tracing off.
_ACTIVE: contextvars.ContextVar[Tracer | None] = contextvars.ContextVar(
    "repro_tracer", default=None
)

#: Shared no-op context manager returned while tracing is disabled.
_NULL_SPAN = contextlib.nullcontext()


def current_tracer() -> Tracer | None:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE.get()


@contextlib.contextmanager
def tracing(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Activate ``tracer`` for the enclosed execution (``None`` = no-op)."""
    if tracer is None:
        yield None
        return
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def span(name: str, cat: str = "", **args):
    """A span context manager on the ambient tracer; no-op when disabled.

    The disabled path returns one shared ``nullcontext`` instance —
    reentrant, reusable, and allocation-free — which is what keeps the
    default (untraced) configuration within the <2% overhead budget.
    """
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat, **args)


def instant(name: str, cat: str = "", **args) -> None:
    """An instant marker on the ambient tracer; no-op when disabled."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.instant(name, cat, **args)
