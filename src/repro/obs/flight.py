"""The flight recorder: a bounded ring buffer of recent run events.

While a workload characterizes (or a job runs), the layers below record
compact events — task retries, injected faults, speculative twins, phase
milestones — into the ambient :class:`FlightRecorder`.  The last
``capacity`` events are attached to the resulting characterization and
persisted with it (store schema v4), so "why was this run slow or
degraded" is answerable from the stored artifact without re-running
anything.

Events are JSON-safe dicts::

    {"seq": 17, "t_ms": 142.7, "kind": "task-retry",
     "task": "map:wordcount", "attempt": 2, "fault": "task-crash"}

``seq`` is a monotone sequence number (gaps reveal ring overflow) and
``t_ms`` is milliseconds since the recorder started, on the monotonic
clock.  Like the tracer, the recorder is ambient and purely
observational — recording never perturbs execution, so the 45-metric
matrix is identical with or without one active.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from collections import deque
from collections.abc import Iterator

__all__ = [
    "FlightRecorder",
    "current_flight",
    "flight_recording",
    "record",
]

#: Default ring capacity — enough for a chaotic run's full retry story
#: while keeping a stored characterization's event payload small.
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """A thread-safe ring buffer of recent events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._start_ns = time.perf_counter_ns()

    def record(self, kind: str, **fields) -> None:
        """Append one event; the oldest event falls off a full ring."""
        t_ms = (time.perf_counter_ns() - self._start_ns) / 1e6
        with self._lock:
            self._seq += 1
            self._events.append(
                {"seq": self._seq, "t_ms": round(t_ms, 3), "kind": kind, **fields}
            )

    def snapshot(self) -> list[dict]:
        """The buffered events, oldest first (copies, JSON-safe)."""
        with self._lock:
            return [dict(event) for event in self._events]

    @property
    def total_recorded(self) -> int:
        """Events recorded over the recorder's lifetime (ring may hold fewer)."""
        with self._lock:
            return self._seq

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


#: The ambient recorder the engine/fault/job layers report into.
_ACTIVE: contextvars.ContextVar[FlightRecorder | None] = contextvars.ContextVar(
    "repro_flight_recorder", default=None
)


def current_flight() -> FlightRecorder | None:
    """The active recorder, or ``None`` when nothing is recording."""
    return _ACTIVE.get()


@contextlib.contextmanager
def flight_recording(
    recorder: FlightRecorder | None,
) -> Iterator[FlightRecorder | None]:
    """Activate ``recorder`` for the enclosed execution (``None`` = no-op)."""
    if recorder is None:
        yield None
        return
    token = _ACTIVE.set(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.reset(token)


def record(kind: str, **fields) -> None:
    """Record on the ambient recorder; no-op (one ContextVar.get) without one."""
    recorder = _ACTIVE.get()
    if recorder is not None:
        recorder.record(kind, **fields)
