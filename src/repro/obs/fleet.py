"""Fleet-wide telemetry: cross-process metric shards and trace merging.

PR 8 made ``repro serve`` a pre-fork fleet — one supervisor, N server
workers, plus fork-once collection pool workers — with shared-nothing
memory.  Each process still has exactly one in-memory
:data:`~repro.obs.metrics.REGISTRY` and (optionally) one
:class:`~repro.obs.trace.Tracer`, so ``GET /metrics`` used to report
only the worker that answered and pool/supervisor telemetry was
unreachable.  This module is the spine that makes the observability
plane fleet-wide, using the same coordination substrate everything else
uses: plain files in the shared store directory.

Layout (under the store root)::

    telemetry/metrics/<instance>-<pid>.json   one metric shard per process
    telemetry/traces/<instance>-<pid>.json    one Chrome-trace spill per process
    telemetry/telemetry.lock                  FileLock guarding shard GC

**Metric shards** — every process runs a :class:`ShardWriter`: a daemon
timer thread that atomically rewrites the process's shard (full
:meth:`~repro.obs.metrics.MetricsRegistry.to_shard` snapshot plus a
heartbeat) every ``interval_s`` and once more at exit.  Scrape-time
aggregation (:func:`read_live_shards` + :func:`merge_shards`) merges the
live shards into one fleet view: counters and histogram buckets are
summed; gauges follow their per-metric ``aggregation`` declaration —
``"sum"`` for disjoint per-process values (live jobs), ``"per_worker"``
(one sample per process under a ``worker=<instance>`` label) for gauges
describing a shared resource, so the merged exposition never silently
double-counts.  A shard whose pid is dead on this host, or whose
heartbeat is older than its TTL, is excluded and garbage-collected
under the telemetry FileLock (check-then-unlink, so concurrent scrapers
remove it exactly once); a torn/partial shard is treated as absent.

**Trace merge** — :func:`merge_traces` stitches per-process Chrome trace
documents into one file: each document's timestamps (relative to its
process's ``perf_counter`` epoch) are rebased onto a common timeline via
the tracer's ``epoch_unix_s`` wall-clock anchor, and ``process_name`` /
``thread_name`` metadata ("M") events label each pid lane so Perfetto
shows supervisor, server workers and pool workers side by side.
Correlation IDs carried in span args join client -> server -> job ->
pool-worker spans end-to-end.

Everything here is purely observational: shards are written off the
request path by a timer thread, nothing consumes randomness or changes
scheduling, and a sharded+traced run's 45-metric matrix stays
bit-identical.
"""

from __future__ import annotations

import atexit
import json
import os
import socket
import threading
import time
from pathlib import Path

from repro.obs.log import get_logger
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Tracer

__all__ = [
    "SHARD_SCHEMA",
    "ShardWriter",
    "Shard",
    "metrics_dir",
    "traces_dir",
    "load_shard",
    "read_live_shards",
    "gc_stale_shards",
    "merge_shards",
    "render_merged",
    "fleet_status",
    "load_trace_spills",
    "merge_traces",
    "merge_store_traces",
]

_log = get_logger("repro.obs.fleet")

#: Version stamp of the shard file format; readers skip other schemas.
SHARD_SCHEMA = 1

#: Default seconds between periodic shard snapshots.
DEFAULT_INTERVAL_S = 2.0

#: Default shard TTL: a shard whose heartbeat is older than this is
#: presumed dead even when its pid cannot be probed (other host).
DEFAULT_TTL_S = 120.0


def metrics_dir(root: str | Path) -> Path:
    """The metric-shard directory under a store root."""
    return Path(root) / "telemetry" / "metrics"


def traces_dir(root: str | Path) -> Path:
    """The trace-spill directory under a store root."""
    return Path(root) / "telemetry" / "traces"


def _telemetry_lock(root: str | Path):
    from repro.service.locking import FileLock

    return FileLock(Path(root) / "telemetry" / "telemetry.lock")


def _atomic_write_json(path: Path, document: dict) -> None:
    """Write ``document`` atomically (tmp file + rename) next to ``path``."""
    import tempfile

    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _safe_instance(instance: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch in "-_." else "-" for ch in instance
    )


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness of a pid on this host."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, other user
        return True
    except OSError:  # pragma: no cover - defensive
        return True
    return True


# -- writing ------------------------------------------------------------------


class ShardWriter:
    """Periodic, atomic snapshots of one process's registry (and tracer).

    Args:
        root: The shared store directory the fleet coordinates through.
        instance: Stable fleet-unique name of this process (becomes the
            ``worker`` label on per-worker gauges and the trace lane
            name).
        role: Coarse process role — ``"server"``, ``"supervisor"`` or
            ``"pool"`` — recorded in the shard and the fleet status.
        registry: The registry to snapshot (the process-wide
            :data:`REGISTRY` by default).
        tracer: When set, the tracer's span buffer is spilled to a
            per-pid Chrome trace file alongside each metric snapshot so
            :func:`merge_traces` can stitch the fleet's lanes together.
        interval_s: Seconds between periodic snapshots.
        ttl_s: Heartbeat TTL stamped into the shard; readers drop the
            shard once the heartbeat is older than this.
    """

    def __init__(
        self,
        root: str | Path,
        instance: str,
        role: str,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        interval_s: float = DEFAULT_INTERVAL_S,
        ttl_s: float | None = None,
    ) -> None:
        self.root = Path(root)
        self.instance = instance
        self.role = role
        self.registry = REGISTRY if registry is None else registry
        self.tracer = tracer
        self.interval_s = max(0.05, float(interval_s))
        self.ttl_s = (
            float(ttl_s)
            if ttl_s is not None
            else max(DEFAULT_TTL_S, 10.0 * self.interval_s)
        )
        self._pid = os.getpid()
        self._host = socket.gethostname()
        self._started_s = time.time()
        stem = f"{_safe_instance(instance)}-{self._pid}.json"
        self.path = metrics_dir(self.root) / stem
        self.trace_path = traces_dir(self.root) / stem
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._write_lock = threading.Lock()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "ShardWriter":
        """Write the first snapshot and start the timer thread."""
        self.write_now()
        self._thread = threading.Thread(
            target=self._run, name=f"shard-writer-{self.instance}", daemon=True
        )
        self._thread.start()
        atexit.register(self._at_exit)
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.write_now()

    def _at_exit(self) -> None:
        # Forked children inherit the registration; only the creating
        # process flushes (the thread is dead in children anyway).
        if os.getpid() == self._pid:
            self.close()

    def close(self) -> None:
        """Stop the timer and write one final snapshot.

        The shard is deliberately *not* deleted: a cleanly exited
        worker's counters stay scrapeable until dead-pid/TTL staleness
        retires the shard, exactly like a Prometheus target going away.
        """
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=2.0 * self.interval_s)
        self.write_now()

    # -- snapshots --------------------------------------------------------

    def write_now(self) -> bool:
        """Write the shard (and trace spill) immediately.

        Returns ``False`` instead of raising when the telemetry
        directory is gone (service shutting down, temp store deleted) —
        snapshots are best-effort by design.
        """
        shard = {
            "schema": SHARD_SCHEMA,
            "kind": "metrics-shard",
            "instance": self.instance,
            "role": self.role,
            "pid": self._pid,
            "host": self._host,
            "started_s": round(self._started_s, 3),
            "written_s": round(time.time(), 3),
            "ttl_s": self.ttl_s,
            "interval_s": self.interval_s,
            "metrics": self.registry.to_shard(),
        }
        with self._write_lock:
            try:
                _atomic_write_json(self.path, shard)
            except OSError:
                return False
            if self.tracer is not None:
                return self._spill_trace_locked()
        return True

    def spill_trace(self) -> bool:
        """Spill the tracer's buffer to the per-pid trace file now."""
        if self.tracer is None:
            return False
        with self._write_lock:
            return self._spill_trace_locked()

    def _spill_trace_locked(self) -> bool:
        document = self.tracer.to_chrome(instance=self.instance)
        document["otherData"]["role"] = self.role
        try:
            _atomic_write_json(self.trace_path, document)
        except OSError:
            return False
        return True


# -- reading ------------------------------------------------------------------


class Shard:
    """One parsed, schema-valid metric shard."""

    __slots__ = (
        "path",
        "instance",
        "role",
        "pid",
        "host",
        "started_s",
        "written_s",
        "ttl_s",
        "metrics",
    )

    def __init__(self, path: Path, record: dict) -> None:
        self.path = path
        self.instance = str(record["instance"])
        self.role = str(record.get("role", "worker"))
        self.pid = int(record["pid"])
        self.host = str(record.get("host", ""))
        self.started_s = float(record.get("started_s", 0.0))
        self.written_s = float(record.get("written_s", 0.0))
        self.ttl_s = float(record.get("ttl_s", DEFAULT_TTL_S))
        self.metrics = dict(record.get("metrics", {}))

    def counter_total(self, name: str) -> float:
        """Sum of one counter/gauge's samples in this shard (0 if absent)."""
        metric = self.metrics.get(name)
        if not isinstance(metric, dict) or "values" not in metric:
            return 0.0
        return float(sum(value for _key, value in metric["values"]))

    def is_stale(self, now: float | None = None, host: str | None = None) -> bool:
        """Dead pid on this host, or heartbeat older than the TTL."""
        now = time.time() if now is None else now
        if now - self.written_s > self.ttl_s:
            return True
        host = socket.gethostname() if host is None else host
        if self.host == host and not _pid_alive(self.pid):
            return True
        return False


def load_shard(path: Path) -> Shard | None:
    """Parse one shard file; torn/invalid/foreign-schema -> ``None``."""
    try:
        record = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError, OSError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or record.get("schema") != SHARD_SCHEMA:
        return None
    try:
        return Shard(path, record)
    except (KeyError, TypeError, ValueError):
        return None


def read_live_shards(root: str | Path, gc: bool = True) -> list[Shard]:
    """Every live shard under ``root``, stale ones excluded (and GC'd).

    Ordered by (role, instance) so merged output is stable regardless of
    directory enumeration order.
    """
    directory = metrics_dir(root)
    try:
        paths = sorted(directory.glob("*.json"))
    except OSError:
        return []
    now = time.time()
    host = socket.gethostname()
    live: list[Shard] = []
    dead: list[Path] = []
    for path in paths:
        shard = load_shard(path)
        if shard is None:
            # Torn or foreign file: absent from aggregation; reap it
            # only once it is old enough that no writer can still be
            # mid-rewrite next to it.
            try:
                if now - path.stat().st_mtime > DEFAULT_TTL_S:
                    dead.append(path)
            except OSError:
                pass
            continue
        if shard.is_stale(now=now, host=host):
            dead.append(path)
            continue
        live.append(shard)
    if gc and dead:
        gc_stale_shards(root, candidates=dead)
    live.sort(key=lambda s: (s.role, s.instance, s.pid))
    return live


def gc_stale_shards(
    root: str | Path, candidates: list[Path] | None = None
) -> list[Path]:
    """Remove stale/torn shards under the telemetry lock, exactly once.

    Every candidate is re-checked *under the lock* before the unlink, so
    two processes scraping concurrently cannot both claim the removal:
    the loser finds the file gone (or fresh again) and skips it.
    Returns the paths this call actually removed.
    """
    if candidates is None:
        directory = metrics_dir(root)
        try:
            candidates = sorted(directory.glob("*.json"))
        except OSError:
            return []
    if not candidates:
        return []
    removed: list[Path] = []
    now = time.time()
    host = socket.gethostname()
    with _telemetry_lock(root):
        for path in candidates:
            shard = load_shard(path)
            if shard is None:
                try:
                    stale = now - path.stat().st_mtime > DEFAULT_TTL_S
                except OSError:
                    continue  # already gone: the sibling won the race
            else:
                stale = shard.is_stale(now=now, host=host)
            if not stale:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue  # already gone: the sibling won the race
            removed.append(path)
    if removed:
        _log.info(
            "collected stale metric shards",
            extra={"count": len(removed)},
        )
    return removed


# -- merging ------------------------------------------------------------------


def merge_shards(shards: list[Shard]) -> MetricsRegistry:
    """Aggregate shards into one registry holding the fleet view.

    Counters and histograms (bucket-by-bucket, when bucket bounds agree)
    are summed across shards.  Gauges follow their shard-declared
    ``aggregation``: ``"sum"`` adds the per-process values;
    ``"per_worker"`` (the default) keeps one sample per process under an
    extra ``worker=<instance>`` label.  A shard entry whose kind (or
    histogram bucketing) disagrees with an earlier shard's is skipped —
    mixed-version fleets degrade to the first writer's schema instead of
    corrupting the merge.
    """
    merged = MetricsRegistry()
    for shard in shards:
        for name in sorted(shard.metrics):
            entry = shard.metrics[name]
            if not isinstance(entry, dict):
                continue
            kind = entry.get("kind")
            help_text = str(entry.get("help", ""))
            try:
                if kind == "histogram":
                    _merge_histogram(merged, name, help_text, entry)
                elif kind == "gauge":
                    _merge_gauge(merged, name, help_text, entry, shard.instance)
                elif kind == "counter":
                    _merge_counter(merged, name, help_text, entry)
            except Exception:  # noqa: BLE001 - one bad entry must not
                continue  # poison the whole exposition
    return merged


def _samples(entry: dict) -> list[tuple[tuple[str, ...], float]]:
    return [
        (tuple(str(part) for part in key), float(value))
        for key, value in entry.get("values", [])
    ]


def _merge_counter(merged: MetricsRegistry, name, help_text, entry) -> None:
    labels = tuple(entry.get("labels", ()))
    metric = merged.counter(name, help_text, labels)
    if metric.labelnames != labels:
        return  # kind/shape clash with an earlier shard: skip
    with metric._lock:
        for key, value in _samples(entry):
            metric._values[key] = metric._values.get(key, 0.0) + value


def _merge_gauge(merged, name, help_text, entry, instance: str) -> None:
    aggregation = entry.get("aggregation", "per_worker")
    labels = tuple(entry.get("labels", ()))
    if aggregation == "sum":
        metric = merged.gauge(name, help_text, labels, aggregation="sum")
        if metric.labelnames != labels:
            return
        with metric._lock:
            for key, value in _samples(entry):
                metric._values[key] = metric._values.get(key, 0.0) + value
        return
    worker_labels = labels + ("worker",)
    metric = merged.gauge(name, help_text, worker_labels)
    if metric.labelnames != worker_labels:
        return
    with metric._lock:
        for key, value in _samples(entry):
            metric._values[key + (instance,)] = value


def _merge_histogram(merged: MetricsRegistry, name, help_text, entry) -> None:
    buckets = tuple(float(b) for b in entry.get("buckets", ()))
    counts = [int(c) for c in entry.get("counts", ())]
    if len(counts) != len(buckets) + 1:
        return
    metric = merged.histogram(name, help_text, buckets)
    if metric.buckets != buckets:
        return  # bucket bounds disagree across shard versions: skip
    with metric._lock:
        for index, count in enumerate(counts):
            metric._counts[index] += count
        metric._sum += float(entry.get("sum", 0.0))
        metric._count += int(entry.get("count", 0))


def render_merged(shards: list[Shard]) -> str:
    """The fleet-wide Prometheus text exposition for ``shards``."""
    return merge_shards(shards).render_prometheus()


# -- fleet status -------------------------------------------------------------


def fleet_status(shards: list[Shard], now: float | None = None) -> dict:
    """Per-worker liveness plus fleet totals, for ``GET /fleet``.

    Everything is computed from the shards alone, so any process that
    can read the store directory gets the same answer the serving
    worker would give.
    """
    now = time.time() if now is None else now
    merged = merge_shards(shards)
    workers = []
    uptime_max = 0.0
    for shard in shards:
        uptime = max(0.0, now - shard.started_s)
        uptime_max = max(uptime_max, uptime)
        workers.append(
            {
                "instance": shard.instance,
                "role": shard.role,
                "pid": shard.pid,
                "host": shard.host,
                "alive": True,  # stale shards never reach this list
                "uptime_s": round(uptime, 3),
                "heartbeat_age_s": round(max(0.0, now - shard.written_s), 3),
                "jobs_live": shard.counter_total("repro_jobs_live"),
                "requests_total": shard.counter_total(
                    "repro_http_requests_total"
                ),
                "restarts_total": shard.counter_total(
                    "repro_worker_restarts_total"
                ),
            }
        )

    def _merged_total(name: str) -> float:
        metric = merged.get(name)
        if isinstance(metric, (Counter, Gauge)):
            with metric._lock:
                return float(sum(metric._values.values()))
        return 0.0

    requests_total = _merged_total("repro_http_requests_total")
    latency = merged.get("repro_http_request_seconds")
    quantiles = (
        {
            "p50": round(latency.quantile(0.50), 6),
            "p95": round(latency.quantile(0.95), 6),
            "p99": round(latency.quantile(0.99), 6),
        }
        if isinstance(latency, Histogram) and latency.count
        else {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    )
    return {
        "now_s": round(now, 3),
        "workers": workers,
        "totals": {
            "processes": len(shards),
            "servers": sum(1 for s in shards if s.role == "server"),
            "restarts_total": _merged_total("repro_worker_restarts_total"),
            "jobs_live": _merged_total("repro_jobs_live"),
            "requests_total": requests_total,
            "requests_per_s": round(requests_total / uptime_max, 3)
            if uptime_max > 0
            else 0.0,
            "request_seconds": quantiles,
        },
    }


# -- trace merging ------------------------------------------------------------


def load_trace_spills(root: str | Path) -> list[dict]:
    """Every parseable trace spill under ``root`` (torn files skipped)."""
    directory = traces_dir(root)
    try:
        paths = sorted(directory.glob("*.json"))
    except OSError:
        return []
    documents = []
    for path in paths:
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(document, dict) and isinstance(
            document.get("traceEvents"), list
        ):
            documents.append(document)
    return documents


def merge_traces(documents: list[dict]) -> dict:
    """Stitch per-process Chrome trace documents into one fleet trace.

    Each document's timestamps are microseconds since *its* process's
    monotonic epoch; the ``epoch_unix_s`` anchor in ``otherData`` maps
    that epoch to wall time, so every document is shifted by
    ``(epoch - min(epochs)) * 1e6`` onto one shared timeline.  A
    ``process_name`` metadata event labels each pid lane with the fleet
    instance name (and role), and ``thread_name`` events label each
    (pid, tid) track, which is what makes the merged file legible in
    Perfetto.  Documents without an anchor are left unshifted.
    """
    epochs = [
        float(doc["otherData"]["epoch_unix_s"])
        for doc in documents
        if isinstance(doc.get("otherData"), dict)
        and "epoch_unix_s" in doc["otherData"]
    ]
    base = min(epochs) if epochs else 0.0
    events: list[dict] = []
    lanes: dict[int, str] = {}
    tids: dict[int, set[int]] = {}
    for doc in documents:
        other = doc.get("otherData") or {}
        epoch = float(other.get("epoch_unix_s", base))
        offset_us = (epoch - base) * 1e6
        for event in doc.get("traceEvents", []):
            if not isinstance(event, dict) or event.get("ph") == "M":
                continue
            shifted = dict(event)
            if isinstance(shifted.get("ts"), (int, float)):
                shifted["ts"] = round(shifted["ts"] + offset_us, 3)
            pid = shifted.get("pid")
            tid = shifted.get("tid")
            if isinstance(pid, int):
                if isinstance(other.get("instance"), str):
                    label = other["instance"]
                    role = other.get("role")
                    lanes[pid] = f"{label} ({role})" if role else label
                else:
                    lanes.setdefault(pid, f"pid-{pid}")
                if isinstance(tid, int):
                    tids.setdefault(pid, set()).add(tid)
            events.append(shifted)
    events.sort(key=lambda e: (e.get("ts", 0), e.get("pid", 0)))

    metadata: list[dict] = []
    for pid in sorted(lanes):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": lanes[pid]},
            }
        )
        for index, tid in enumerate(sorted(tids.get(pid, ()))):
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": "main" if index == 0 else f"t{index}"},
                }
            )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs.fleet",
            "merged_documents": len(documents),
            "pids": sorted(lanes),
        },
    }


def merge_store_traces(
    root: str | Path, extra: list[dict] | None = None
) -> dict:
    """Merge every trace spill under ``root`` (plus ``extra`` documents)."""
    documents = load_trace_spills(root)
    if extra:
        documents = documents + list(extra)
    return merge_traces(documents)
