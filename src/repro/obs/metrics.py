"""Runtime metrics: counters, gauges and histograms in one registry.

The stacks, fault, store and job layers register metrics at import time
and update them as they work; the service renders the process-wide
:data:`REGISTRY` in Prometheus text exposition format (``GET /metrics``)
and as structured JSON (``GET /stats``).

Everything is standard library and thread-safe: one lock per metric,
plain dicts keyed by label-value tuples.  Updates from the job manager's
worker threads, the HTTP handler threads and the engines all land
exactly (no lost updates) — a property the test suite hammers.

Naming follows the Prometheus conventions: ``repro_<noun>_total`` for
counters, ``repro_<noun>`` for gauges, ``repro_<noun>_seconds`` for
latency histograms.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "GAUGE_AGGREGATIONS",
]

#: Latency buckets (seconds) covering sub-millisecond request serving up
#: to multi-minute collections.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
    300.0,
)

_NO_LABELS = ()


def _label_key(
    labelnames: tuple[str, ...], labels: dict[str, object]
) -> tuple[str, ...]:
    if tuple(sorted(labels)) != tuple(sorted(labelnames)):
        raise ConfigurationError(
            f"expected labels {labelnames}, got {tuple(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _render_labels(labelnames: tuple[str, ...], key: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape(value)}"' for name, value in zip(labelnames, key)
    )
    return "{" + pairs + "}"


def _escape(value: str) -> str:
    """Escape a label value per the text exposition format 0.0.4.

    Backslash first — escaping it last would corrupt the escapes the
    earlier replacements introduced.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    """Escape HELP text: only backslash and newline, quotes stay literal."""
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render bare, floats as repr."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Metric:
    """Shared plumbing: name, help, labels, per-metric lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _header(self) -> list[str]:
        return [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Metric):
    """A monotonically increasing count, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()):
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = (
            {} if labelnames else {_NO_LABELS: 0.0}
        )

    def reset(self) -> None:
        """Zero the samples (post-fork hygiene; registration survives)."""
        with self._lock:
            self._values = {} if self.labelnames else {_NO_LABELS: 0.0}

    def to_shard(self) -> dict:
        """JSON-safe serialization for cross-process metric shards."""
        with self._lock:
            items = sorted(self._values.items())
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.labelnames),
            "values": [[list(key), value] for key, value in items],
        }

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ConfigurationError(f"{self.name}: counters only go up")
        key = _label_key(self.labelnames, labels) if labels or self.labelnames else _NO_LABELS
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = _label_key(self.labelnames, labels) if labels or self.labelnames else _NO_LABELS
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            lines.append(
                f"{self.name}{_render_labels(self.labelnames, key)}"
                f" {_format_value(value)}"
            )
        return lines

    def snapshot(self) -> dict:
        with self._lock:
            items = sorted(self._values.items())
        if not self.labelnames:
            return {"type": self.kind, "value": items[0][1] if items else 0.0}
        return {
            "type": self.kind,
            "values": {
                ",".join(f"{n}={v}" for n, v in zip(self.labelnames, key)): value
                for key, value in items
            },
        }


#: Valid cross-process gauge aggregation declarations (see :class:`Gauge`).
GAUGE_AGGREGATIONS = ("per_worker", "sum")


class Gauge(Counter):
    """A value that can go up and down (queue depth, store entries).

    Args:
        aggregation: How a *fleet-wide* merge (``repro.obs.fleet``) must
            combine this gauge across process shards.  ``"per_worker"``
            (the default) exposes one sample per process with a
            ``worker=<instance>`` label — correct for gauges that
            describe a *shared* resource every process reports (store
            entries/bytes) where summing would double-count.  ``"sum"``
            declares the per-process values disjoint (each process owns
            its share, e.g. live jobs) so the merged sample is their sum.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        aggregation: str = "per_worker",
    ):
        if aggregation not in GAUGE_AGGREGATIONS:
            raise ConfigurationError(
                f"{name}: aggregation must be one of {GAUGE_AGGREGATIONS},"
                f" got {aggregation!r}"
            )
        super().__init__(name, help, labelnames)
        self.aggregation = aggregation

    def to_shard(self) -> dict:
        shard = super().to_shard()
        shard["aggregation"] = self.aggregation
        return shard

    def inc(self, amount: float = 1.0, **labels) -> None:  # noqa: D102
        key = _label_key(self.labelnames, labels) if labels or self.labelnames else _NO_LABELS
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels) -> None:
        key = _label_key(self.labelnames, labels) if labels or self.labelnames else _NO_LABELS
        with self._lock:
            self._values[key] = float(value)


class Histogram(_Metric):
    """Cumulative-bucket histogram with sum/count, Prometheus-style.

    ``observe`` places a value into fixed upper-bound buckets;
    :meth:`quantile` estimates percentiles from the bucket counts by
    linear interpolation (what ``/stats`` reports as p50/p95/p99).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, ())
        if not buckets or tuple(sorted(buckets)) != tuple(buckets):
            raise ConfigurationError(f"{self.name}: buckets must be ascending")
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) from bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        lower = 0.0
        for index, count in enumerate(counts):
            upper = (
                self.buckets[index]
                if index < len(self.buckets)
                else self.buckets[-1]
            )
            if cumulative + count >= rank and count > 0:
                fraction = (rank - cumulative) / count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
            cumulative += count
            lower = upper
        return self.buckets[-1]

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            total_count = self._count
        cumulative = 0
        for index, bound in enumerate(self.buckets):
            cumulative += counts[index]
            lines.append(
                f'{self.name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        cumulative += counts[-1]
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{self.name}_sum {repr(round(total_sum, 9))}")
        lines.append(f"{self.name}_count {total_count}")
        return lines

    def snapshot(self) -> dict:
        with self._lock:
            total_sum = self._sum
            total_count = self._count
        return {
            "type": self.kind,
            "count": total_count,
            "sum": round(total_sum, 9),
            "p50": round(self.quantile(0.50), 9),
            "p95": round(self.quantile(0.95), 9),
            "p99": round(self.quantile(0.99), 9),
        }

    def reset(self) -> None:
        """Zero the samples (post-fork hygiene; buckets survive)."""
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0

    def to_shard(self) -> dict:
        """JSON-safe serialization for cross-process metric shards."""
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            total_count = self._count
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "counts": counts,
            "sum": round(total_sum, 9),
            "count": total_count,
        }


class MetricsRegistry:
    """A named collection of metrics with idempotent registration.

    ``counter``/``gauge``/``histogram`` return the existing instance when
    the name is already registered (module reloads and test reimports
    must not double-register), raising only on a kind mismatch.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, cls, name: str, *args, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or type(existing) is not cls:
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            metric = cls(name, *args, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str, labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        aggregation: str = "per_worker",
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames, aggregation)

    def histogram(
        self,
        name: str,
        help: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, buckets)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-safe view of every metric (what ``/stats`` serves)."""
        with self._lock:
            metrics = [
                (name, self._metrics[name]) for name in sorted(self._metrics)
            ]
        return {name: metric.snapshot() for name, metric in metrics}

    def to_shard(self) -> dict:
        """Every metric serialized for a cross-process shard file."""
        with self._lock:
            metrics = [
                (name, self._metrics[name]) for name in sorted(self._metrics)
            ]
        return {name: metric.to_shard() for name, metric in metrics}

    def reset_values(self) -> None:
        """Zero every metric's samples, keeping the registrations.

        Forked children inherit the parent's registry *values* — a
        server worker starts life already carrying the supervisor's
        restart counts, a pool worker the server's request counts.  Left
        alone, each child's shard would re-report those samples and the
        fleet merge would multiply-count them; every forked entry point
        therefore calls this first.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()


#: The process-wide registry every layer reports into.
REGISTRY = MetricsRegistry()
