"""Structured logging for the repro library.

Configures the stdlib ``logging`` tree under the ``"repro"`` root with a
``key=value`` (logfmt-style) formatter, or line-delimited JSON with
``json_format=True`` — the CLI's ``--log-level`` / ``--log-json`` flags
call :func:`configure_logging` before dispatching a subcommand.

Library modules obtain loggers through :func:`get_logger` and attach
structured context via the stdlib ``extra`` mechanism::

    log = get_logger(__name__)
    log.warning("task retried", extra={"task": name, "attempt": attempt})

renders as::

    ts=2026-08-06T12:00:00.123Z level=warning logger=repro.faults.recovery \
        msg="task retried" task=map:wordcount attempt=2

Unconfigured (the library default), the tree carries a ``NullHandler``
so importing repro never writes to stderr — not even WARNING records via
the stdlib's last-resort handler.  Records still propagate to the root
logger for applications that configure their own handlers there.
"""

from __future__ import annotations

import json
import logging
import sys
import time

__all__ = ["configure_logging", "get_logger", "KeyValueFormatter", "JsonFormatter"]

# Standard library practice: a library never emits to stderr unless its
# user asked.  The NullHandler suppresses logging.lastResort for the
# whole "repro" tree while leaving propagation to the root logger alone.
logging.getLogger("repro").addHandler(logging.NullHandler())

#: Attributes every LogRecord carries; anything else came in via ``extra``.
_STANDARD_ATTRS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def _extra_fields(record: logging.LogRecord) -> dict:
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _STANDARD_ATTRS and not key.startswith("_")
    }


def _format_ts(created: float) -> str:
    base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(created))
    return f"{base}.{int((created % 1) * 1000):03d}Z"


def _quote(value: object) -> str:
    text = str(value)
    if text == "" or any(c in text for c in ' "=\n'):
        return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'
    return text


class KeyValueFormatter(logging.Formatter):
    """``ts=... level=... logger=... msg="..." key=value ...`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            f"ts={_format_ts(record.created)}",
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
            f"msg={_quote(record.getMessage())}",
        ]
        for key, value in sorted(_extra_fields(record).items()):
            parts.append(f"{key}={_quote(value)}")
        if record.exc_info:
            parts.append(f"exc={_quote(self.formatException(record.exc_info))}")
        return " ".join(parts)


class JsonFormatter(logging.Formatter):
    """One JSON object per line, stable key order."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": _format_ts(record.created),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in sorted(_extra_fields(record).items()):
            try:
                json.dumps(value)
                payload[key] = value
            except (TypeError, ValueError):
                payload[key] = str(value)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=False)


def get_logger(name: str) -> logging.Logger:
    """A logger inside the ``repro`` tree (``repro.service.jobs``, ...)."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def configure_logging(
    level: str = "info",
    json_format: bool = False,
    stream=None,
) -> logging.Logger:
    """Configure the ``repro`` logger tree; idempotent.

    Args:
        level: Case-insensitive level name ("debug", "info", "warning",
            "error", "critical").
        json_format: Emit line-delimited JSON instead of key=value.
        stream: Output stream (default ``sys.stderr``).

    Returns:
        The configured ``"repro"`` root logger.

    Raises:
        ValueError: On an unknown level name.
    """
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger("repro")
    root.setLevel(numeric)
    formatter = JsonFormatter() if json_format else KeyValueFormatter()
    # Replace our own handlers only (re-configuration switches format or
    # level without stacking duplicate handlers).
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(formatter)
    handler._repro_obs = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.propagate = False
    return root
