"""Continuous statistical CPU profiling with span attribution.

The paper's method is profiling workloads; this module turns the same
lens on the reproduction's own fleet.  A :class:`Profiler` samples every
thread's Python stack at a fixed interval and charges each sample to the
thread's **live span path** (:func:`repro.obs.trace.span_paths`), so a
profile answers "which phase of which workload burned the time" —
``pool:characterize:H-Sort`` / ``simulate`` — and not just "which
function".  Everything is stdlib-only and purely observational: sampling
reads frames and span names, consumes no randomness, and changes no
scheduling decision, so a characterization with profiling enabled stays
bit-identical to one without.

**Sampler protocol.**  Two clocks drive the sampler:

- ``signal`` — ``signal.setitimer`` fires ``SIGALRM`` (wall mode) or
  ``SIGPROF`` (CPU mode, counts only when the process is on-CPU) every
  ``interval_ms``; the Python handler walks ``sys._current_frames()``.
  CPython only allows handler installation from the **main thread**, so
  installation is split out as the *arm protocol*: :func:`arm` installs
  the handlers (a no-op returning ``False`` off the main thread) and is
  called once at every process entry point — CLI main, supervisor,
  forked server worker, pool worker — after which ``setitimer`` itself
  may be called from *any* thread, making start/stop safe from HTTP
  handler threads and the profile agent.
- ``thread`` — a daemon thread samples on an ``Event.wait`` timer; the
  fallback when the process never armed (e.g. a server embedded in a
  test's background thread).  Wall mode only.

Samples whose leaf frame sits in a known blocking stdlib module
(``threading.py``, ``selectors.py``, ``queue.py``, ...) are classified
*idle*: parked worker loops and accept/poll waits.  Attribution quality
is judged on the busy remainder — see :func:`attribution`.

**Fleet integration.**  Each process runs a :class:`ProfileAgent`
(daemon thread) that watches ``<store>/telemetry/profiles/request.json``.
Any worker answering ``GET /profile?seconds=N`` publishes a request
window through :func:`request_profile` (concurrent requests join the
in-flight window), every agent samples for the window and spills a
per-pid profile document next to the request (same atomic-write +
TTL-staleness + lock-guarded exactly-once GC lifecycle as the metric
shards), and the serving worker merges the spills with
:func:`collect_fleet_profile`.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sys
import threading
import time
import uuid
from pathlib import Path

from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span_paths

__all__ = [
    "PROFILE_SCHEMA",
    "Profiler",
    "ProfilerError",
    "arm",
    "armed",
    "ProfileAgent",
    "profiles_dir",
    "profile_request_path",
    "request_profile",
    "current_request",
    "spill_profile",
    "load_profile_doc",
    "read_profile_docs",
    "gc_stale_profiles",
    "collect_fleet_profile",
    "merge_profile_docs",
    "collapsed_stacks",
    "span_totals",
    "attribution",
    "validate_profile",
]

_log = get_logger("repro.obs.prof")

#: Version stamp of profile documents; readers skip other schemas.
PROFILE_SCHEMA = 1

#: Default / maximum on-demand sampling window (seconds).
DEFAULT_WINDOW_S = 3.0
MAX_WINDOW_S = 30.0

#: Default sampling interval; 5ms = 200Hz, cheap enough to leave the
#: fleet responsive while a window is open.
DEFAULT_INTERVAL_MS = 5.0

#: How long a spilled profile stays readable before staleness GC.
DEFAULT_PROFILE_TTL_S = 120.0

#: Deepest stack recorded per sample; frames below the cut are dropped
#: from the root end (the leaf is what a profile is about).
MAX_STACK_DEPTH = 64

#: A sample whose *leaf* frame lives in one of these stdlib files is a
#: parked thread (lock/queue/select wait), not CPU work.
_IDLE_BASENAMES = frozenset(
    {
        "threading.py",
        "selectors.py",
        "queue.py",
        "socket.py",
        "socketserver.py",
        "ssl.py",
        "connection.py",
        "synchronize.py",
        "process.py",
        "popen_fork.py",
        "subprocess.py",
    }
)

#: Roots used for samples with no live span path.
UNATTRIBUTED_BUSY = "(untracked)"
UNATTRIBUTED_IDLE = "(idle)"

_LABEL_CACHE: dict[object, str] = {}
_PROF_FILE = __file__


class ProfilerError(RuntimeError):
    """Profiler misuse: double-start, CPU mode without the arm, ..."""


# -- the arm protocol ---------------------------------------------------------

_STATE_LOCK = threading.Lock()
_ARMED = False
_ACTIVE: "Profiler | None" = None


def _reset_after_fork() -> None:
    # The forked child inherits installed handlers (kept: _ARMED stays
    # valid) but not the parent's itimer or its in-flight profiler.
    global _ACTIVE
    _ACTIVE = None


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_reset_after_fork)


def _on_tick(signum, frame) -> None:
    profiler = _ACTIVE
    if profiler is not None:
        profiler._sample(signal_frame=frame)


def arm() -> bool:
    """Install the profiling signal handlers (main thread only).

    Idempotent and cheap; returns ``True`` once the handlers are in
    place.  Called from a non-main thread — or on a platform without
    ``setitimer`` — it returns ``False`` and the profiler falls back to
    its thread clock.
    """
    global _ARMED
    if _ARMED:
        return True
    if not hasattr(signal, "setitimer"):  # pragma: no cover - POSIX only
        return False
    if threading.current_thread() is not threading.main_thread():
        return False
    try:
        signal.signal(signal.SIGALRM, _on_tick)
        signal.signal(signal.SIGPROF, _on_tick)
    except (ValueError, OSError):  # pragma: no cover - defensive
        return False
    _ARMED = True
    return True


def armed() -> bool:
    """Whether this process's signal handlers are installed."""
    return _ARMED


# -- frame extraction ---------------------------------------------------------


def _frame_label(code) -> str:
    label = _LABEL_CACHE.get(code)
    if label is None:
        name = getattr(code, "co_qualname", code.co_name)
        parts = code.co_filename.replace("\\", "/").rsplit("/", 3)
        short = "/".join(parts[-2:])
        label = f"{short}:{name}"
        _LABEL_CACHE[code] = label
    return label


def _extract_stack(frame) -> tuple[tuple[str, ...], bool]:
    """(root-first frame labels, leaf-is-idle) for one thread's frame."""
    labels: list[str] = []
    idle = False
    depth = 0
    leaf_seen = False
    while frame is not None and depth < MAX_STACK_DEPTH:
        code = frame.f_code
        if code.co_filename != _PROF_FILE:
            if not leaf_seen:
                leaf_seen = True
                basename = code.co_filename.rpartition("/")[2]
                idle = basename in _IDLE_BASENAMES
            labels.append(_frame_label(code))
        frame = frame.f_back
        depth += 1
    labels.reverse()
    return tuple(labels), idle


# -- the profiler -------------------------------------------------------------


class Profiler:
    """One statistical sampling window over every thread in the process.

    Args:
        mode: ``"wall"`` samples on elapsed time (parked threads appear
            and are flagged idle); ``"cpu"`` samples on consumed CPU
            time via ``ITIMER_PROF`` and requires the signal clock.
        interval_ms: Sampling period.
        clock: ``"auto"`` uses the signal clock when this process is
            :func:`armed <arm>` (arming on the fly when running on the
            main thread) and the thread clock otherwise; ``"signal"`` /
            ``"thread"`` force one.
        instance: Fleet instance name stamped into the document.
        role: Fleet role stamped into the document.
    """

    def __init__(
        self,
        mode: str = "wall",
        interval_ms: float = DEFAULT_INTERVAL_MS,
        clock: str = "auto",
        instance: str | None = None,
        role: str | None = None,
    ) -> None:
        if mode not in ("wall", "cpu"):
            raise ValueError(f"unknown profiler mode {mode!r}")
        if clock not in ("auto", "signal", "thread"):
            raise ValueError(f"unknown profiler clock {clock!r}")
        self.mode = mode
        self.interval_ms = min(100.0, max(1.0, float(interval_ms)))
        self.instance = instance or f"pid-{os.getpid()}"
        self.role = role or "process"
        self._clock_requested = clock
        self.clock: str | None = None
        self._counts: dict[tuple[tuple[str, ...], tuple[str, ...], bool], int] = {}
        self._ticks = 0
        self._started_unix = 0.0
        self._started_mono = 0.0
        self.duration_s = 0.0
        self._running = False
        self._sampler_tid: int | None = None
        self._main_tid = threading.main_thread().ident
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.document: dict | None = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "Profiler":
        global _ACTIVE
        with _STATE_LOCK:
            if self._running:
                raise ProfilerError("profiler already started")
            if _ACTIVE is not None:
                raise ProfilerError(
                    "another profiler is already sampling this process"
                )
            use_signal = armed() or (
                self._clock_requested != "thread" and arm()
            )
            if self._clock_requested == "signal" and not use_signal:
                raise ProfilerError(
                    "signal clock requested but the process is not armed "
                    "(call repro.obs.prof.arm() from the main thread)"
                )
            if self.mode == "cpu" and not use_signal:
                raise ProfilerError(
                    "cpu mode needs the signal clock; arm() the process "
                    "from its main thread first"
                )
            self.clock = (
                "signal"
                if use_signal and self._clock_requested != "thread"
                else "thread"
            )
            self._running = True
            self._started_unix = time.time()
            self._started_mono = time.perf_counter()
            _ACTIVE = self
            interval_s = self.interval_ms / 1000.0
            if self.clock == "signal":
                timer = (
                    signal.ITIMER_PROF
                    if self.mode == "cpu"
                    else signal.ITIMER_REAL
                )
                self._timer = timer
                signal.setitimer(timer, interval_s, interval_s)
            else:
                self._stop.clear()
                self._thread = threading.Thread(
                    target=self._run_thread_clock,
                    name="prof-sampler",
                    daemon=True,
                )
                self._thread.start()
        return self

    def stop(self) -> dict:
        """Stop sampling and return this window's profile document."""
        global _ACTIVE
        with _STATE_LOCK:
            if not self._running:
                raise ProfilerError("profiler is not running")
            if self.clock == "signal":
                signal.setitimer(self._timer, 0.0, 0.0)
            else:
                self._stop.set()
            if _ACTIVE is self:
                _ACTIVE = None
            self._running = False
        if self._thread is not None:
            self._thread.join(timeout=1.0 + self.interval_ms / 1000.0)
            self._thread = None
        self.duration_s = time.perf_counter() - self._started_mono
        self.document = self._to_doc()
        return self.document

    def __enter__(self) -> "Profiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        if self._running:
            self.stop()

    # -- sampling ---------------------------------------------------------

    def _run_thread_clock(self) -> None:
        self._sampler_tid = threading.get_ident()
        interval_s = self.interval_ms / 1000.0
        while not self._stop.wait(interval_s):
            self._sample()

    def _sample(self, signal_frame=None) -> None:
        try:
            paths = span_paths()
            frames = sys._current_frames()
        except Exception:  # pragma: no cover - sampling is best-effort
            return
        self._ticks += 1
        counts = self._counts
        for tid, frame in frames.items():
            if tid == self._sampler_tid:
                continue
            if signal_frame is not None and tid == self._main_tid:
                # The handler runs on the main thread; its entry in
                # _current_frames() is the handler itself.  The frame
                # the signal interrupted is what we were executing.
                frame = signal_frame
            stack, idle = _extract_stack(frame)
            if not stack:
                continue
            key = (paths.get(tid, ()), stack, idle)
            counts[key] = counts.get(key, 0) + 1

    # -- export -----------------------------------------------------------

    def _to_doc(self) -> dict:
        stacks = [
            [list(spans), list(frames), count, int(idle)]
            for (spans, frames, idle), count in sorted(
                self._counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return {
            "schema": PROFILE_SCHEMA,
            "kind": "cpu-profile",
            "instance": self.instance,
            "role": self.role,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "mode": self.mode,
            "clock": self.clock,
            "interval_ms": self.interval_ms,
            "duration_s": round(self.duration_s, 6),
            "started_s": round(self._started_unix, 3),
            "written_s": round(time.time(), 3),
            "ttl_s": DEFAULT_PROFILE_TTL_S,
            "ticks": self._ticks,
            "samples": sum(self._counts.values()),
            "stacks": stacks,
        }


# -- profile documents --------------------------------------------------------


def _iter_stacks(doc: dict):
    for entry in doc.get("stacks", ()):
        spans, frames, count, idle = entry
        yield tuple(spans), tuple(frames), int(count), bool(idle)


def merge_profile_docs(docs: list[dict], request: dict | None = None) -> dict:
    """Sum per-process profile documents into one fleet profile.

    Counts are summed per (span path, frame stack, idle) key, so a merge
    of N spills holds exactly the sum of their samples.  Per-process
    provenance is kept under ``processes``.
    """
    counts: dict[tuple[tuple[str, ...], tuple[str, ...], bool], int] = {}
    processes = []
    ticks = 0
    duration = 0.0
    for doc in docs:
        if not isinstance(doc, dict) or doc.get("schema") != PROFILE_SCHEMA:
            continue
        for spans, frames, count, idle in _iter_stacks(doc):
            key = (spans, frames, idle)
            counts[key] = counts.get(key, 0) + count
        ticks += int(doc.get("ticks", 0))
        duration = max(duration, float(doc.get("duration_s", 0.0)))
        processes.append(
            {
                "instance": doc.get("instance"),
                "role": doc.get("role"),
                "pid": doc.get("pid"),
                "clock": doc.get("clock"),
                "samples": int(doc.get("samples", 0)),
            }
        )
    stacks = [
        [list(spans), list(frames), count, int(idle)]
        for (spans, frames, idle), count in sorted(
            counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]
    merged = {
        "schema": PROFILE_SCHEMA,
        "kind": "cpu-profile",
        "merged": True,
        "mode": (request or {}).get(
            "mode", docs[0].get("mode", "wall") if docs else "wall"
        ),
        "interval_ms": float(
            (request or {}).get(
                "interval_ms",
                docs[0].get("interval_ms", DEFAULT_INTERVAL_MS)
                if docs
                else DEFAULT_INTERVAL_MS,
            )
        ),
        "duration_s": round(duration, 6),
        "written_s": round(time.time(), 3),
        "ttl_s": DEFAULT_PROFILE_TTL_S,
        "ticks": ticks,
        "samples": sum(counts.values()),
        "processes": processes,
        "stacks": stacks,
    }
    if request is not None:
        merged["request_id"] = request.get("id")
    return merged


def _stack_root(spans: tuple[str, ...], idle: bool) -> tuple[str, ...]:
    if spans:
        return spans
    return (UNATTRIBUTED_IDLE,) if idle else (UNATTRIBUTED_BUSY,)


def collapsed_stacks(doc: dict, include_idle: bool = True) -> str:
    """Brendan-Gregg collapsed-stack text: ``root;..;leaf count`` lines.

    Span-path segments lead each line, so flamegraph tooling groups
    frames under the span that owned them.
    """
    lines = []
    for spans, frames, count, idle in _iter_stacks(doc):
        if idle and not spans and not include_idle:
            continue
        path = _stack_root(spans, idle) + frames
        lines.append((count, ";".join(path)))
    lines.sort(key=lambda item: (-item[0], item[1]))
    return "\n".join(f"{path} {count}" for count, path in lines)


def span_totals(doc: dict, top: int | None = None) -> list[dict]:
    """Samples per span path (descending) — the profile's hot list."""
    totals: dict[tuple[str, ...], int] = {}
    for spans, _frames, count, idle in _iter_stacks(doc):
        root = _stack_root(spans, idle)
        totals[root] = totals.get(root, 0) + count
    samples = max(1, int(doc.get("samples", 0)))
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    if top is not None:
        ranked = ranked[:top]
    return [
        {
            "path": ";".join(path),
            "samples": count,
            "fraction": round(count / samples, 4),
        }
        for path, count in ranked
    ]


def attribution(doc: dict) -> dict:
    """How much of the profile lands on a known span path.

    ``fraction`` is computed over the *busy* samples (idle parked-thread
    samples with no span are excluded): a wall profile of a quiescent
    fleet is dominated by accept/poll/queue waits, and attribution is a
    statement about where the work went.
    """
    attributed = idle = untracked = 0
    for spans, _frames, count, is_idle in _iter_stacks(doc):
        if spans:
            attributed += count
        elif is_idle:
            idle += count
        else:
            untracked += count
    busy = attributed + untracked
    return {
        "samples": attributed + idle + untracked,
        "attributed": attributed,
        "idle": idle,
        "untracked": untracked,
        "fraction": round(attributed / busy, 4) if busy else 0.0,
    }


def validate_profile(
    doc: dict,
    min_samples: int = 1,
    min_span_fraction: float | None = None,
) -> list[str]:
    """Structural + statistical checks; returns problems (empty = ok)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["profile is not a JSON object"]
    if doc.get("schema") != PROFILE_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {PROFILE_SCHEMA}")
        return problems
    if doc.get("kind") != "cpu-profile":
        problems.append(f"kind is {doc.get('kind')!r}, want 'cpu-profile'")
    if float(doc.get("interval_ms", 0.0)) <= 0:
        problems.append("interval_ms must be positive")
    if float(doc.get("duration_s", 0.0)) <= 0:
        problems.append("duration_s must be positive")
    total = 0
    try:
        for _spans, frames, count, _idle in _iter_stacks(doc):
            if count < 1:
                problems.append(f"non-positive stack count {count}")
            if not frames:
                problems.append("empty frame stack entry")
            total += count
    except (TypeError, ValueError, KeyError):
        problems.append("malformed stacks entry")
        return problems
    if total != int(doc.get("samples", -1)):
        problems.append(
            f"samples says {doc.get('samples')}, stacks sum to {total}"
        )
    if total < min_samples:
        problems.append(f"only {total} samples, want >= {min_samples}")
    if min_span_fraction is not None:
        stats = attribution(doc)
        if stats["fraction"] < min_span_fraction:
            problems.append(
                f"span attribution {stats['fraction']:.3f} below "
                f"{min_span_fraction:.3f} "
                f"(attributed {stats['attributed']}, "
                f"untracked {stats['untracked']}, idle {stats['idle']})"
            )
    if doc.get("merged") and not doc.get("processes"):
        problems.append("merged profile lists no source processes")
    return problems


# -- fleet coordination -------------------------------------------------------


def profiles_dir(root: str | Path) -> Path:
    """The profile-spill directory under a store root."""
    return Path(root) / "telemetry" / "profiles"


def profile_request_path(root: str | Path) -> Path:
    return profiles_dir(root) / "request.json"


def _load_json(path: Path) -> dict | None:
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    return record if isinstance(record, dict) else None


def current_request(root: str | Path, now: float | None = None) -> dict | None:
    """The in-flight profile request, or ``None`` when the window closed."""
    record = _load_json(profile_request_path(root))
    if record is None or record.get("kind") != "profile-request":
        return None
    now = time.time() if now is None else now
    if float(record.get("deadline_s", 0.0)) <= now:
        return None
    return record


def request_profile(
    root: str | Path,
    seconds: float = DEFAULT_WINDOW_S,
    interval_ms: float = DEFAULT_INTERVAL_MS,
    mode: str = "wall",
) -> dict:
    """Publish (or join) a fleet-wide sampling window through the store.

    Taken under the telemetry lock: if another worker already opened a
    window that is still mostly ahead of us, its request is returned
    unchanged so concurrent ``/profile`` calls share one window instead
    of fighting over the per-process profiler.
    """
    from repro.obs.fleet import _atomic_write_json, _telemetry_lock

    seconds = min(MAX_WINDOW_S, max(0.2, float(seconds)))
    interval_ms = min(100.0, max(1.0, float(interval_ms)))
    path = profile_request_path(root)
    now = time.time()
    with _telemetry_lock(root):
        existing = current_request(root, now=now)
        if existing is not None and (
            float(existing["deadline_s"]) - now >= 0.5 * seconds
        ):
            return existing
        request = {
            "schema": PROFILE_SCHEMA,
            "kind": "profile-request",
            "id": uuid.uuid4().hex[:12],
            "mode": mode if mode in ("wall", "cpu") else "wall",
            "seconds": seconds,
            "interval_ms": interval_ms,
            "issued_s": round(now, 3),
            "deadline_s": round(now + seconds, 3),
        }
        _atomic_write_json(path, request)
    return request


def spill_profile(root: str | Path, doc: dict) -> Path | None:
    """Atomically write one process's profile document under the store."""
    from repro.obs.fleet import _atomic_write_json, _safe_instance

    stem = f"{_safe_instance(str(doc.get('instance', 'proc')))}-{doc.get('pid', 0)}.json"
    path = profiles_dir(root) / stem
    try:
        _atomic_write_json(path, doc)
    except OSError:
        return None
    REGISTRY.counter(
        "repro_profile_windows_total",
        "Profile sampling windows this process has served",
    ).inc()
    return path


def load_profile_doc(path: Path) -> dict | None:
    """Parse one profile spill; torn/foreign/request files -> ``None``."""
    record = _load_json(path)
    if (
        record is None
        or record.get("schema") != PROFILE_SCHEMA
        or record.get("kind") != "cpu-profile"
    ):
        return None
    return record


def _profile_stale(path: Path, doc: dict | None, now: float) -> bool:
    if doc is None:
        try:
            return now - path.stat().st_mtime > DEFAULT_PROFILE_TTL_S
        except OSError:
            return False
    ttl = float(doc.get("ttl_s", DEFAULT_PROFILE_TTL_S))
    return now - float(doc.get("written_s", 0.0)) > ttl


def read_profile_docs(
    root: str | Path, request_id: str | None = None, gc: bool = True
) -> list[dict]:
    """Live profile spills under ``root`` (stale ones excluded and GC'd).

    A spill stays readable for its TTL even after its writer exited — a
    capture is a point-in-time artifact, so (unlike metric shards) a
    dead pid does not retire it early.
    """
    directory = profiles_dir(root)
    try:
        paths = sorted(directory.glob("*.json"))
    except OSError:
        return []
    now = time.time()
    live: list[dict] = []
    dead: list[Path] = []
    for path in paths:
        if path.name == "request.json":
            continue
        doc = load_profile_doc(path)
        if _profile_stale(path, doc, now):
            dead.append(path)
            continue
        if doc is None:
            continue
        if request_id is not None and doc.get("request_id") != request_id:
            continue
        live.append(doc)
    if gc and dead:
        gc_stale_profiles(root, candidates=dead)
    live.sort(key=lambda d: (str(d.get("role")), str(d.get("instance"))))
    return live


def gc_stale_profiles(
    root: str | Path, candidates: list[Path] | None = None
) -> list[Path]:
    """Remove expired spills under the telemetry lock, exactly once.

    Same protocol as the metric-shard GC: every candidate is re-checked
    *under the lock* before the unlink, so two concurrent readers cannot
    both claim a removal.
    """
    from repro.obs.fleet import _telemetry_lock

    if candidates is None:
        try:
            candidates = sorted(profiles_dir(root).glob("*.json"))
        except OSError:
            return []
        candidates = [p for p in candidates if p.name != "request.json"]
    if not candidates:
        return []
    removed: list[Path] = []
    now = time.time()
    with _telemetry_lock(root):
        for path in candidates:
            if not _profile_stale(path, load_profile_doc(path), now):
                continue
            try:
                os.unlink(path)
            except OSError:
                continue  # already gone: the sibling won the race
            removed.append(path)
    if removed:
        _log.info(
            "collected stale profile spills", extra={"count": len(removed)}
        )
    return removed


def collect_fleet_profile(
    root: str | Path,
    request: dict,
    grace_s: float = 2.0,
    poll_s: float = 0.1,
    expected: int | None = None,
) -> dict:
    """Wait out a request's window and merge every matching spill.

    ``expected`` defaults to the number of live metric shards — the
    processes whose agents should answer.  Collection returns as soon as
    that many spills carry the request id, or once ``grace_s`` past the
    window deadline has elapsed with whatever arrived.
    """
    if expected is None:
        from repro.obs.fleet import read_live_shards

        expected = max(1, len(read_live_shards(root, gc=False)))
    deadline = float(request.get("deadline_s", time.time()))
    request_id = request.get("id")
    while True:
        remaining = deadline + 0.2 - time.time()
        if remaining <= 0:
            break
        time.sleep(min(poll_s, remaining))
    stop_at = deadline + 0.2 + max(0.0, grace_s)
    while True:
        docs = read_profile_docs(root, request_id=request_id, gc=False)
        if len(docs) >= expected or time.time() >= stop_at:
            break
        time.sleep(poll_s)
    return merge_profile_docs(docs, request=request)


# -- the per-process agent ----------------------------------------------------


class ProfileAgent:
    """Answers fleet profile requests from a daemon thread.

    Watches the request file with a cheap ``stat`` every ``poll_s``
    (re-parsing only when it changes), samples this process for each new
    window, and spills the resulting document.  Start one per fleet
    process, right next to its :class:`~repro.obs.fleet.ShardWriter`.
    """

    def __init__(
        self,
        root: str | Path,
        instance: str,
        role: str,
        poll_s: float = 0.25,
    ) -> None:
        self.root = Path(root)
        self.instance = instance
        self.role = role
        self.poll_s = max(0.05, float(poll_s))
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._request_sig: tuple | None = None
        self._served_ids: set[str] = set()

    def start(self) -> "ProfileAgent":
        self._thread = threading.Thread(
            target=self._run,
            name=f"profile-agent-{self.instance}",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=2.0)

    # -- internals --------------------------------------------------------

    def _poll_request(self) -> dict | None:
        path = profile_request_path(self.root)
        try:
            stat = path.stat()
        except OSError:
            return None
        signature = (stat.st_mtime_ns, stat.st_size)
        if signature == self._request_sig:
            return None
        self._request_sig = signature
        return current_request(self.root)

    def _run(self) -> None:
        while not self._stop.wait(self.poll_s):
            request = self._poll_request()
            if request is None:
                continue
            request_id = str(request.get("id"))
            if request_id in self._served_ids:
                continue
            self._served_ids.add(request_id)
            if len(self._served_ids) > 256:
                self._served_ids.clear()
                self._served_ids.add(request_id)
            self._serve(request)

    def _serve(self, request: dict) -> None:
        remaining = float(request.get("deadline_s", 0.0)) - time.time()
        if remaining <= 0.05:
            return
        try:
            profiler = Profiler(
                mode=str(request.get("mode", "wall")),
                interval_ms=float(
                    request.get("interval_ms", DEFAULT_INTERVAL_MS)
                ),
                instance=self.instance,
                role=self.role,
            ).start()
        except (ProfilerError, ValueError):
            return  # a manual profiler owns this process right now
        try:
            self._stop.wait(remaining)
        finally:
            doc = profiler.stop()
        doc["request_id"] = request.get("id")
        spill_profile(self.root, doc)
        REGISTRY.counter(
            "repro_profile_samples_total",
            "Stack samples this process contributed to fleet profiles",
        ).inc(int(doc.get("samples", 0)))
