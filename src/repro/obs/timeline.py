"""Time-resolved telemetry: the interval sampler behind ``TimelineSeries``.

The paper's collection protocol is inherently time-resolved: metrics are
sampled in intervals, the ramp-up period is discarded, and only the
steady-state window feeds the 45-metric matrix (Section IV-C).  This
module records how a workload's behaviour *evolves* during a run — the
per-point-in-time counterpart of the flight recorder's event log.

Three sample sources land in one monotone series (``seq`` strictly
increases; ``t_ms`` is milliseconds since the sampler started, on the
monotonic clock):

- ``run`` samples — interval snapshots of runtime state while the
  engines execute: tasks in flight, records/bytes committed, shuffle
  bytes, retry/speculation/fault tallies, with a per-worker breakdown.
- ``sim`` samples — one window per simulated phase per measured slave,
  carrying the window's raw PMU event estimates and the 45 Table II
  metrics derived from them.  The windows exactly partition the
  measurement: summing their events in order reconstructs the slave's
  raw totals bit-for-bit (asserted at collection time).
- ``slave`` samples — each measured slave's final 45-metric vector as
  it lands, so the published cross-slave mean is recomputable from the
  series alone (the :meth:`TimelineSeries.reconcile` invariant).

Ramp-up windowing mirrors the paper's protocol: a configurable
``ramp_up_fraction`` of the run-sample timeline is the ramp-up window;
:meth:`TimelineSeries.steady_state_run_samples` is what remains, and
steady-state rates are computed only there.  (The simulator applies its
own per-phase warm-up discard independently, exactly as before.)

Like the tracer and the flight recorder, the sampler is ambient and
purely observational: it consumes no randomness and changes no control
flow, so the 45-metric matrix is bit-identical with sampling on or off.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import AnalysisError, ConfigurationError

__all__ = [
    "TimelineConfig",
    "TimelineSampler",
    "TimelineSeries",
    "current_timeline",
    "timeline_sampling",
    "observe_phase_record",
    "observe_task",
    "observe_fault",
]

#: Phase kinds whose traffic counts as shuffle bytes on the timeline.
_SHUFFLE_IN_KINDS = ("shuffle", "shuffle-read")
_SHUFFLE_OUT_KINDS = ("shuffle-write",)

#: Terminal sources a series may contain.
SOURCES = ("run", "sim", "slave")


@dataclass(frozen=True)
class TimelineConfig:
    """Knobs of the interval sampler.

    Attributes:
        interval_ms: Minimum milliseconds between consecutive ``run``
            samples; ``0`` snapshots on every state change (what the
            deterministic tests use).
        ramp_up_fraction: Leading fraction of the run-sample timeline
            treated as ramp-up and excluded from steady-state windows,
            mirroring the paper's discarded warm-up sample.
        max_run_samples: Bound on retained ``run`` samples.  When
            exceeded, every other retained run sample is dropped and the
            effective interval doubles — the series stays bounded while
            covering the whole run.
    """

    interval_ms: float = 10.0
    ramp_up_fraction: float = 0.3
    max_run_samples: int = 512

    def __post_init__(self) -> None:
        if self.interval_ms < 0:
            raise ConfigurationError("interval_ms must be >= 0")
        if not 0.0 <= self.ramp_up_fraction < 1.0:
            raise ConfigurationError("ramp_up_fraction must be in [0, 1)")
        if self.max_run_samples < 2:
            raise ConfigurationError("max_run_samples must be at least 2")

    def token(self) -> str:
        """A short stable token for store keys (artifact completeness:
        timeline-on collections persist their own entries)."""
        return f"tl{self.interval_ms:g}-{self.ramp_up_fraction:g}"


@dataclass(frozen=True)
class TimelineSeries:
    """The collected, immutable time series of one characterization.

    Attributes:
        samples: All samples, oldest first, each a JSON-safe dict with a
            strictly increasing ``seq``, a ``t_ms`` offset and a
            ``source`` of ``run``, ``sim`` or ``slave``.
        ramp_up_fraction: The windowing fraction the series was
            collected under.
        interval_ms: The *effective* run-sample interval (doubles when
            the ring decimates).
    """

    samples: tuple[dict, ...]
    ramp_up_fraction: float
    interval_ms: float

    # -- windowing ------------------------------------------------------------

    def by_source(self, source: str) -> tuple[dict, ...]:
        return tuple(s for s in self.samples if s["source"] == source)

    @property
    def run_samples(self) -> tuple[dict, ...]:
        return self.by_source("run")

    @property
    def sim_samples(self) -> tuple[dict, ...]:
        return self.by_source("sim")

    @property
    def slave_samples(self) -> tuple[dict, ...]:
        return self.by_source("slave")

    @property
    def duration_ms(self) -> float:
        """Span of the whole series on the monotonic clock."""
        if not self.samples:
            return 0.0
        return float(self.samples[-1]["t_ms"])

    @property
    def ramp_up_ms(self) -> float:
        """Where the ramp-up window ends on the run-sample timeline."""
        run = self.run_samples
        if not run:
            return 0.0
        return float(run[-1]["t_ms"]) * self.ramp_up_fraction

    def steady_state_run_samples(self) -> tuple[dict, ...]:
        """Run samples after the ramp-up window (the measured window)."""
        cutoff = self.ramp_up_ms
        return tuple(s for s in self.run_samples if s["t_ms"] >= cutoff)

    def steady_state_rates(self) -> dict[str, float]:
        """Mean rates over the steady-state window (per second).

        Computed from the first and last steady-state run samples, the
        way the paper averages its post-ramp-up interval samples.
        Returns zeros when the window has fewer than two samples.
        """
        window = self.steady_state_run_samples()
        if len(window) < 2:
            return {"records_per_s": 0.0, "bytes_per_s": 0.0,
                    "shuffle_bytes_per_s": 0.0, "window_s": 0.0}
        first, last = window[0], window[-1]
        span_s = (last["t_ms"] - first["t_ms"]) / 1e3
        if span_s <= 0:
            return {"records_per_s": 0.0, "bytes_per_s": 0.0,
                    "shuffle_bytes_per_s": 0.0, "window_s": 0.0}

        def rate(key: str) -> float:
            return (last[key] - first[key]) / span_s

        return {
            "records_per_s": rate("records_committed"),
            "bytes_per_s": rate("bytes_committed"),
            "shuffle_bytes_per_s": rate("shuffle_bytes"),
            "window_s": span_s,
        }

    # -- reconciliation -------------------------------------------------------

    def slave_metric_vectors(self) -> tuple[dict[str, float], ...]:
        """Each measured slave's final metric vector, in collection order."""
        return tuple(dict(s["metrics"]) for s in self.slave_samples)

    def window_totals(self, slave: int) -> dict[str, float]:
        """Reconstruct one slave's raw event totals from its sim windows.

        Sums the per-window events in sequence order with the exact
        accumulation the simulator uses, so the result is bit-identical
        to the totals :meth:`Processor.run_workload` returned.
        """
        totals: dict[str, float] = {}
        for sample in self.sim_samples:
            if sample["slave"] != slave:
                continue
            for name, value in sample["events"].items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def reconcile(self, metrics: dict[str, float]) -> None:
        """Assert the steady-state series reproduces the published metrics.

        The published characterization is the mean of the per-slave
        45-metric vectors; the series records exactly those vectors as
        ``slave`` samples, so recomputing the mean from the series must
        match ``metrics`` bit-for-bit.  This is the assertion-backed
        invariant that sampling is purely observational: a timeline that
        fails to reconcile would mean the sampler perturbed (or
        mis-recorded) the measurement.

        Raises:
            AnalysisError: If the series is empty of slave samples or
                any recomputed metric differs from ``metrics``.
        """
        import numpy as np

        vectors = self.slave_metric_vectors()
        if not vectors:
            raise AnalysisError("timeline has no slave samples to reconcile")
        recomputed = {
            name: float(np.mean([vector[name] for vector in vectors]))
            for name in vectors[0]
        }
        if recomputed != metrics:
            diverging = sorted(
                name
                for name in set(recomputed) | set(metrics)
                if recomputed.get(name) != metrics.get(name)
            )
            raise AnalysisError(
                "timeline steady-state window does not reconcile with the "
                f"published metrics (diverging: {diverging[:5]})"
            )

    # -- (de)serialization ----------------------------------------------------

    def to_payload(self) -> dict:
        """A JSON-safe dict capturing the series in full."""
        return {
            "samples": [dict(sample) for sample in self.samples],
            "ramp_up_fraction": self.ramp_up_fraction,
            "interval_ms": self.interval_ms,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> TimelineSeries:
        return cls(
            samples=tuple(dict(sample) for sample in payload["samples"]),
            ramp_up_fraction=float(payload["ramp_up_fraction"]),
            interval_ms=float(payload["interval_ms"]),
        )

    def __len__(self) -> int:
        return len(self.samples)


class _WorkerCounters:
    """Mutable per-worker tallies (one dict row in a run sample)."""

    __slots__ = ("records", "bytes", "shuffle_bytes", "tasks")

    def __init__(self) -> None:
        self.records = 0
        self.bytes = 0
        self.shuffle_bytes = 0
        self.tasks = 0

    def snapshot(self) -> dict:
        return {
            "records": self.records,
            "bytes": self.bytes,
            "shuffle_bytes": self.shuffle_bytes,
            "tasks": self.tasks,
        }


class TimelineSampler:
    """Collects one characterization's time series (thread-safe).

    The engine layers report state changes through the ambient helpers
    (:func:`observe_phase_record`, :func:`observe_task`,
    :func:`observe_fault`); the sampler turns them into interval
    ``run`` samples.  The measurement layer reports per-phase simulation
    windows and per-slave metric vectors directly.
    """

    def __init__(self, config: TimelineConfig | None = None) -> None:
        self.config = config or TimelineConfig()
        self._lock = threading.Lock()
        self._start_ns = time.perf_counter_ns()
        self._seq = 0
        self._samples: list[dict] = []
        self._run_count = 0
        self._interval_ms = self.config.interval_ms
        self._last_run_ms = -float("inf")
        # Run-side counters.
        self._tasks_started = 0
        self._tasks_done = 0
        self._tasks_in_flight = 0
        self._records_committed = 0
        self._bytes_committed = 0
        self._shuffle_bytes = 0
        self._retries = 0
        self._speculations = 0
        self._tagged_records = 0
        self._faults: dict[str, int] = {}
        self._workers: dict[int, _WorkerCounters] = {}
        # Simulation-side state.
        self._slave: int | None = None

    # -- plumbing -------------------------------------------------------------

    def _now_ms(self) -> float:
        return (time.perf_counter_ns() - self._start_ns) / 1e6

    def _append(self, sample: dict) -> None:
        """Append with the next seq (caller holds the lock)."""
        self._seq += 1
        sample["seq"] = self._seq
        self._samples.append(sample)

    def _run_snapshot(self, t_ms: float) -> dict:
        return {
            "t_ms": round(t_ms, 3),
            "source": "run",
            "tasks_started": self._tasks_started,
            "tasks_done": self._tasks_done,
            "tasks_in_flight": self._tasks_in_flight,
            "records_committed": self._records_committed,
            "bytes_committed": self._bytes_committed,
            "shuffle_bytes": self._shuffle_bytes,
            "retries": self._retries,
            "speculations": self._speculations,
            "tagged_records": self._tagged_records,
            "faults": dict(self._faults),
            "workers": {
                str(worker): counters.snapshot()
                for worker, counters in sorted(self._workers.items())
            },
        }

    def _maybe_sample(self) -> None:
        """Emit a run sample if the interval elapsed (caller holds lock)."""
        t_ms = self._now_ms()
        if t_ms - self._last_run_ms < self._interval_ms:
            return
        self._last_run_ms = t_ms
        self._append(self._run_snapshot(t_ms))
        self._run_count += 1
        if self._run_count > self.config.max_run_samples:
            self._decimate()

    def _decimate(self) -> None:
        """Drop every other run sample and double the interval.

        Keeps the newest run sample and the whole-series coverage while
        halving density — the standard bounded-timeline compaction.
        """
        kept: list[dict] = []
        run_seen = 0
        for sample in self._samples:
            if sample["source"] != "run":
                kept.append(sample)
                continue
            run_seen += 1
            if run_seen % 2 == 1:
                kept.append(sample)
        self._samples = kept
        self._run_count = sum(1 for s in kept if s["source"] == "run")
        self._interval_ms = max(self._interval_ms * 2, 0.001)

    # -- run-side observations ------------------------------------------------

    def task_started(self) -> None:
        with self._lock:
            self._tasks_started += 1
            self._tasks_in_flight += 1
            self._maybe_sample()

    def task_finished(self) -> None:
        with self._lock:
            self._tasks_done += 1
            self._tasks_in_flight = max(0, self._tasks_in_flight - 1)
            self._maybe_sample()

    def task_retried(self) -> None:
        with self._lock:
            self._retries += 1
            self._maybe_sample()

    def task_speculated(self) -> None:
        with self._lock:
            self._speculations += 1
            self._maybe_sample()

    def fault_injected(self, kind: str) -> None:
        with self._lock:
            self._faults[kind] = self._faults.get(kind, 0) + 1
            self._maybe_sample()

    def phase_record(
        self,
        kind: str,
        worker: int,
        records_out: int,
        bytes_in: int,
        bytes_out: int,
        tag: str,
    ) -> None:
        """Account one committed (or tagged) phase record."""
        with self._lock:
            if tag:
                self._tagged_records += 1
                self._maybe_sample()
                return
            counters = self._workers.get(worker)
            if counters is None:
                counters = self._workers[worker] = _WorkerCounters()
            counters.tasks += 1
            counters.records += records_out
            counters.bytes += bytes_out
            self._records_committed += records_out
            self._bytes_committed += bytes_out
            if kind in _SHUFFLE_IN_KINDS:
                self._shuffle_bytes += bytes_in
                counters.shuffle_bytes += bytes_in
            elif kind in _SHUFFLE_OUT_KINDS:
                self._shuffle_bytes += bytes_out
                counters.shuffle_bytes += bytes_out
            self._maybe_sample()

    # -- simulation-side observations -----------------------------------------

    @contextlib.contextmanager
    def slave_scope(self, slave: int) -> Iterator[None]:
        """Attribute enclosed simulation windows to ``slave``."""
        with self._lock:
            previous, self._slave = self._slave, slave
        try:
            yield
        finally:
            with self._lock:
                self._slave = previous

    def sim_window(
        self,
        window: int,
        phase: str,
        instructions: float,
        events: dict[str, float],
    ) -> None:
        """Record one simulated phase window's raw events + derived metrics.

        ``events`` is copied; metric derivation is a pure function of the
        copy, so recording cannot perturb the measurement.
        """
        from repro.metrics.derivation import derive_metrics

        window_events = {name: float(value) for name, value in events.items()}
        metrics = derive_metrics(window_events)
        with self._lock:
            self._append(
                {
                    "t_ms": round(self._now_ms(), 3),
                    "source": "sim",
                    "slave": self._slave if self._slave is not None else -1,
                    "window": window,
                    "phase": phase,
                    "instructions": float(instructions),
                    "events": window_events,
                    "metrics": metrics,
                }
            )

    def slave_metrics(self, slave: int, metrics: dict[str, float]) -> None:
        """Record one measured slave's final 45-metric vector."""
        with self._lock:
            self._append(
                {
                    "t_ms": round(self._now_ms(), 3),
                    "source": "slave",
                    "slave": slave,
                    "metrics": {k: float(v) for k, v in metrics.items()},
                }
            )

    def verify_slave_windows(
        self, slave: int, true_totals: dict[str, float]
    ) -> None:
        """Assert this slave's windows exactly partition its measurement.

        Summing the slave's per-window events in order must reproduce
        the raw totals the simulator returned, bit-for-bit.  Called at
        collection time so a mis-windowed timeline fails the run instead
        of silently persisting.

        Raises:
            AnalysisError: On any reconstructed-total mismatch.
        """
        totals = self.series().window_totals(slave)
        if totals != dict(true_totals):
            diverging = sorted(
                name
                for name in set(totals) | set(true_totals)
                if totals.get(name) != true_totals.get(name)
            )
            raise AnalysisError(
                f"slave {slave}: timeline windows do not reconstruct the "
                f"measured totals (diverging events: {diverging[:5]})"
            )

    # -- extraction -----------------------------------------------------------

    def series(self) -> TimelineSeries:
        """A final (forced) run sample plus everything recorded so far."""
        with self._lock:
            # Close the run-sample series with the end state so rates and
            # ramp-up windows see the full span even under long intervals.
            if self._run_count:
                last = self._samples[-1]
                final = self._run_snapshot(self._now_ms())
                if not (
                    last["source"] == "run"
                    and all(
                        last[k] == final[k]
                        for k in final
                        if k not in ("t_ms", "seq")
                    )
                ):
                    self._append(final)
                    self._run_count += 1
            return TimelineSeries(
                samples=tuple(dict(sample) for sample in self._samples),
                ramp_up_fraction=self.config.ramp_up_fraction,
                interval_ms=self._interval_ms,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


#: The ambient sampler the engine/simulation layers report into.
_ACTIVE: contextvars.ContextVar[TimelineSampler | None] = contextvars.ContextVar(
    "repro_timeline_sampler", default=None
)


def current_timeline() -> TimelineSampler | None:
    """The active sampler, or ``None`` when timeline sampling is off."""
    return _ACTIVE.get()


@contextlib.contextmanager
def timeline_sampling(
    sampler: TimelineSampler | None,
) -> Iterator[TimelineSampler | None]:
    """Activate ``sampler`` for the enclosed execution (``None`` = no-op)."""
    if sampler is None:
        yield None
        return
    token = _ACTIVE.set(sampler)
    try:
        yield sampler
    finally:
        _ACTIVE.reset(token)


def observe_phase_record(
    kind: str,
    worker: int,
    records_out: int,
    bytes_in: int,
    bytes_out: int,
    tag: str = "",
) -> None:
    """Report a phase record to the ambient sampler (cheap no-op without one)."""
    sampler = _ACTIVE.get()
    if sampler is not None:
        sampler.phase_record(kind, worker, records_out, bytes_in, bytes_out, tag)


def observe_task(event: str) -> None:
    """Report a task lifecycle event: ``start``/``done``/``retry``/``speculate``."""
    sampler = _ACTIVE.get()
    if sampler is None:
        return
    if event == "start":
        sampler.task_started()
    elif event == "done":
        sampler.task_finished()
    elif event == "retry":
        sampler.task_retried()
    elif event == "speculate":
        sampler.task_speculated()


def observe_fault(kind: str) -> None:
    """Report an injected fault to the ambient sampler."""
    sampler = _ACTIVE.get()
    if sampler is not None:
        sampler.fault_injected(kind)
