"""The observability plane: tracing, metrics, logging, flight recording.

``repro.obs`` is the dependency-free subsystem every other layer reports
into.  It never *drives* execution — nothing here consumes randomness,
schedules work, or mutates engine state — so enabling any of it cannot
perturb the 45-metric matrix: a traced run is bit-identical to an
untraced one.

Four pillars, one module each:

- :mod:`repro.obs.trace` — structured spans on a monotonic clock,
  exported as Chrome-trace JSON (``chrome://tracing`` / Perfetto).
  Disabled by default: the ambient tracer is ``None`` and the
  :func:`~repro.obs.trace.span` helper returns a shared null context,
  so instrumented code pays one ``ContextVar.get`` when tracing is off.
- :mod:`repro.obs.metrics` — counters, gauges and histograms in a
  process-wide registry, rendered in Prometheus text exposition format
  by ``GET /metrics`` and as JSON by ``GET /stats``.
- :mod:`repro.obs.log` — stdlib ``logging`` configured with a
  ``key=value`` (or JSON) formatter; the CLI's ``--log-level`` /
  ``--log-json`` flags land here.
- :mod:`repro.obs.flight` — a bounded ring buffer of recent
  span/fault/job events, attached to characterizations (store schema
  v4) and job snapshots so "why was this run slow" is answerable from
  the persisted artifact alone.

:mod:`repro.obs.stats` carries the timing/percentile helpers the
benchmark harnesses share.  :mod:`repro.obs.fleet` extends the plane
across *processes*: per-pid metric shards and trace spills in the
shared store directory, merged at scrape time into one fleet-wide
``/metrics`` exposition, ``/fleet`` status view and multi-lane Chrome
trace.  :mod:`repro.obs.prof` is the continuous-profiling plane built
on both: a statistical stack sampler whose samples are attributed to
the live span path, spilled per process and merged into one fleet
profile (``GET /profile``, ``repro profile``).  :mod:`repro.obs.ledger`
keeps the perf-regression ledger the bench tools append to.
"""

from repro.obs.fleet import ShardWriter, fleet_status, merge_traces, read_live_shards
from repro.obs.flight import FlightRecorder, current_flight, flight_recording, record
from repro.obs.prof import ProfileAgent, Profiler, arm as arm_profiling
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Tracer, current_tracer, span, tracing

__all__ = [
    "ShardWriter",
    "Profiler",
    "ProfileAgent",
    "arm_profiling",
    "fleet_status",
    "merge_traces",
    "read_live_shards",
    "Tracer",
    "current_tracer",
    "span",
    "tracing",
    "REGISTRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "configure_logging",
    "get_logger",
    "FlightRecorder",
    "current_flight",
    "flight_recording",
    "record",
]
