"""The perf-regression ledger: an append-only history of bench gates.

Every ``tools/bench_*.py --check`` run appends one structured JSON line
to ``benchmarks/history.jsonl`` — an environment block (so numbers from
different hosts are never naively compared), the benchmark's headline
numbers, the gate outcome, and optionally a compact
:func:`profile_digest` of a span-attributed CPU profile taken during
the run.  The ledger is what turns "the gate failed" into "the gate
failed *and here is the span/frame that got slower*":
:func:`diff_records` compares a failing record against its most recent
passing baseline and names the top regressed span paths and frames.

``tools/check_perf_history.py`` is the CLI over this module; the bench
tools call :func:`append_record` directly.

The format is JSONL on purpose: appends are one ``write`` of one line
(atomic on POSIX for sane line lengths), partial lines from a crashed
writer are skipped by :func:`load_history`, and the file diffs cleanly
in review.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import sys
import time
from pathlib import Path

__all__ = [
    "LEDGER_SCHEMA",
    "environment_block",
    "profile_digest",
    "append_record",
    "load_history",
    "baseline_for",
    "diff_records",
    "format_diff",
]

#: Version stamp of ledger records; readers skip other schemas.
LEDGER_SCHEMA = 1

#: Span paths / leaf frames kept in a profile digest.
_DIGEST_TOP = 10


def environment_block() -> dict:
    """Where this record was measured — perf numbers are host-relative.

    ``cpus_usable`` (scheduler affinity) rather than just ``cpu_count``:
    cgroup-limited CI runners report all the host's cores while only a
    couple are schedulable, and that difference moves every parallel
    number in the ledger.
    """
    cpu_count = os.cpu_count() or 1
    try:
        cpus_usable = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus_usable = cpu_count
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "host": socket.gethostname(),
        "cpu_count": cpu_count,
        "cpus_usable": cpus_usable,
    }


def _profile_stacks(doc: dict):
    for entry in doc.get("stacks", ()):
        spans, frames, count, idle = entry
        yield tuple(spans), tuple(frames), int(count), bool(idle)


def profile_digest(doc: dict, top: int = _DIGEST_TOP) -> dict:
    """Compress a profile document into a ledger-sized summary.

    Keeps the totals, the busy-sample span attribution, and the top
    span paths and busy leaf frames as *fractions of busy samples* —
    fractions, not counts, so digests from windows of different lengths
    diff meaningfully.
    """
    span_counts: dict[str, int] = {}
    frame_counts: dict[str, int] = {}
    attributed = idle = untracked = 0
    for spans, frames, count, is_idle in _profile_stacks(doc):
        if spans:
            attributed += count
        elif is_idle:
            idle += count
            continue  # parked threads carry no perf signal
        else:
            untracked += count
        root = ";".join(spans) if spans else "(untracked)"
        span_counts[root] = span_counts.get(root, 0) + count
        if frames:
            leaf = frames[-1]
            frame_counts[leaf] = frame_counts.get(leaf, 0) + count
    busy = max(1, attributed + untracked)

    def ranked(counts: dict[str, int]) -> list[dict]:
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            {"name": name, "fraction": round(count / busy, 4)}
            for name, count in ordered[:top]
        ]

    return {
        "samples": int(doc.get("samples", 0)),
        "busy_samples": attributed + untracked,
        "duration_s": float(doc.get("duration_s", 0.0)),
        "interval_ms": float(doc.get("interval_ms", 0.0)),
        "mode": doc.get("mode", "wall"),
        "clock": doc.get("clock"),
        "span_fraction": round(attributed / busy, 4),
        "spans": ranked(span_counts),
        "frames": ranked(frame_counts),
    }


def append_record(
    path: str | Path,
    bench: str,
    headline: dict,
    status: str = "pass",
    failures: list[str] | tuple[str, ...] = (),
    profile: dict | None = None,
    env: dict | None = None,
) -> dict:
    """Append one record to the ledger; returns the record written.

    Args:
        path: The JSONL ledger file (parents are created).
        bench: Benchmark name (``speed``, ``service``, ``faults``,
            ``subset``).
        headline: Flat ``{metric: number}`` gate numbers for this run.
        status: ``"pass"`` or ``"fail"`` — the gate outcome.
        failures: The gate's failure messages when ``status="fail"``.
        profile: An optional :func:`profile_digest`.
        env: Environment override (defaults to :func:`environment_block`).
    """
    record = {
        "schema": LEDGER_SCHEMA,
        "kind": "perf-record",
        "bench": str(bench),
        "recorded_s": round(time.time(), 3),
        "status": "fail" if status == "fail" else "pass",
        "failures": [str(f) for f in failures],
        "env": env if env is not None else environment_block(),
        "headline": {
            key: value
            for key, value in dict(headline).items()
            if isinstance(value, (int, float, bool)) and value is not None
        },
    }
    if profile is not None:
        record["profile"] = profile
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_history(path: str | Path, bench: str | None = None) -> list[dict]:
    """All parseable ledger records, oldest first (torn lines skipped)."""
    records: list[dict] = []
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail from a crashed writer
        if (
            not isinstance(record, dict)
            or record.get("schema") != LEDGER_SCHEMA
            or record.get("kind") != "perf-record"
        ):
            continue
        if bench is not None and record.get("bench") != bench:
            continue
        records.append(record)
    return records


def baseline_for(history: list[dict], record: dict) -> dict | None:
    """The most recent *passing* record of the same bench before this one.

    A failing run must diff against the last known-good state, not
    against the previous failure — chains of failures would otherwise
    diff to "no change" and hide the original regression.
    """
    cutoff = float(record.get("recorded_s", float("inf")))
    candidates = [
        r
        for r in history
        if r.get("bench") == record.get("bench")
        and r.get("status") == "pass"
        and float(r.get("recorded_s", 0.0)) < cutoff
        and r is not record
    ]
    return candidates[-1] if candidates else None


def _higher_is_better(key: str) -> bool:
    """Direction heuristic for headline metrics by naming convention."""
    lowered = key.lower()
    if any(
        token in lowered
        for token in ("speedup", "per_s", "fraction", "coverage", "lift")
    ):
        return True
    return not any(
        token in lowered
        for token in ("seconds", "_ms", "_ns", "pct", "overhead", "ratio")
    )


def diff_records(baseline: dict, latest: dict, top: int = 5) -> dict:
    """Compare two ledger records: headline deltas + regressed spans/frames.

    Headline entries report the relative change and whether it moved in
    the losing direction for that metric.  Profile entries (when both
    records carry digests) report busy-share deltas, sorted by growth —
    the frames and span paths that absorbed more of the run are the
    regression suspects.
    """
    headline = []
    base_numbers = baseline.get("headline", {})
    for key, value in sorted(latest.get("headline", {}).items()):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        base = base_numbers.get(key)
        if isinstance(base, bool) or not isinstance(base, (int, float)):
            continue
        change = ((value - base) / abs(base)) if base else 0.0
        worse = change < 0 if _higher_is_better(key) else change > 0
        headline.append(
            {
                "metric": key,
                "baseline": base,
                "latest": value,
                "change_pct": round(100.0 * change, 2),
                "regressed": worse and abs(change) > 1e-9,
            }
        )

    def share_deltas(field: str) -> list[dict]:
        base_profile = baseline.get("profile") or {}
        latest_profile = latest.get("profile") or {}
        base_shares = {
            entry["name"]: float(entry["fraction"])
            for entry in base_profile.get(field, ())
        }
        latest_shares = {
            entry["name"]: float(entry["fraction"])
            for entry in latest_profile.get(field, ())
        }
        names = set(base_shares) | set(latest_shares)
        deltas = [
            {
                "name": name,
                "baseline_fraction": base_shares.get(name, 0.0),
                "latest_fraction": latest_shares.get(name, 0.0),
                "delta": round(
                    latest_shares.get(name, 0.0) - base_shares.get(name, 0.0),
                    4,
                ),
            }
            for name in names
        ]
        deltas.sort(key=lambda d: (-d["delta"], d["name"]))
        return [d for d in deltas[:top] if d["delta"] > 0]

    return {
        "bench": latest.get("bench"),
        "baseline_recorded_s": baseline.get("recorded_s"),
        "latest_recorded_s": latest.get("recorded_s"),
        "same_host": (
            (baseline.get("env") or {}).get("host")
            == (latest.get("env") or {}).get("host")
        ),
        "headline": headline,
        "regressed_spans": share_deltas("spans"),
        "regressed_frames": share_deltas("frames"),
    }


def format_diff(diff: dict) -> str:
    """Human-readable rendering of one :func:`diff_records` result."""
    lines = [f"perf diff for bench '{diff.get('bench')}' vs last pass:"]
    if not diff.get("same_host"):
        lines.append(
            "  note: baseline came from a different host — absolute "
            "numbers are not comparable, shares still are"
        )
    for entry in diff.get("headline", ()):
        marker = "REGRESSED" if entry["regressed"] else "ok"
        lines.append(
            f"  {entry['metric']}: {entry['baseline']} -> {entry['latest']} "
            f"({entry['change_pct']:+.1f}%) {marker}"
        )
    spans = diff.get("regressed_spans", ())
    if spans:
        lines.append("  span paths that grew (share of busy samples):")
        for entry in spans:
            lines.append(
                f"    {entry['name']}: "
                f"{entry['baseline_fraction']:.1%} -> "
                f"{entry['latest_fraction']:.1%} (+{entry['delta']:.1%})"
            )
    frames = diff.get("regressed_frames", ())
    if frames:
        lines.append("  frames that grew (share of busy samples):")
        for entry in frames:
            lines.append(
                f"    {entry['name']}: "
                f"{entry['baseline_fraction']:.1%} -> "
                f"{entry['latest_fraction']:.1%} (+{entry['delta']:.1%})"
            )
    if len(lines) == 1:
        lines.append("  (no comparable numbers)")
    return "\n".join(lines)
