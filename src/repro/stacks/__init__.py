"""Software-stack engines: Hadoop MapReduce, Spark RDDs, Hive, Shark."""

from repro.stacks.base import (
    ExecutionTrace,
    PhaseKind,
    PhaseRecord,
    StackInfo,
    estimate_bytes,
    stable_hash,
)
from repro.stacks.hadoop import HADOOP_1_0_2, HadoopStack
from repro.stacks.hdfs import Hdfs, HdfsBlock
from repro.stacks.hive import HIVE_0_9_0, HiveStack
from repro.stacks.instrument import CharacterHints, profiles_from_trace
from repro.stacks.mapreduce import MapReduceEngine, MapReduceJob
from repro.stacks.rdd import RDD
from repro.stacks.shark import SHARK_0_8_0, SharkStack
from repro.stacks.spark import SPARK_0_8_1, SparkEngine

__all__ = [
    "ExecutionTrace",
    "PhaseKind",
    "PhaseRecord",
    "StackInfo",
    "estimate_bytes",
    "stable_hash",
    "HADOOP_1_0_2",
    "HadoopStack",
    "Hdfs",
    "HdfsBlock",
    "HIVE_0_9_0",
    "HiveStack",
    "CharacterHints",
    "profiles_from_trace",
    "MapReduceEngine",
    "MapReduceJob",
    "RDD",
    "SHARK_0_8_0",
    "SharkStack",
    "SPARK_0_8_1",
    "SparkEngine",
]
