"""Instrumentation: execution traces → microarchitectural phase profiles.

This is the bridge between *what the engines did* (records, bytes,
shuffles, spills, cache scans — see :class:`~repro.stacks.base.
PhaseRecord`) and *what the cores saw* (instruction mix, footprints,
locality, sharing — see :class:`~repro.arch.trace.PhaseProfile`).

The mapping is mechanistic, with the stack-level structure the paper
identifies (Section V) encoded once, here:

* **Framework instruction footprint** scales with the stack's source size
  (Hadoop 67 MB vs Spark 11 MB): bigger stacks execute more framework
  instructions per record and touch more hot code, driving L1I misses,
  ITLB pressure and fetch stalls.
* **I/O path**: Hadoop materialises intermediates through local disk and
  the page cache (high ring-0 fraction in map/shuffle/output phases);
  Spark's shuffles and caches stay in the JVM heap.
* **Process model**: Spark executor threads share one heap, so stage /
  shuffle / cache phases access a node-wide shared region (snoop traffic,
  sibling-cache hits); Hadoop tasks are separate JVMs whose only sharing
  is the kernel page cache.
* **Data footprint**: phase working sets derive from the actual bytes the
  phase moved per worker; Spark additionally keeps cached RDD partitions
  resident, giving the Spark family its larger data footprints.

Per-workload *algorithmic* character (floating-point intensity of
K-means, comparison-heavy sorting, hash-probe joins) arrives through the
phase records' ``details`` and through :class:`CharacterHints` supplied
by the workload definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.trace import InstructionMix, PhaseProfile
from repro.errors import ConfigurationError
from repro.stacks.base import ExecutionTrace, PhaseKind, PhaseRecord

__all__ = ["CharacterHints", "KindTemplate", "profiles_from_trace"]

_KB = 1 << 10
_MB = 1 << 20


@dataclass(frozen=True)
class CharacterHints:
    """Workload-algorithm character applied on top of the stack templates.

    Attributes:
        fp_x87: Extra x87 floating-point fraction of instructions.
        fp_sse: Extra SSE floating-point fraction of instructions.
        branch_entropy_shift: Added to every phase's branch entropy
            (data-dependent control flow, e.g. text parsing).
        integer_shift: Added to the integer-ALU fraction (hash-heavy
            workloads) and taken from the OTHER slack.
        working_set_factor: Multiplier on data working sets (e.g. an
            in-memory points matrix revisited every iteration).
    """

    fp_x87: float = 0.0
    fp_sse: float = 0.0
    branch_entropy_shift: float = 0.0
    integer_shift: float = 0.0
    working_set_factor: float = 1.0


@dataclass(frozen=True)
class KindTemplate:
    """Base microarchitectural character of one phase kind.

    Instruction cost: ``ins_per_record * records_in + ins_per_byte *
    bytes_in + ins_per_compare * details["compare_ops"]`` plus the
    stack's framework tax per record.
    """

    ins_per_record: float
    ins_per_byte: float
    mix: InstructionMix
    kernel_io: float  # ring-0 share of an I/O-bound version of the phase
    code_factor: float  # multiplier on the stack's hot code footprint
    hot_data: float
    streaming: float
    branch_entropy: float
    shared: float  # shared-region access share *if* the stack shares a heap
    shared_write: float = 0.1
    ins_per_compare: float = 0.0


def _mix(load: float, store: float, branch: float, int_alu: float) -> InstructionMix:
    return InstructionMix(load=load, store=store, branch=branch, int_alu=int_alu)


#: Per-kind base templates.  Mixes follow the usual decomposition of
#: managed-runtime data-processing code: ~25-30 % loads, 8-14 % stores,
#: 15-20 % branches, and an integer-ALU core.
_TEMPLATES: dict[PhaseKind, KindTemplate] = {
    PhaseKind.SETUP: KindTemplate(
        ins_per_record=0.0,
        ins_per_byte=0.0,
        mix=_mix(0.28, 0.12, 0.19, 0.30),
        kernel_io=0.35,
        code_factor=1.5,  # class loading sweeps more code than steady state
        hot_data=0.35,
        streaming=0.3,
        branch_entropy=0.11,
        shared=0.02,
    ),
    PhaseKind.MAP: KindTemplate(
        ins_per_record=160.0,
        ins_per_byte=2.0,
        mix=_mix(0.27, 0.10, 0.18, 0.34),
        kernel_io=0.22,
        code_factor=1.0,
        hot_data=0.38,
        streaming=0.5,
        branch_entropy=0.12,
        shared=0.08,
    ),
    PhaseKind.SPILL: KindTemplate(
        ins_per_record=60.0,
        ins_per_byte=0.8,
        mix=_mix(0.26, 0.16, 0.20, 0.30),
        kernel_io=0.25,
        code_factor=0.8,
        hot_data=0.30,
        streaming=0.35,
        branch_entropy=0.26,  # data-dependent comparisons
        shared=0.03,
        ins_per_compare=6.0,
    ),
    PhaseKind.SHUFFLE: KindTemplate(
        ins_per_record=50.0,
        ins_per_byte=1.6,
        mix=_mix(0.27, 0.15, 0.16, 0.30),
        kernel_io=0.45,  # sockets + local disk
        code_factor=1.1,
        hot_data=0.30,
        streaming=0.62,
        branch_entropy=0.12,
        shared=0.15,
    ),
    PhaseKind.SORT_MERGE: KindTemplate(
        ins_per_record=45.0,
        ins_per_byte=0.6,
        mix=_mix(0.30, 0.12, 0.21, 0.28),
        kernel_io=0.18,
        code_factor=0.8,
        hot_data=0.32,
        streaming=0.45,
        branch_entropy=0.27,
        shared=0.03,
        ins_per_compare=6.0,
    ),
    PhaseKind.REDUCE: KindTemplate(
        ins_per_record=140.0,
        ins_per_byte=1.6,
        mix=_mix(0.28, 0.11, 0.18, 0.33),
        kernel_io=0.20,
        code_factor=1.0,
        hot_data=0.36,
        streaming=0.45,
        branch_entropy=0.1,
        shared=0.06,
    ),
    PhaseKind.OUTPUT: KindTemplate(
        ins_per_record=45.0,
        ins_per_byte=1.4,
        mix=_mix(0.26, 0.17, 0.15, 0.30),
        kernel_io=0.5,
        code_factor=0.9,
        hot_data=0.3,
        streaming=0.7,
        branch_entropy=0.1,
        shared=0.03,
    ),
    PhaseKind.STAGE: KindTemplate(
        ins_per_record=130.0,
        ins_per_byte=1.8,
        mix=_mix(0.28, 0.09, 0.18, 0.35),
        kernel_io=0.06,
        code_factor=1.0,
        hot_data=0.30,
        streaming=0.55,
        branch_entropy=0.14,
        shared=0.28,  # operates on heap-resident shared partitions
        shared_write=0.3,
        ins_per_compare=6.0,
    ),
    PhaseKind.SHUFFLE_WRITE: KindTemplate(
        ins_per_record=45.0,
        ins_per_byte=1.2,
        mix=_mix(0.26, 0.16, 0.16, 0.32),
        kernel_io=0.14,
        code_factor=0.9,
        hot_data=0.3,
        streaming=0.5,
        branch_entropy=0.14,
        shared=0.30,
        shared_write=0.7,
    ),
    PhaseKind.SHUFFLE_READ: KindTemplate(
        ins_per_record=40.0,
        ins_per_byte=1.2,
        mix=_mix(0.30, 0.10, 0.16, 0.32),
        kernel_io=0.12,
        code_factor=0.9,
        hot_data=0.3,
        streaming=0.5,
        branch_entropy=0.14,
        shared=0.35,
    ),
    PhaseKind.CACHE_BUILD: KindTemplate(
        ins_per_record=35.0,
        ins_per_byte=1.0,
        mix=_mix(0.25, 0.20, 0.14, 0.30),
        kernel_io=0.05,
        code_factor=0.7,
        hot_data=0.25,
        streaming=0.7,
        branch_entropy=0.1,
        shared=0.55,
        shared_write=0.8,
    ),
    PhaseKind.CACHE_SCAN: KindTemplate(
        ins_per_record=28.0,
        ins_per_byte=0.9,
        mix=_mix(0.33, 0.06, 0.17, 0.33),
        kernel_io=0.03,
        code_factor=0.7,
        hot_data=0.25,
        streaming=0.6,
        branch_entropy=0.11,
        shared=0.6,
        shared_write=0.05,
    ),
    PhaseKind.DRIVER: KindTemplate(
        ins_per_record=25.0,
        ins_per_byte=0.4,
        mix=_mix(0.28, 0.10, 0.18, 0.32),
        kernel_io=0.1,
        code_factor=0.8,
        hot_data=0.5,
        streaming=0.4,
        branch_entropy=0.12,
        shared=0.02,
    ),
}

#: Canonical emission order of merged phases.
_KIND_ORDER = tuple(_TEMPLATES)

#: Framework instructions per record as a function of stack source size
#: (intercept + slope * MB of source).  Hadoop's 67 MB tree lands near
#: 200 ins/record of pure framework tax; Spark's 11 MB near 65.
_FRAMEWORK_INS_INTERCEPT = 40.0
_FRAMEWORK_INS_PER_SOURCE_MB = 2.4

#: JVM startup instruction cost per task launch (SETUP phases).
_INS_PER_JVM_START = 150_000.0

#: Working-set bounds per worker.
_MIN_WS = 256 * _KB
_MAX_WS = 160 * _MB
#: Hadoop-family tasks stream from disk buffers; their resident set per
#: task is bounded by io buffers + JVM young gen, not by the data size.
_MAX_WS_PROCESS_MODEL = 12 * _MB
_MAX_SHARED_WS = 96 * _MB

#: Page-cache sharing floor for process-per-task stacks.
_PROCESS_MODEL_SHARING = 0.04

#: Log-normal sigma of per-workload idiosyncrasy at a 50 % user-code
#: share.  Two applications with the same phase structure still differ in
#: code layout, object shapes, allocation patterns and JIT decisions;
#: templates alone would make them microarchitecturally identical twins,
#: which no real suite exhibits.  The perturbation is keyed
#: deterministically by (workload, phase kind), so it is a property of
#: the workload, not run-to-run noise.
#:
#: Crucially, the *magnitude* scales with the user-code instruction share
#: of the phase: this is the paper's central mechanism in reverse —
#: "[Hadoop's] software stack dominates application behavior, minimizing
#: the impact of potentially diverse behaviors introduced by user
#: application code.  Spark ... dominates system behavior less"
#: (Section V-A).  A framework-heavy phase expresses little workload
#: individuality; a thin-framework phase expresses a lot.
_IDIOSYNCRASY_SIGMA = 0.10


def _idiosyncrasy(workload: str, kind: PhaseKind):
    import numpy as np

    from repro.stacks.base import stable_hash

    return np.random.default_rng(stable_hash(("idio", workload, kind.value)))


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


def _merge_records(records: list[PhaseRecord]) -> tuple[int, int, int, int, dict[str, float]]:
    """Sum the volume fields and details of a group of phase records."""
    records_in = sum(r.records_in for r in records)
    bytes_in = sum(r.bytes_in for r in records)
    records_out = sum(r.records_out for r in records)
    bytes_out = sum(r.bytes_out for r in records)
    details: dict[str, float] = {}
    for record in records:
        for key, value in record.details.items():
            details[key] = details.get(key, 0.0) + value
    return records_in, bytes_in, records_out, bytes_out, details


def profiles_from_trace(
    trace: ExecutionTrace,
    hints: CharacterHints | None = None,
    num_workers: int = 4,
    footprint_scale: float = 1.0,
) -> list[PhaseProfile]:
    """Convert an execution trace into phase profiles for the simulator.

    Phases of the same kind are merged (their rates are homogeneous; the
    simulator samples rates, so per-task granularity adds nothing but
    time) and emitted in canonical order.

    Args:
        trace: The engine execution trace.
        hints: Algorithm-character hints from the workload definition.
        num_workers: Worker slots the phases were spread over.
        footprint_scale: Declared-to-actual data-size ratio (>= 1).  The
            engines ran on scaled-down data; footprints are blown back up
            to what the declared Table I problem size implies, so
            footprint-dependent effects (Spark's heap-resident partitions,
            TLB reach, LLC capacity) behave as at full scale.  Working
            sets are capped, so any sufficiently large scale saturates.

    Raises:
        ConfigurationError: If the trace is empty or ``num_workers`` is
            not positive.
    """
    if num_workers <= 0:
        raise ConfigurationError("num_workers must be positive")
    if not trace.records:
        raise ConfigurationError(
            f"trace for {trace.workload!r} has no phase records"
        )
    hints = hints or CharacterHints()
    stack = trace.stack
    framework_tax = (
        _FRAMEWORK_INS_INTERCEPT
        + _FRAMEWORK_INS_PER_SOURCE_MB * (stack.source_bytes / _MB)
    )

    # Only the committed execution is measured: failed and speculative-
    # loser attempts are recovery bookkeeping, not steady-state behaviour
    # (and excluding them keeps recovered runs bit-identical to clean ones).
    committed = trace.committed_records

    # Shared-region size: everything that lives in node-shared memory over
    # the run — cached partitions, shuffle data, page-cache pages.
    shared_bytes = sum(
        r.bytes_in
        for r in committed
        if r.kind
        in (
            PhaseKind.CACHE_BUILD,
            PhaseKind.SHUFFLE,
            PhaseKind.SHUFFLE_WRITE,
            PhaseKind.SHUFFLE_READ,
        )
    )
    shared_ws = int(
        _clamp(shared_bytes * 4.0 * footprint_scale, 4 * _MB, _MAX_SHARED_WS)
    )

    profiles: list[PhaseProfile] = []
    for kind in _KIND_ORDER:
        group = [r for r in committed if r.kind is kind]
        if not group:
            continue
        template = _TEMPLATES[kind]
        records_in, bytes_in, _records_out, bytes_out, details = _merge_records(group)

        instructions = (
            records_in * (template.ins_per_record + framework_tax)
            + bytes_in * template.ins_per_byte
            + details.get("compare_ops", 0.0) * template.ins_per_compare
            + details.get("jvm_starts", 0.0) * _INS_PER_JVM_START
        )
        if instructions < 1:
            continue

        mix = template.mix
        fp_sse = _clamp(mix.other * 0.02 + hints.fp_sse, 0.0, 0.3)
        fp_x87 = _clamp(hints.fp_x87, 0.0, 0.2)
        int_alu = _clamp(mix.int_alu + hints.integer_shift, 0.0, 0.5)
        parts = [mix.load, mix.store, mix.branch, int_alu, fp_x87, fp_sse]
        total = sum(parts)
        if total > 1.0:  # hints squeezed out the OTHER slack; renormalise
            parts = [p / total for p in parts]
        adjusted_mix = InstructionMix(
            load=parts[0],
            store=parts[1],
            branch=parts[2],
            int_alu=parts[3],
            fp_x87=parts[4],
            fp_sse=parts[5],
        )

        per_worker_bytes = (bytes_in + bytes_out) / num_workers
        hot_data = template.hot_data
        streaming = template.streaming
        if stack.tasks_share_process:
            # Executor threads see the whole node's heap: cached partitions
            # and sibling tasks' data inflate the reachable footprint, and
            # the collector periodically sweeps the full heap (cold tails).
            working_set = int(
                _clamp(
                    per_worker_bytes * hints.working_set_factor * 3.0 * footprint_scale,
                    _MIN_WS,
                    _MAX_WS,
                )
            )
            data_tail = 0.45
            shared_tail = 0.40
        else:
            # Process-per-task stacks stream through bounded buffers but
            # churn framework objects (serialisation, context wrappers),
            # i.e. more scattered references over a moderate resident set.
            working_set = int(
                _clamp(
                    per_worker_bytes * hints.working_set_factor * footprint_scale,
                    _MIN_WS,
                    _MAX_WS_PROCESS_MODEL,
                )
            )
            hot_data = max(0.0, hot_data - 0.12)
            streaming = max(0.0, streaming - 0.10)
            data_tail = 0.06
            shared_tail = 0.25

        shared_fraction = (
            template.shared
            if stack.tasks_share_process
            else min(template.shared, _PROCESS_MODEL_SHARING)
        )

        kernel_fraction = _clamp(template.kernel_io * stack.kernel_io_weight, 0.0, 0.75)

        idio = _idiosyncrasy(trace.workload, kind)
        # User-code share of this phase's instructions: thin stacks let
        # the application's individuality through (Section V-A).
        user_share = template.ins_per_record / (
            template.ins_per_record + framework_tax
        )
        sigma = _clamp(_IDIOSYNCRASY_SIGMA * 3.2 * user_share, 0.03, 0.35)

        def jitter(value: float, rng=idio, sigma: float = sigma) -> float:
            return float(value * rng.lognormal(0.0, sigma))

        profiles.append(
            PhaseProfile(
                name=f"{stack.name}:{kind.value}",
                instructions=max(1, int(instructions)),
                mix=adjusted_mix,
                kernel_fraction=_clamp(jitter(kernel_fraction), 0.0, 0.75),
                uops_per_instruction=max(1.0, jitter(stack.jvm_uops_factor)),
                code_footprint=max(
                    64 * _KB, int(jitter(stack.hot_code_bytes * template.code_factor))
                ),
                code_locality=0.97,
                code_reuse_skew=4.0,
                data_working_set=max(_MIN_WS, int(jitter(working_set))),
                hot_data_fraction=_clamp(jitter(hot_data), 0.0, 0.9),
                data_streaming_fraction=_clamp(jitter(streaming), 0.0, 0.9),
                data_reuse_skew=4.5,
                data_tail_fraction=_clamp(jitter(data_tail), 0.0, 0.6),
                shared_fraction=_clamp(jitter(shared_fraction), 0.0, 0.8),
                shared_working_set=max(1, int(jitter(shared_ws))),
                shared_reuse_skew=5.0,
                shared_tail_fraction=_clamp(jitter(shared_tail), 0.0, 0.6),
                shared_write_fraction=_clamp(jitter(template.shared_write), 0.0, 1.0),
                branch_entropy=_clamp(
                    jitter(template.branch_entropy + hints.branch_entropy_shift),
                    0.0,
                    1.0,
                ),
            )
        )
    return profiles
