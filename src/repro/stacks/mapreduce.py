"""A working miniature Hadoop MapReduce engine.

Implements the real execution structure of Hadoop 1.x jobs — per-block map
tasks with data locality, map-side sorted spills with optional combiners,
hash partitioning, reducer-side shuffle and multi-run merge, grouped
reduce, and HDFS output — while emitting a :class:`~repro.stacks.base.
PhaseRecord` for every phase so the instrumentation layer can see exactly
what the framework did.

The engine genuinely computes: WordCount really counts, Sort really
sorts, reduce-side joins really join.  Tests assert output correctness
against independent reference implementations.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from operator import itemgetter

from repro.errors import StackExecutionError
from repro.faults.recovery import TaskRecorder, run_task
from repro.obs.log import get_logger
from repro.obs.trace import span as obs_span
from repro.stacks.base import (
    ExecutionTrace,
    PhaseKind,
    estimate_bytes,
    stable_hash,
)
from repro.stacks.hdfs import Hdfs, HdfsBlock

__all__ = ["MapReduceJob", "MapReduceEngine"]

_log = get_logger("repro.stacks.mapreduce")

Mapper = Callable[[object], Iterable[tuple]]
Reducer = Callable[[object, list], Iterable[object]]
Combiner = Callable[[object, list], Iterable[tuple]]


@dataclass(frozen=True)
class MapReduceJob:
    """One MapReduce job definition.

    Attributes:
        name: Job name (used in phase labels).
        mapper: ``record -> iterable[(key, value)]``.
        reducer: ``(key, values) -> iterable[output]``; ``None`` makes the
            job map-only (mapper outputs are written directly).
        combiner: Optional map-side reducer ``(key, values) ->
            iterable[(key, value)]``, applied per spill as in Hadoop.
        num_reducers: Reduce-task count.
        partitioner: ``(key, num_partitions) -> partition``; defaults to
            hash partitioning.  Total-order jobs (TeraSort-style) supply a
            range partitioner so concatenated reducer outputs are globally
            sorted.
    """

    name: str
    mapper: Mapper
    reducer: Reducer | None = None
    combiner: Combiner | None = None
    num_reducers: int = 4
    partitioner: Callable[[object, int], int] | None = None

    def __post_init__(self) -> None:
        if self.num_reducers <= 0:
            raise StackExecutionError(f"job {self.name}: num_reducers must be positive")


def _group_sorted(pairs: list[tuple]) -> Iterable[tuple[object, list]]:
    """Group a key-sorted pair list into (key, values) groups."""
    index = 0
    n = len(pairs)
    while index < n:
        key = pairs[index][0]
        values = []
        while index < n and pairs[index][0] == key:
            values.append(pairs[index][1])
            index += 1
        yield key, values


def _apply_combiner(combiner: Combiner, sorted_pairs: list[tuple]) -> list[tuple]:
    """Run the combiner over one sorted spill."""
    combined: list[tuple] = []
    for key, values in _group_sorted(sorted_pairs):
        combined.extend(combiner(key, values))
    return combined


def _sort_cost(n: int) -> float:
    """Comparison count estimate for sorting ``n`` items."""
    return float(n) * math.log2(max(2, n))


@dataclass(frozen=True)
class _MapTaskResult:
    """What one committed map attempt produced.

    ``runs`` holds ``(partition, sorted_run)`` pairs; the engine merges
    them into the global per-reducer state only after the attempt
    commits, so failed/speculative attempts leave no residue.
    """

    map_out: list
    runs: list[tuple[int, list[tuple]]]
    spilled_records: int
    combine_output_records: int


@dataclass(frozen=True)
class _ReduceTaskResult:
    """What one committed reduce attempt produced."""

    reduce_out: list
    groups: int
    run_records: int
    run_bytes: int


@dataclass
class _JobCounters:
    """Hadoop-style job counters, exposed for tests and reports."""

    map_input_records: int = 0
    map_output_records: int = 0
    combine_output_records: int = 0
    spilled_records: int = 0
    shuffle_bytes: int = 0
    reduce_input_groups: int = 0
    reduce_output_records: int = 0


class MapReduceEngine:
    """Executes :class:`MapReduceJob` definitions over HDFS files.

    Args:
        hdfs: The block store providing input splits and data locality.
        spill_records: Map-side buffer size in records (the analogue of
            ``io.sort.mb``); map output beyond this spills in sorted runs.
    """

    def __init__(self, hdfs: Hdfs, spill_records: int = 4096) -> None:
        if spill_records <= 0:
            raise StackExecutionError("spill_records must be positive")
        self.hdfs = hdfs
        self.spill_records = spill_records
        self.last_counters: _JobCounters | None = None

    def run_job(
        self,
        job: MapReduceJob,
        input_path: str | list[str],
        trace: ExecutionTrace,
        output_path: str | None = None,
    ) -> list:
        """Run ``job`` over one or more input paths; returns output records.

        Multiple input paths model Hadoop's ``MultipleInputs`` (Hive uses
        it for reduce-side joins over tagged tables).  Emits SETUP / MAP /
        SPILL / SHUFFLE / SORT_MERGE / REDUCE / OUTPUT phase records into
        ``trace``.

        Every map and reduce task executes through the fault-recovery
        boundary (:func:`repro.faults.recovery.run_task`): under an
        active fault plan, crashed attempts are retried with backoff,
        stragglers are speculatively duplicated, and a lost node's tasks
        run on survivors — while the committed records and job output
        stay identical to an undisturbed run.

        Raises:
            StackExecutionError: On missing input, invalid job config, or
                an injected fault persisting past the task retry budget.
        """
        paths = [input_path] if isinstance(input_path, str) else list(input_path)
        blocks = [block for path in paths for block in self.hdfs.blocks(path)]
        counters = _JobCounters()
        self.last_counters = counters
        _log.debug(
            "mapreduce job starting",
            extra={"job": job.name, "blocks": len(blocks),
                   "reducers": job.num_reducers if job.reducer else 0},
        )

        trace.emit(
            PhaseKind.SETUP,
            f"setup:{job.name}",
            worker=-1,
            records_in=0,
            bytes_in=0,
            jvm_starts=float(len(blocks) + (job.num_reducers if job.reducer else 0)),
        )

        # ---- map + spill (one task per block, scheduled on the block's node)
        num_partitions = job.num_reducers
        partitioner = job.partitioner or (lambda key, n: stable_hash(key) % n)
        partition_runs: list[list[list[tuple]]] = [[] for _ in range(num_partitions)]
        map_only_output: list = []
        with obs_span(f"phase:map:{job.name}", "phase", tasks=len(blocks)):
            for block in blocks:
                task: _MapTaskResult = run_task(
                    trace,
                    f"map:{job.name}",
                    block.primary_node,
                    lambda recorder, worker, block=block: self._map_task(
                        job, block, worker, num_partitions, partitioner, recorder
                    ),
                    reads_hdfs=True,
                    num_nodes=self.hdfs.num_nodes,
                )
                counters.map_input_records += len(block.records)
                counters.map_output_records += len(task.map_out)
                counters.spilled_records += task.spilled_records
                counters.combine_output_records += task.combine_output_records
                if job.reducer is None:
                    map_only_output.extend(task.map_out)
                else:
                    for partition, run in task.runs:
                        partition_runs[partition].append(run)

        if job.reducer is None:
            return self._finish(job, map_only_output, output_path, trace, counters)

        # ---- shuffle + merge + reduce (one task per partition)
        output: list = []
        with obs_span(
            f"phase:reduce:{job.name}", "phase", tasks=num_partitions
        ):
            for partition in range(num_partitions):
                runs = partition_runs[partition]
                task: _ReduceTaskResult = run_task(
                    trace,
                    f"reduce:{job.name}",
                    partition % self.hdfs.num_nodes,
                    lambda recorder, worker, runs=runs: self._reduce_task(
                        job, runs, worker, recorder
                    ),
                    num_nodes=self.hdfs.num_nodes,
                )
                counters.shuffle_bytes += task.run_bytes
                counters.reduce_input_groups += task.groups
                counters.reduce_output_records += len(task.reduce_out)
                output.extend(task.reduce_out)
        return self._finish(job, output, output_path, trace, counters)

    def _map_task(
        self,
        job: MapReduceJob,
        block: HdfsBlock,
        worker: int,
        num_partitions: int,
        partitioner: Callable[[object, int], int],
        recorder: TaskRecorder,
    ) -> _MapTaskResult:
        """One map attempt: map the block, then sort/combine/spill runs."""
        map_out: list[tuple] = []
        for record in block.records:
            map_out.extend(job.mapper(record))
        out_bytes = sum(estimate_bytes(p) for p in map_out)
        recorder.emit(
            PhaseKind.MAP,
            f"map:{job.name}",
            worker=worker,
            records_in=len(block.records),
            bytes_in=block.bytes,
            records_out=len(map_out),
            bytes_out=out_bytes,
        )
        if job.reducer is None:
            return _MapTaskResult(map_out, [], 0, 0)
        spilled = 0
        combined = 0
        runs: list[tuple[int, list[tuple]]] = []
        for start in range(0, max(1, len(map_out)), self.spill_records):
            chunk = map_out[start : start + self.spill_records]
            if not chunk:
                break
            chunk.sort(key=itemgetter(0))
            if job.combiner is not None:
                chunk = _apply_combiner(job.combiner, chunk)
                combined += len(chunk)
            spilled += len(chunk)
            recorder.emit(
                PhaseKind.SPILL,
                f"spill:{job.name}",
                worker=worker,
                records_in=len(chunk),
                bytes_in=sum(estimate_bytes(p) for p in chunk),
                records_out=len(chunk),
                bytes_out=sum(estimate_bytes(p) for p in chunk),
                compare_ops=_sort_cost(len(chunk)),
            )
            # Partition the sorted spill into per-reducer runs.
            per_partition: list[list[tuple]] = [[] for _ in range(num_partitions)]
            for pair in chunk:
                per_partition[partitioner(pair[0], num_partitions)].append(pair)
            for partition, run in enumerate(per_partition):
                if run:
                    runs.append((partition, run))
        return _MapTaskResult(map_out, runs, spilled, combined)

    def _reduce_task(
        self,
        job: MapReduceJob,
        runs: list[list[tuple]],
        worker: int,
        recorder: TaskRecorder,
    ) -> _ReduceTaskResult:
        """One reduce attempt: fetch runs, merge-sort them, reduce groups."""
        run_records = sum(len(run) for run in runs)
        run_bytes = sum(estimate_bytes(p) for run in runs for p in run)
        recorder.emit(
            PhaseKind.SHUFFLE,
            f"shuffle:{job.name}",
            worker=worker,
            records_in=run_records,
            bytes_in=run_bytes,
            records_out=run_records,
            bytes_out=run_bytes,
            fetches=float(len(runs)),
        )
        merged = list(heapq.merge(*runs, key=itemgetter(0)))
        recorder.emit(
            PhaseKind.SORT_MERGE,
            f"merge:{job.name}",
            worker=worker,
            records_in=run_records,
            bytes_in=run_bytes,
            records_out=len(merged),
            bytes_out=run_bytes,
            compare_ops=float(run_records) * math.log2(max(2, len(runs))),
        )
        reduce_out: list = []
        groups = 0
        for key, values in _group_sorted(merged):
            groups += 1
            reduce_out.extend(job.reducer(key, values))
        recorder.emit(
            PhaseKind.REDUCE,
            f"reduce:{job.name}",
            worker=worker,
            records_in=len(merged),
            bytes_in=run_bytes,
            records_out=len(reduce_out),
            bytes_out=sum(estimate_bytes(r) for r in reduce_out),
            groups=float(groups),
        )
        return _ReduceTaskResult(reduce_out, groups, run_records, run_bytes)

    def _finish(
        self,
        job: MapReduceJob,
        output: list,
        output_path: str | None,
        trace: ExecutionTrace,
        counters: _JobCounters,
    ) -> list:
        """Write output to HDFS (if requested) and emit the OUTPUT phase."""
        out_bytes = sum(estimate_bytes(r) for r in output)
        trace.emit(
            PhaseKind.OUTPUT,
            f"output:{job.name}",
            worker=-1,
            records_in=len(output),
            bytes_in=out_bytes,
            records_out=len(output),
            bytes_out=out_bytes,
        )
        if output_path is not None:
            self.hdfs.delete(output_path)
            self.hdfs.put(output_path, output)
        _log.debug(
            "mapreduce job finished",
            extra={
                "job": job.name,
                "map_input_records": counters.map_input_records,
                "map_output_records": counters.map_output_records,
                "spilled_records": counters.spilled_records,
                "shuffle_bytes": counters.shuffle_bytes,
                "reduce_output_records": counters.reduce_output_records,
            },
        )
        return output
