"""The Hadoop software stack (MapReduce engine + stack identity).

Models Hadoop 1.0.2 as deployed on the paper's testbed.  The structural
facts encoded in :data:`HADOOP_1_0_2` come straight from Section V-A:
the main source tree is ~67 MB, map/reduce tasks run as separate JVM
processes (no intra-node heap sharing), and the framework materialises
intermediate data through local disk and the kernel page cache.
"""

from __future__ import annotations

from repro.stacks.base import ExecutionTrace, StackInfo
from repro.stacks.hdfs import Hdfs
from repro.stacks.mapreduce import MapReduceEngine, MapReduceJob

__all__ = ["HADOOP_1_0_2", "HadoopStack"]

_MB = 1 << 20

#: Hadoop 1.0.2 as characterized in the paper.
HADOOP_1_0_2 = StackInfo(
    name="hadoop",
    source_bytes=67 * _MB,  # "the size of the main source code ... is 67 MB"
    hot_code_bytes=int(2.4 * _MB),
    tasks_share_process=False,  # one JVM per map/reduce task
    jvm_uops_factor=1.48,
    kernel_io_weight=1.25,  # disk-materialised intermediates, more ring 0
)


class HadoopStack:
    """Facade bundling HDFS, the MapReduce engine, and the stack identity."""

    info = HADOOP_1_0_2

    def __init__(self, hdfs: Hdfs | None = None, num_nodes: int = 4) -> None:
        self.hdfs = hdfs or Hdfs(num_nodes=num_nodes)
        self.engine = MapReduceEngine(self.hdfs)

    def new_trace(self, workload: str) -> ExecutionTrace:
        """A fresh execution trace tagged with this stack."""
        return ExecutionTrace(self.info, workload)

    def run(
        self,
        job: MapReduceJob,
        input_path: str,
        trace: ExecutionTrace,
        output_path: str | None = None,
    ) -> list:
        """Run one MapReduce job (see :meth:`MapReduceEngine.run_job`)."""
        return self.engine.run_job(job, input_path, trace, output_path=output_path)

    def run_chain(
        self,
        jobs: list[MapReduceJob],
        input_path: str,
        trace: ExecutionTrace,
        workload: str,
    ) -> list:
        """Run a job chain, materialising intermediates in HDFS.

        Hive query plans and iterative algorithms (PageRank, K-means)
        compile into chains of jobs whose intermediate output each
        subsequent job reads back from HDFS — a defining behaviour of the
        Hadoop stack (and a big part of why Spark beats it on iterative
        workloads).
        """
        path = input_path
        output: list = []
        for index, job in enumerate(jobs):
            out_path = f"/tmp/{workload}/job-{index}"
            output = self.engine.run_job(job, path, trace, output_path=out_path)
            path = out_path
        return output
