"""Resilient Distributed Datasets: a working miniature Spark core.

Implements the RDD programming model of Spark 0.8: lazy transformations
building a lineage DAG, with actions triggering recursive computation.
Narrow transformations (map, filter, union) operate per partition; wide
transformations (reduceByKey, groupByKey, sortBy, join, cartesian)
introduce shuffle boundaries with hash or range partitioning and optional
map-side combining — the same execution structure that makes Spark's
microarchitectural behaviour what it is.  ``cache()`` pins computed
partitions in executor memory, so iterative algorithms (PageRank,
K-means) recompute nothing, while the instrumentation layer sees large
in-memory shared data instead of disk traffic.

Every computation emits phase records (STAGE / SHUFFLE_WRITE /
SHUFFLE_READ / CACHE_BUILD / CACHE_SCAN) into the active
:class:`~repro.stacks.base.ExecutionTrace`.
"""

from __future__ import annotations

import bisect
import itertools
import math
from collections.abc import Callable, Iterable

from repro.errors import StackExecutionError
from repro.faults.recovery import run_task
from repro.stacks.base import ExecutionTrace, PhaseKind, estimate_bytes, stable_hash
from repro.stacks.hdfs import Hdfs

__all__ = ["RDD", "SparkContextLike"]

_rdd_ids = itertools.count(1)


def _partition_bytes(partition: list) -> int:
    return sum(estimate_bytes(record) for record in partition)


class SparkContextLike:
    """Minimal protocol the engine must satisfy (see ``spark.SparkEngine``)."""

    num_workers: int
    default_parallelism: int

    def compute(self, rdd: "RDD", trace: ExecutionTrace) -> list[list]:
        raise NotImplementedError


class RDD:
    """Base class: a lazy, partitioned, immutable dataset with lineage."""

    def __init__(self, engine: SparkContextLike, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise StackExecutionError("an RDD needs at least one partition")
        self.engine = engine
        self.num_partitions = num_partitions
        self.rdd_id = next(_rdd_ids)
        self.cached = False

    # -- lineage (subclasses implement) ----------------------------------

    def compute_partitions(self, trace: ExecutionTrace) -> list[list]:
        """Compute all partitions (no caching — use ``engine.compute``)."""
        raise NotImplementedError

    def preferred_worker(self, partition: int) -> int:
        """Worker slot a partition's task prefers (default round-robin)."""
        return partition % max(1, self.engine.num_workers)

    def _run_task(self, trace: ExecutionTrace, name: str, partition: int, body, *, reads_hdfs: bool = False):
        """Run one partition task through the fault-recovery boundary."""
        return run_task(
            trace,
            name,
            self.preferred_worker(partition),
            body,
            reads_hdfs=reads_hdfs,
            num_nodes=self.engine.num_workers,
        )

    # -- transformations ---------------------------------------------------

    def map(self, fn: Callable) -> "RDD":
        """Element-wise transformation (narrow)."""
        return _MappedRDD(self, fn, flat=False, label="map")

    def flat_map(self, fn: Callable) -> "RDD":
        """Element-to-many transformation (narrow)."""
        return _MappedRDD(self, fn, flat=True, label="flatMap")

    def filter(self, predicate: Callable) -> "RDD":
        """Keep elements satisfying ``predicate`` (narrow)."""
        return _FilteredRDD(self, predicate)

    def map_partitions(self, fn: Callable[[list], Iterable]) -> "RDD":
        """Partition-at-a-time transformation (narrow)."""
        return _MapPartitionsRDD(self, fn)

    def union(self, other: "RDD") -> "RDD":
        """Bag union (UNION ALL): concatenates partitions, no shuffle."""
        return _UnionRDD(self, other)

    def distinct(self) -> "RDD":
        """Deduplicate elements (wide: shuffles by element)."""
        return (
            self.map(lambda x: (x, None))
            .reduce_by_key(lambda a, _b: a)
            .map(lambda kv: kv[0])
        )

    def reduce_by_key(self, fn: Callable, num_partitions: int | None = None) -> "RDD":
        """Combine pair values per key (wide, with map-side combine)."""
        return _ShuffledRDD(
            self,
            num_partitions or self.engine.default_parallelism,
            combiner=fn,
            map_side_combine=True,
        )

    def group_by_key(self, num_partitions: int | None = None) -> "RDD":
        """Group pair values per key into lists (wide, no combine)."""
        return _ShuffledRDD(
            self,
            num_partitions or self.engine.default_parallelism,
            combiner=None,
            map_side_combine=False,
        )

    def sort_by(self, key_fn: Callable, num_partitions: int | None = None) -> "RDD":
        """Total ordering via range partitioning + per-partition sorts."""
        return _SortedRDD(self, key_fn, num_partitions or self.engine.default_parallelism)

    def join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Inner join of two pair RDDs: ``(k, (v_self, v_other))``."""
        return _CoGroupedRDD(
            self,
            other,
            num_partitions or self.engine.default_parallelism,
            mode="join",
        )

    def subtract(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Elements of ``self`` absent from ``other`` (set difference)."""
        left = self.map(lambda x: (x, None))
        right = other.map(lambda x: (x, None))
        return _CoGroupedRDD(
            left,
            right,
            num_partitions or self.engine.default_parallelism,
            mode="subtract",
        )

    def cartesian(self, other: "RDD") -> "RDD":
        """Cross product of two RDDs (wide in data volume, not in shuffle)."""
        return _CartesianRDD(self, other)

    def map_values(self, fn: Callable) -> "RDD":
        """Transform pair values, preserving keys (narrow)."""
        return _MappedRDD(
            self, lambda kv, f=fn: (kv[0], f(kv[1])), flat=False, label="mapValues"
        )

    def keys(self) -> "RDD":
        """The keys of a pair RDD (narrow)."""
        return _MappedRDD(self, lambda kv: kv[0], flat=False, label="keys")

    def values(self) -> "RDD":
        """The values of a pair RDD (narrow)."""
        return _MappedRDD(self, lambda kv: kv[1], flat=False, label="values")

    def cache(self) -> "RDD":
        """Pin computed partitions in executor memory."""
        self.cached = True
        return self

    # -- actions -----------------------------------------------------------

    def collect(self, trace: ExecutionTrace) -> list:
        """Materialise all elements on the driver."""
        partitions = self.engine.compute(self, trace)
        result = [record for partition in partitions for record in partition]
        trace.emit(
            PhaseKind.DRIVER,
            "collect",
            worker=-1,
            records_in=len(result),
            bytes_in=_partition_bytes(result),
        )
        return result

    def count(self, trace: ExecutionTrace) -> int:
        """Number of elements."""
        partitions = self.engine.compute(self, trace)
        total = sum(len(partition) for partition in partitions)
        trace.emit(PhaseKind.DRIVER, "count", worker=-1, records_in=total, bytes_in=0)
        return total

    def take(self, n: int, trace: ExecutionTrace) -> list:
        """The first ``n`` elements in partition order.

        Raises:
            StackExecutionError: If ``n`` is negative.
        """
        if n < 0:
            raise StackExecutionError("take(n) needs a non-negative n")
        partitions = self.engine.compute(self, trace)
        taken: list = []
        for partition in partitions:
            for record in partition:
                if len(taken) == n:
                    return taken
                taken.append(record)
        return taken

    def first(self, trace: ExecutionTrace):
        """The first element.

        Raises:
            StackExecutionError: If the RDD is empty.
        """
        taken = self.take(1, trace)
        if not taken:
            raise StackExecutionError("first() of an empty RDD")
        return taken[0]

    def reduce(self, fn: Callable, trace: ExecutionTrace):
        """Fold all elements with ``fn``.

        Raises:
            StackExecutionError: If the RDD is empty.
        """
        values = self.collect(trace)
        if not values:
            raise StackExecutionError("reduce of an empty RDD")
        accumulator = values[0]
        for value in values[1:]:
            accumulator = fn(accumulator, value)
        return accumulator


class _SourceRDD(RDD):
    """Partitions supplied directly (``parallelize``)."""

    def __init__(self, engine: SparkContextLike, partitions: list[list]) -> None:
        super().__init__(engine, max(1, len(partitions)))
        self._partitions = [list(p) for p in partitions] or [[]]

    def compute_partitions(self, trace: ExecutionTrace) -> list[list]:
        output: list[list] = []
        for index, partition in enumerate(self._partitions):
            def body(recorder, worker, partition=partition):
                recorder.emit(
                    PhaseKind.STAGE,
                    "scan:parallelize",
                    worker=worker,
                    records_in=len(partition),
                    bytes_in=_partition_bytes(partition),
                    records_out=len(partition),
                    bytes_out=_partition_bytes(partition),
                )
                return list(partition)

            output.append(self._run_task(trace, "scan:parallelize", index, body))
        return output


class _HdfsRDD(RDD):
    """One partition per HDFS block, scheduled with data locality."""

    def __init__(self, engine: SparkContextLike, hdfs: Hdfs, path: str) -> None:
        self._blocks = hdfs.blocks(path)
        super().__init__(engine, max(1, len(self._blocks)))
        self._path = path

    def preferred_worker(self, partition: int) -> int:
        if partition < len(self._blocks):
            return self._blocks[partition].primary_node
        return super().preferred_worker(partition)

    def compute_partitions(self, trace: ExecutionTrace) -> list[list]:
        partitions: list[list] = []
        for index, block in enumerate(self._blocks):
            def body(recorder, worker, block=block):
                records = list(block.records)
                recorder.emit(
                    PhaseKind.STAGE,
                    f"scan:{self._path}",
                    worker=worker,
                    records_in=len(records),
                    bytes_in=block.bytes,
                    records_out=len(records),
                    bytes_out=block.bytes,
                )
                return records

            partitions.append(
                self._run_task(
                    trace, f"scan:{self._path}", index, body, reads_hdfs=True
                )
            )
        return partitions or [[]]


class _MappedRDD(RDD):
    def __init__(self, parent: RDD, fn: Callable, flat: bool, label: str) -> None:
        super().__init__(parent.engine, parent.num_partitions)
        self._parent = parent
        self._fn = fn
        self._flat = flat
        self._label = label

    def preferred_worker(self, partition: int) -> int:
        return self._parent.preferred_worker(partition)

    def compute_partitions(self, trace: ExecutionTrace) -> list[list]:
        parents = self.engine.compute(self._parent, trace)
        output: list[list] = []
        for index, partition in enumerate(parents):
            def body(recorder, worker, partition=partition):
                if self._flat:
                    result = [
                        item for record in partition for item in self._fn(record)
                    ]
                else:
                    result = [self._fn(record) for record in partition]
                recorder.emit(
                    PhaseKind.STAGE,
                    f"stage:{self._label}",
                    worker=worker,
                    records_in=len(partition),
                    bytes_in=_partition_bytes(partition),
                    records_out=len(result),
                    bytes_out=_partition_bytes(result),
                )
                return result

            output.append(
                self._run_task(trace, f"stage:{self._label}", index, body)
            )
        return output


class _FilteredRDD(RDD):
    def __init__(self, parent: RDD, predicate: Callable) -> None:
        super().__init__(parent.engine, parent.num_partitions)
        self._parent = parent
        self._predicate = predicate

    def preferred_worker(self, partition: int) -> int:
        return self._parent.preferred_worker(partition)

    def compute_partitions(self, trace: ExecutionTrace) -> list[list]:
        parents = self.engine.compute(self._parent, trace)
        output: list[list] = []
        for index, partition in enumerate(parents):
            def body(recorder, worker, partition=partition):
                result = [
                    record for record in partition if self._predicate(record)
                ]
                recorder.emit(
                    PhaseKind.STAGE,
                    "stage:filter",
                    worker=worker,
                    records_in=len(partition),
                    bytes_in=_partition_bytes(partition),
                    records_out=len(result),
                    bytes_out=_partition_bytes(result),
                )
                return result

            output.append(self._run_task(trace, "stage:filter", index, body))
        return output


class _MapPartitionsRDD(RDD):
    def __init__(self, parent: RDD, fn: Callable[[list], Iterable]) -> None:
        super().__init__(parent.engine, parent.num_partitions)
        self._parent = parent
        self._fn = fn

    def preferred_worker(self, partition: int) -> int:
        return self._parent.preferred_worker(partition)

    def compute_partitions(self, trace: ExecutionTrace) -> list[list]:
        parents = self.engine.compute(self._parent, trace)
        output: list[list] = []
        for index, partition in enumerate(parents):
            def body(recorder, worker, partition=partition):
                result = list(self._fn(partition))
                recorder.emit(
                    PhaseKind.STAGE,
                    "stage:mapPartitions",
                    worker=worker,
                    records_in=len(partition),
                    bytes_in=_partition_bytes(partition),
                    records_out=len(result),
                    bytes_out=_partition_bytes(result),
                )
                return result

            output.append(
                self._run_task(trace, "stage:mapPartitions", index, body)
            )
        return output


class _UnionRDD(RDD):
    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(left.engine, left.num_partitions + right.num_partitions)
        self._left = left
        self._right = right

    def compute_partitions(self, trace: ExecutionTrace) -> list[list]:
        left = self.engine.compute(self._left, trace)
        right = self.engine.compute(self._right, trace)
        partitions = left + right
        for index, partition in enumerate(partitions):
            trace.emit(
                PhaseKind.STAGE,
                "stage:union",
                worker=self.preferred_worker(index),
                records_in=len(partition),
                bytes_in=_partition_bytes(partition),
                records_out=len(partition),
                bytes_out=_partition_bytes(partition),
            )
        return partitions


class _ShuffledRDD(RDD):
    """Hash-partitioned shuffle with optional map-side combining.

    With a ``combiner``, output elements are ``(key, combined_value)``
    (reduceByKey semantics); without, ``(key, [values])`` (groupByKey).
    """

    def __init__(
        self,
        parent: RDD,
        num_partitions: int,
        combiner: Callable | None,
        map_side_combine: bool,
    ) -> None:
        super().__init__(parent.engine, num_partitions)
        self._parent = parent
        self._combiner = combiner
        self._map_side_combine = map_side_combine and combiner is not None

    def _combine_partition(self, partition: list) -> list:
        combined: dict = {}
        for key, value in partition:
            if key in combined:
                combined[key] = self._combiner(combined[key], value)
            else:
                combined[key] = value
        return list(combined.items())

    def compute_partitions(self, trace: ExecutionTrace) -> list[list]:
        parents = self.engine.compute(self._parent, trace)
        buckets: list[list] = [[] for _ in range(self.num_partitions)]
        for index, partition in enumerate(parents):
            def write_body(recorder, worker, partition=partition):
                to_write = (
                    self._combine_partition(partition)
                    if self._map_side_combine
                    else partition
                )
                recorder.emit(
                    PhaseKind.SHUFFLE_WRITE,
                    "shuffle-write",
                    worker=worker,
                    records_in=len(partition),
                    bytes_in=_partition_bytes(partition),
                    records_out=len(to_write),
                    bytes_out=_partition_bytes(to_write),
                )
                return to_write

            to_write = run_task(
                trace,
                "shuffle-write",
                self._parent.preferred_worker(index),
                write_body,
                num_nodes=self.engine.num_workers,
            )
            for key, value in to_write:
                buckets[stable_hash(key) % self.num_partitions].append((key, value))

        output: list[list] = []
        for index, bucket in enumerate(buckets):
            def read_body(recorder, worker, bucket=bucket):
                recorder.emit(
                    PhaseKind.SHUFFLE_READ,
                    "shuffle-read",
                    worker=worker,
                    records_in=len(bucket),
                    bytes_in=_partition_bytes(bucket),
                    records_out=len(bucket),
                    bytes_out=_partition_bytes(bucket),
                    fetches=float(len(parents)),
                )
                if self._combiner is not None:
                    result = self._combine_partition(bucket)
                else:
                    groups: dict = {}
                    for key, value in bucket:
                        groups.setdefault(key, []).append(value)
                    result = list(groups.items())
                recorder.emit(
                    PhaseKind.STAGE,
                    "stage:aggregate",
                    worker=worker,
                    records_in=len(bucket),
                    bytes_in=_partition_bytes(bucket),
                    records_out=len(result),
                    bytes_out=_partition_bytes(result),
                )
                return result

            output.append(
                self._run_task(trace, "stage:aggregate", index, read_body)
            )
        return output


class _SortedRDD(RDD):
    """Range-partitioned total sort (Spark's sortBy)."""

    def __init__(self, parent: RDD, key_fn: Callable, num_partitions: int) -> None:
        super().__init__(parent.engine, num_partitions)
        self._parent = parent
        self._key_fn = key_fn

    def compute_partitions(self, trace: ExecutionTrace) -> list[list]:
        parents = self.engine.compute(self._parent, trace)
        all_keys = sorted(
            self._key_fn(record) for partition in parents for record in partition
        )
        boundaries = [
            all_keys[(i + 1) * len(all_keys) // self.num_partitions]
            for i in range(self.num_partitions - 1)
        ] if all_keys else []

        buckets: list[list] = [[] for _ in range(self.num_partitions)]
        for index, partition in enumerate(parents):
            def write_body(recorder, worker, partition=partition):
                recorder.emit(
                    PhaseKind.SHUFFLE_WRITE,
                    "shuffle-write:sort",
                    worker=worker,
                    records_in=len(partition),
                    bytes_in=_partition_bytes(partition),
                    records_out=len(partition),
                    bytes_out=_partition_bytes(partition),
                )
                return partition

            written = run_task(
                trace,
                "shuffle-write:sort",
                self._parent.preferred_worker(index),
                write_body,
                num_nodes=self.engine.num_workers,
            )
            for record in written:
                buckets[bisect.bisect_left(boundaries, self._key_fn(record))].append(record)

        output: list[list] = []
        for index, bucket in enumerate(buckets):
            def read_body(recorder, worker, bucket=bucket):
                recorder.emit(
                    PhaseKind.SHUFFLE_READ,
                    "shuffle-read:sort",
                    worker=worker,
                    records_in=len(bucket),
                    bytes_in=_partition_bytes(bucket),
                    records_out=len(bucket),
                    bytes_out=_partition_bytes(bucket),
                )
                result = sorted(bucket, key=self._key_fn)
                recorder.emit(
                    PhaseKind.STAGE,
                    "stage:sort",
                    worker=worker,
                    records_in=len(result),
                    bytes_in=_partition_bytes(result),
                    records_out=len(result),
                    bytes_out=_partition_bytes(result),
                    compare_ops=float(len(result)) * math.log2(max(2, len(result))),
                )
                return result

            output.append(self._run_task(trace, "stage:sort", index, read_body))
        return output


class _CoGroupedRDD(RDD):
    """Shuffle two pair RDDs by key, then join or subtract per bucket."""

    def __init__(self, left: RDD, right: RDD, num_partitions: int, mode: str) -> None:
        if mode not in ("join", "subtract"):
            raise StackExecutionError(f"unknown cogroup mode: {mode!r}")
        super().__init__(left.engine, num_partitions)
        self._left = left
        self._right = right
        self._mode = mode

    def _shuffle_side(
        self, rdd: RDD, label: str, trace: ExecutionTrace
    ) -> list[list]:
        parents = self.engine.compute(rdd, trace)
        buckets: list[list] = [[] for _ in range(self.num_partitions)]
        for index, partition in enumerate(parents):
            def write_body(recorder, worker, partition=partition):
                recorder.emit(
                    PhaseKind.SHUFFLE_WRITE,
                    f"shuffle-write:{label}",
                    worker=worker,
                    records_in=len(partition),
                    bytes_in=_partition_bytes(partition),
                    records_out=len(partition),
                    bytes_out=_partition_bytes(partition),
                )
                return partition

            written = run_task(
                trace,
                f"shuffle-write:{label}",
                rdd.preferred_worker(index),
                write_body,
                num_nodes=self.engine.num_workers,
            )
            for key, value in written:
                buckets[stable_hash(key) % self.num_partitions].append((key, value))
        return buckets

    def compute_partitions(self, trace: ExecutionTrace) -> list[list]:
        left_buckets = self._shuffle_side(self._left, "cogroup-left", trace)
        right_buckets = self._shuffle_side(self._right, "cogroup-right", trace)
        output: list[list] = []
        for index in range(self.num_partitions):
            left, right = left_buckets[index], right_buckets[index]

            def read_body(recorder, worker, left=left, right=right):
                recorder.emit(
                    PhaseKind.SHUFFLE_READ,
                    "shuffle-read:cogroup",
                    worker=worker,
                    records_in=len(left) + len(right),
                    bytes_in=_partition_bytes(left) + _partition_bytes(right),
                )
                right_map: dict = {}
                for key, value in right:
                    right_map.setdefault(key, []).append(value)
                result: list = []
                if self._mode == "join":
                    for key, value in left:
                        for other in right_map.get(key, ()):
                            result.append((key, (value, other)))
                else:  # subtract: distinct left keys with no right occurrences
                    emitted: set = set()
                    for key, _value in left:
                        if key not in right_map and key not in emitted:
                            emitted.add(key)
                            result.append(key)
                recorder.emit(
                    PhaseKind.STAGE,
                    f"stage:{self._mode}",
                    worker=worker,
                    records_in=len(left) + len(right),
                    bytes_in=_partition_bytes(left) + _partition_bytes(right),
                    records_out=len(result),
                    bytes_out=_partition_bytes(result),
                )
                return result

            output.append(
                self._run_task(trace, f"stage:{self._mode}", index, read_body)
            )
        return output


class _CartesianRDD(RDD):
    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(left.engine, left.num_partitions * right.num_partitions)
        self._left = left
        self._right = right

    def compute_partitions(self, trace: ExecutionTrace) -> list[list]:
        left = self.engine.compute(self._left, trace)
        right = self.engine.compute(self._right, trace)
        output: list[list] = []
        index = 0
        for left_partition in left:
            for right_partition in right:
                def body(
                    recorder,
                    worker,
                    left_partition=left_partition,
                    right_partition=right_partition,
                ):
                    result = [
                        (a, b) for a in left_partition for b in right_partition
                    ]
                    recorder.emit(
                        PhaseKind.STAGE,
                        "stage:cartesian",
                        worker=worker,
                        records_in=len(left_partition) + len(right_partition),
                        bytes_in=_partition_bytes(left_partition)
                        + _partition_bytes(right_partition),
                        records_out=len(result),
                        bytes_out=_partition_bytes(result),
                    )
                    return result

                output.append(
                    self._run_task(trace, "stage:cartesian", index, body)
                )
                index += 1
        return output
