"""Hive: compiles logical SQL plans into chains of MapReduce jobs.

"Hive operations are interpreted in Hadoop jobs" (Section III-A).  Each
logical operator lowers to the canonical Hadoop idiom:

* Project / Filter / Union → map-only jobs;
* OrderBy → map emits (sort key, row), one reducer merges to total order;
* Aggregate → map emits (group key, partial state), combiner merges
  partials map-side, reducer finalises;
* Join → both sides are tagged by map-only jobs, then a reduce-side join
  over ``MultipleInputs`` products matching groups;
* CrossProduct → a map-side replicated (broadcast) join;
* Difference → tagged reduce-side anti-join with DISTINCT semantics.

Intermediates are materialised in HDFS between jobs, exactly the
disk-roundtrip behaviour that distinguishes the Hadoop stack family.
"""

from __future__ import annotations

import itertools

from repro.errors import StackExecutionError
from repro.stacks.base import ExecutionTrace, StackInfo
from repro.stacks.hadoop import HadoopStack
from repro.stacks.mapreduce import MapReduceJob
from repro.stacks.sql.aggregates import finalize_state, init_state, merge_states, update_state
from repro.stacks.sql.plan import (
    Aggregate,
    CrossProduct,
    Difference,
    Filter,
    Join,
    OrderBy,
    PlanNode,
    Project,
    Scan,
    Union,
    output_schema,
)
from repro.stacks.sql.schema import Relation, Schema

__all__ = ["HIVE_0_9_0", "HiveStack"]

_MB = 1 << 20

#: Hive 0.9.0 over Hadoop 1.0.2 — the Hadoop-family stack of Table I.
HIVE_0_9_0 = StackInfo(
    name="hive",
    source_bytes=67 * _MB + 8 * _MB,  # Hadoop core plus the Hive jars
    hot_code_bytes=int(2.8 * _MB),
    tasks_share_process=False,
    jvm_uops_factor=1.5,
    kernel_io_weight=1.25,
)


class HiveStack:
    """SQL front end over a :class:`HadoopStack`."""

    info = HIVE_0_9_0

    def __init__(self, hadoop: HadoopStack | None = None) -> None:
        self.hadoop = hadoop or HadoopStack()
        self._schemas: dict[str, Schema] = {}
        self._temp = itertools.count(1)

    def new_trace(self, workload: str) -> ExecutionTrace:
        return ExecutionTrace(self.info, workload)

    def create_table(self, relation: Relation) -> None:
        """Register ``relation`` in the warehouse (stored in HDFS).

        Raises:
            StackExecutionError: If the table already exists.
        """
        if relation.name in self._schemas:
            raise StackExecutionError(f"table already exists: {relation.name}")
        self.hadoop.hdfs.put(self._table_path(relation.name), list(relation.rows))
        self._schemas[relation.name] = relation.schema

    def run_query(self, plan: PlanNode, trace: ExecutionTrace) -> Relation:
        """Compile ``plan`` to MapReduce jobs, run them, return the result."""
        schema, path = self._compile(plan, trace)
        rows = [tuple(row) for row in self.hadoop.hdfs.read(path)]
        return Relation(name="hive-result", schema=schema, rows=rows)

    # ------------------------------------------------------------------

    def _table_path(self, table: str) -> str:
        return f"/warehouse/{table}"

    def _next_path(self) -> str:
        return f"/tmp/hive/stage-{next(self._temp)}"

    def _run(
        self,
        job: MapReduceJob,
        input_path: str | list[str],
        trace: ExecutionTrace,
    ) -> str:
        out = self._next_path()
        self.hadoop.engine.run_job(job, input_path, trace, output_path=out)
        return out

    def _compile(self, node: PlanNode, trace: ExecutionTrace) -> tuple[Schema, str]:
        """Lower ``node``; returns (schema, HDFS path of materialised rows)."""
        if isinstance(node, Scan):
            if node.table not in self._schemas:
                raise StackExecutionError(f"unknown table {node.table!r}")
            return self._schemas[node.table], self._table_path(node.table)

        if isinstance(node, Project):
            schema, path = self._compile(node.child, trace)
            out_schema = schema.project(node.columns)
            indices = [schema.index(c) for c in node.columns]
            job = MapReduceJob(
                name="project",
                mapper=lambda row, idx=tuple(indices): [tuple(row[i] for i in idx)],
            )
            return out_schema, self._run(job, path, trace)

        if isinstance(node, Filter):
            schema, path = self._compile(node.child, trace)
            predicates = [c.compile(schema) for c in node.conditions]
            job = MapReduceJob(
                name="filter",
                mapper=lambda row, ps=tuple(predicates): (
                    [row] if all(p(row) for p in ps) else []
                ),
            )
            return schema, self._run(job, path, trace)

        if isinstance(node, Union):
            left_schema, left_path = self._compile(node.left, trace)
            right_schema, right_path = self._compile(node.right, trace)
            if left_schema != right_schema:
                raise StackExecutionError("Union inputs must have identical schemas")
            job = MapReduceJob(name="union", mapper=lambda row: [row])
            return left_schema, self._run(job, [left_path, right_path], trace)

        if isinstance(node, OrderBy):
            schema, path = self._compile(node.child, trace)
            indices = [schema.index(k) for k in node.keys]
            job = MapReduceJob(
                name="orderby",
                mapper=lambda row, idx=tuple(indices): [
                    (tuple(row[i] for i in idx), row)
                ],
                reducer=lambda _key, rows: list(rows),
                num_reducers=1,  # Hive's ORDER BY funnels into one reducer
            )
            out = self._run(job, path, trace)
            if node.descending:
                rows = self.hadoop.hdfs.read(out)
                reversed_path = self._next_path()
                self.hadoop.hdfs.put(reversed_path, list(reversed(rows)))
                out = reversed_path
            return schema, out

        if isinstance(node, Aggregate):
            schema, path = self._compile(node.child, trace)
            group_idx = tuple(schema.index(c) for c in node.group_by)
            agg_idx = tuple(
                schema.index(a.column) if a.column is not None else -1
                for a in node.aggregates
            )
            funcs = tuple(a.func for a in node.aggregates)

            def mapper(row, gi=group_idx, ai=agg_idx, fs=funcs):
                key = tuple(row[i] for i in gi)
                states = tuple(
                    update_state(f, init_state(f), row[i] if i >= 0 else None)
                    for f, i in zip(fs, ai)
                )
                return [(key, states)]

            def combine(key, state_list, fs=funcs):
                merged = list(state_list[0])
                for states in state_list[1:]:
                    merged = [merge_states(f, m, s) for f, m, s in zip(fs, merged, states)]
                return [(key, tuple(merged))]

            def reducer(key, state_list, fs=funcs):
                merged = list(state_list[0])
                for states in state_list[1:]:
                    merged = [merge_states(f, m, s) for f, m, s in zip(fs, merged, states)]
                return [key + tuple(finalize_state(f, m) for f, m in zip(fs, merged))]

            out_schema = Schema(
                tuple(node.group_by) + tuple(a.alias for a in node.aggregates)
            )
            job = MapReduceJob(
                name="aggregate", mapper=mapper, reducer=reducer, combiner=combine
            )
            return out_schema, self._run(job, path, trace)

        if isinstance(node, Join):
            left_schema, left_path = self._compile(node.left, trace)
            right_schema, right_path = self._compile(node.right, trace)
            li = left_schema.index(node.left_key)
            ri = right_schema.index(node.right_key)
            tagged_left = self._run(
                MapReduceJob(name="tag-left", mapper=lambda row: [("L", row)]),
                left_path,
                trace,
            )
            tagged_right = self._run(
                MapReduceJob(name="tag-right", mapper=lambda row: [("R", row)]),
                right_path,
                trace,
            )

            def join_mapper(tagged, li=li, ri=ri):
                tag, row = tagged
                key = row[li] if tag == "L" else row[ri]
                return [(key, (tag, row))]

            def join_reducer(_key, tagged_rows):
                lefts = [row for tag, row in tagged_rows if tag == "L"]
                rights = [row for tag, row in tagged_rows if tag == "R"]
                return [l + r for l in lefts for r in rights]

            job = MapReduceJob(name="join", mapper=join_mapper, reducer=join_reducer)
            out_schema = left_schema.concat(right_schema)
            return out_schema, self._run(job, [tagged_left, tagged_right], trace)

        if isinstance(node, CrossProduct):
            left_schema, left_path = self._compile(node.left, trace)
            right_schema, right_path = self._compile(node.right, trace)
            # Map-side replicated join: every map task holds the full
            # right side (Hive's broadcast/map join for non-equi products).
            broadcast = [tuple(r) for r in self.hadoop.hdfs.read(right_path)]
            job = MapReduceJob(
                name="crossproduct",
                mapper=lambda row, rep=tuple(broadcast): [row + r for r in rep],
            )
            return left_schema.concat(right_schema), self._run(job, left_path, trace)

        if isinstance(node, Difference):
            left_schema, left_path = self._compile(node.left, trace)
            right_schema, right_path = self._compile(node.right, trace)
            if left_schema != right_schema:
                raise StackExecutionError("Difference inputs must have identical schemas")
            tagged_left = self._run(
                MapReduceJob(name="tag-left", mapper=lambda row: [("L", row)]),
                left_path,
                trace,
            )
            tagged_right = self._run(
                MapReduceJob(name="tag-right", mapper=lambda row: [("R", row)]),
                right_path,
                trace,
            )

            def diff_mapper(tagged):
                tag, row = tagged
                return [(tuple(row), tag)]

            def diff_reducer(key, tags):
                return [key] if "R" not in tags else []

            job = MapReduceJob(name="difference", mapper=diff_mapper, reducer=diff_reducer)
            return left_schema, self._run(job, [tagged_left, tagged_right], trace)

        raise StackExecutionError(f"Hive cannot compile node: {type(node).__name__}")
