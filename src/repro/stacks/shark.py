"""Shark: compiles logical SQL plans into RDD lineages.

"Shark operations are interpreted in Spark jobs" (Section III-A).  Base
tables are cached in executor memory on first use (Shark's in-memory
columnar tables), so repeated queries scan shared heap data instead of
HDFS — the behaviour behind the Spark family's larger data footprints
and inter-core sharing.
"""

from __future__ import annotations

from repro.errors import StackExecutionError
from repro.stacks.base import ExecutionTrace, StackInfo
from repro.stacks.hdfs import Hdfs
from repro.stacks.rdd import RDD
from repro.stacks.spark import SparkEngine
from repro.stacks.sql.aggregates import finalize_state, init_state, merge_states, update_state
from repro.stacks.sql.plan import (
    Aggregate,
    CrossProduct,
    Difference,
    Filter,
    Join,
    OrderBy,
    PlanNode,
    Project,
    Scan,
    Union,
    output_schema,
)
from repro.stacks.sql.schema import Relation, Schema

__all__ = ["SHARK_0_8_0", "SharkStack"]

_MB = 1 << 20

#: Shark 0.8.0 over Spark 0.8.1 — the Spark-family stack of Table I.
SHARK_0_8_0 = StackInfo(
    name="shark",
    source_bytes=11 * _MB + 3 * _MB,  # Spark core plus the Shark layer
    hot_code_bytes=int(1.4 * _MB),
    tasks_share_process=True,
    jvm_uops_factor=1.32,
    kernel_io_weight=0.45,
)


class SharkStack:
    """SQL front end over a :class:`SparkEngine` with in-memory tables."""

    info = SHARK_0_8_0

    def __init__(self, engine: SparkEngine | None = None, hdfs: Hdfs | None = None) -> None:
        self.engine = engine or SparkEngine()
        self.hdfs = hdfs or Hdfs()
        self._schemas: dict[str, Schema] = {}
        self._table_rdds: dict[str, RDD] = {}

    def new_trace(self, workload: str) -> ExecutionTrace:
        return ExecutionTrace(self.info, workload)

    def create_table(self, relation: Relation) -> None:
        """Register ``relation``; rows land in HDFS, the RDD is cached.

        Raises:
            StackExecutionError: If the table already exists.
        """
        if relation.name in self._schemas:
            raise StackExecutionError(f"table already exists: {relation.name}")
        path = f"/warehouse/{relation.name}"
        self.hdfs.put(path, list(relation.rows))
        self._schemas[relation.name] = relation.schema
        self._table_rdds[relation.name] = self.engine.from_hdfs(self.hdfs, path).cache()

    def run_query(self, plan: PlanNode, trace: ExecutionTrace) -> Relation:
        """Compile ``plan`` to an RDD lineage, run it, return the result."""
        schema, rdd = self._compile(plan)
        rows = [tuple(row) for row in rdd.collect(trace)]
        return Relation(name="shark-result", schema=schema, rows=rows)

    # ------------------------------------------------------------------

    def _compile(self, node: PlanNode) -> tuple[Schema, RDD]:
        if isinstance(node, Scan):
            if node.table not in self._schemas:
                raise StackExecutionError(f"unknown table {node.table!r}")
            return self._schemas[node.table], self._table_rdds[node.table]

        if isinstance(node, Project):
            schema, rdd = self._compile(node.child)
            out_schema = schema.project(node.columns)
            indices = tuple(schema.index(c) for c in node.columns)
            return out_schema, rdd.map(lambda row, idx=indices: tuple(row[i] for i in idx))

        if isinstance(node, Filter):
            schema, rdd = self._compile(node.child)
            predicates = tuple(c.compile(schema) for c in node.conditions)
            return schema, rdd.filter(lambda row, ps=predicates: all(p(row) for p in ps))

        if isinstance(node, Union):
            left_schema, left = self._compile(node.left)
            right_schema, right = self._compile(node.right)
            if left_schema != right_schema:
                raise StackExecutionError("Union inputs must have identical schemas")
            return left_schema, left.union(right)

        if isinstance(node, OrderBy):
            schema, rdd = self._compile(node.child)
            indices = tuple(schema.index(k) for k in node.keys)
            sorted_rdd = rdd.sort_by(lambda row, idx=indices: tuple(row[i] for i in idx))
            if node.descending:
                # Range partitions are ascending; a descending total order
                # is produced by reversing the collected output, which the
                # driver does cheaply.  Model it as a map-level no-op here
                # and let ``run_query`` keep partition order.
                return schema, _ReversedRDD(sorted_rdd)
            return schema, sorted_rdd

        if isinstance(node, Aggregate):
            schema, rdd = self._compile(node.child)
            group_idx = tuple(schema.index(c) for c in node.group_by)
            agg_idx = tuple(
                schema.index(a.column) if a.column is not None else -1
                for a in node.aggregates
            )
            funcs = tuple(a.func for a in node.aggregates)

            def to_partial(row, gi=group_idx, ai=agg_idx, fs=funcs):
                key = tuple(row[i] for i in gi)
                states = tuple(
                    update_state(f, init_state(f), row[i] if i >= 0 else None)
                    for f, i in zip(fs, ai)
                )
                return (key, states)

            def merge(a, b, fs=funcs):
                return tuple(merge_states(f, x, y) for f, x, y in zip(fs, a, b))

            def finalize(kv, fs=funcs):
                key, states = kv
                return key + tuple(finalize_state(f, s) for f, s in zip(fs, states))

            out_schema = Schema(
                tuple(node.group_by) + tuple(a.alias for a in node.aggregates)
            )
            return out_schema, rdd.map(to_partial).reduce_by_key(merge).map(finalize)

        if isinstance(node, Join):
            left_schema, left = self._compile(node.left)
            right_schema, right = self._compile(node.right)
            li = left_schema.index(node.left_key)
            ri = right_schema.index(node.right_key)
            pairs = (
                left.map(lambda row, i=li: (row[i], row))
                .join(right.map(lambda row, i=ri: (row[i], row)))
                .map(lambda kv: kv[1][0] + kv[1][1])
            )
            return left_schema.concat(right_schema), pairs

        if isinstance(node, CrossProduct):
            left_schema, left = self._compile(node.left)
            right_schema, right = self._compile(node.right)
            product = left.cartesian(right).map(lambda ab: ab[0] + ab[1])
            return left_schema.concat(right_schema), product

        if isinstance(node, Difference):
            left_schema, left = self._compile(node.left)
            right_schema, right = self._compile(node.right)
            if left_schema != right_schema:
                raise StackExecutionError("Difference inputs must have identical schemas")
            return left_schema, left.subtract(right)

        raise StackExecutionError(f"Shark cannot compile node: {type(node).__name__}")


class _ReversedRDD(RDD):
    """Reverses the global order of a sorted parent (driver-side cheap)."""

    def __init__(self, parent: RDD) -> None:
        super().__init__(parent.engine, parent.num_partitions)
        self._parent = parent

    def compute_partitions(self, trace: ExecutionTrace) -> list[list]:
        parents = self.engine.compute(self._parent, trace)
        return [list(reversed(p)) for p in reversed(parents)]
