"""Logical query plans for the ten interactive-analytics workloads.

A tiny relational algebra covering exactly what Table I needs:
projection, filtering (selection), ordering, cross product, inner join,
union (ALL), set difference, and grouped aggregation.  Plans are built as
immutable trees; the interpreter (:mod:`repro.stacks.sql.interpreter`)
gives reference semantics, and the Hive / Shark compilers lower the same
trees onto MapReduce jobs / RDD lineages.
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass

from repro.errors import StackExecutionError
from repro.stacks.sql.schema import Schema

__all__ = [
    "CompareOp",
    "Comparison",
    "AggFunc",
    "AggSpec",
    "PlanNode",
    "Scan",
    "Project",
    "Filter",
    "OrderBy",
    "CrossProduct",
    "Join",
    "Union",
    "Difference",
    "Aggregate",
    "output_schema",
]


class CompareOp(enum.Enum):
    """Comparison operators usable in WHERE conditions."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def fn(self):
        return {
            CompareOp.EQ: operator.eq,
            CompareOp.NE: operator.ne,
            CompareOp.LT: operator.lt,
            CompareOp.LE: operator.le,
            CompareOp.GT: operator.gt,
            CompareOp.GE: operator.ge,
        }[self]


@dataclass(frozen=True)
class Comparison:
    """``column <op> literal``."""

    column: str
    op: CompareOp
    value: object

    def compile(self, schema: Schema):
        """A fast ``row -> bool`` closure bound to the column index."""
        index = schema.index(self.column)
        fn = self.op.fn
        value = self.value
        return lambda row: fn(row[index], value)


class AggFunc(enum.Enum):
    """Aggregate functions."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class AggSpec:
    """One aggregate column: ``func(column) AS alias``."""

    func: AggFunc
    column: str | None  # None only for COUNT(*)
    alias: str

    def __post_init__(self) -> None:
        if self.column is None and self.func is not AggFunc.COUNT:
            raise StackExecutionError(f"{self.func.value} requires a column")


class PlanNode:
    """Base class of all logical operators."""


@dataclass(frozen=True)
class Scan(PlanNode):
    """Read a base relation by name."""

    table: str


@dataclass(frozen=True)
class Project(PlanNode):
    """Projection onto a column subset."""

    child: PlanNode
    columns: tuple[str, ...]


@dataclass(frozen=True)
class Filter(PlanNode):
    """Selection by a conjunction of comparisons."""

    child: PlanNode
    conditions: tuple[Comparison, ...]


@dataclass(frozen=True)
class OrderBy(PlanNode):
    """Total ordering on one or more columns."""

    child: PlanNode
    keys: tuple[str, ...]
    descending: bool = False


@dataclass(frozen=True)
class CrossProduct(PlanNode):
    """Cartesian product of two inputs."""

    left: PlanNode
    right: PlanNode


@dataclass(frozen=True)
class Join(PlanNode):
    """Inner equi-join on one column per side."""

    left: PlanNode
    right: PlanNode
    left_key: str
    right_key: str


@dataclass(frozen=True)
class Union(PlanNode):
    """UNION ALL of two same-schema inputs.

    BigDataBench's Union keeps duplicates (which is why the paper's
    Observation 4 finds it clustering with Filter: both are cheap
    record-passing operators).
    """

    left: PlanNode
    right: PlanNode


@dataclass(frozen=True)
class Difference(PlanNode):
    """Set difference (EXCEPT) of two same-schema inputs."""

    left: PlanNode
    right: PlanNode


@dataclass(frozen=True)
class Aggregate(PlanNode):
    """Grouped aggregation."""

    child: PlanNode
    group_by: tuple[str, ...]
    aggregates: tuple[AggSpec, ...]

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise StackExecutionError("Aggregate needs at least one aggregate column")


def output_schema(node: PlanNode, tables: dict[str, Schema]) -> Schema:
    """The schema a plan node produces, given base-table schemas.

    Raises:
        StackExecutionError: On unknown tables/columns or schema
            mismatches (Union/Difference inputs must match).
    """
    if isinstance(node, Scan):
        if node.table not in tables:
            raise StackExecutionError(f"unknown table {node.table!r}")
        return tables[node.table]
    if isinstance(node, Project):
        return output_schema(node.child, tables).project(node.columns)
    if isinstance(node, Filter):
        schema = output_schema(node.child, tables)
        for condition in node.conditions:
            schema.index(condition.column)
        return schema
    if isinstance(node, OrderBy):
        schema = output_schema(node.child, tables)
        for key in node.keys:
            schema.index(key)
        return schema
    if isinstance(node, (CrossProduct, Join)):
        left = output_schema(node.left, tables)
        right = output_schema(node.right, tables)
        if isinstance(node, Join):
            left.index(node.left_key)
            right.index(node.right_key)
        return left.concat(right)
    if isinstance(node, (Union, Difference)):
        left = output_schema(node.left, tables)
        right = output_schema(node.right, tables)
        if left != right:
            raise StackExecutionError(
                f"{type(node).__name__} inputs must have identical schemas: "
                f"{left.columns} vs {right.columns}"
            )
        return left
    if isinstance(node, Aggregate):
        child = output_schema(node.child, tables)
        for column in node.group_by:
            child.index(column)
        for agg in node.aggregates:
            if agg.column is not None:
                child.index(agg.column)
        return Schema(tuple(node.group_by) + tuple(a.alias for a in node.aggregates))
    raise StackExecutionError(f"unknown plan node type: {type(node).__name__}")
