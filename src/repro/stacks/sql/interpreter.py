"""Reference in-memory executor for logical plans.

This is the semantic ground truth: tests assert that the Hive and Shark
lowerings produce exactly the same multiset of rows (modulo ordering for
unordered operators) as this interpreter.
"""

from __future__ import annotations

from repro.errors import StackExecutionError
from repro.stacks.sql.aggregates import finalize_state, init_state, update_state
from repro.stacks.sql.plan import (
    Aggregate,
    CrossProduct,
    Difference,
    Filter,
    Join,
    OrderBy,
    PlanNode,
    Project,
    Scan,
    Union,
    output_schema,
)
from repro.stacks.sql.schema import Relation, Schema

__all__ = ["execute"]


def execute(node: PlanNode, tables: dict[str, Relation]) -> Relation:
    """Evaluate ``node`` against base ``tables``; returns a Relation.

    Raises:
        StackExecutionError: On unknown tables, columns, or node types.
    """
    schemas = {name: rel.schema for name, rel in tables.items()}
    schema = output_schema(node, schemas)
    rows = _rows(node, tables)
    return Relation(name=f"result:{type(node).__name__}", schema=schema, rows=rows)


def _rows(node: PlanNode, tables: dict[str, Relation]) -> list[tuple]:
    schemas = {name: rel.schema for name, rel in tables.items()}

    if isinstance(node, Scan):
        if node.table not in tables:
            raise StackExecutionError(f"unknown table {node.table!r}")
        return list(tables[node.table].rows)

    if isinstance(node, Project):
        child_schema = output_schema(node.child, schemas)
        indices = [child_schema.index(c) for c in node.columns]
        return [tuple(row[i] for i in indices) for row in _rows(node.child, tables)]

    if isinstance(node, Filter):
        child_schema = output_schema(node.child, schemas)
        predicates = [c.compile(child_schema) for c in node.conditions]
        return [
            row
            for row in _rows(node.child, tables)
            if all(p(row) for p in predicates)
        ]

    if isinstance(node, OrderBy):
        child_schema = output_schema(node.child, schemas)
        indices = [child_schema.index(k) for k in node.keys]
        return sorted(
            _rows(node.child, tables),
            key=lambda row: tuple(row[i] for i in indices),
            reverse=node.descending,
        )

    if isinstance(node, CrossProduct):
        left = _rows(node.left, tables)
        right = _rows(node.right, tables)
        return [l + r for l in left for r in right]

    if isinstance(node, Join):
        left_schema = output_schema(node.left, schemas)
        right_schema = output_schema(node.right, schemas)
        li = left_schema.index(node.left_key)
        ri = right_schema.index(node.right_key)
        index: dict = {}
        for row in _rows(node.right, tables):
            index.setdefault(row[ri], []).append(row)
        return [
            l + r
            for l in _rows(node.left, tables)
            for r in index.get(l[li], ())
        ]

    if isinstance(node, Union):
        return _rows(node.left, tables) + _rows(node.right, tables)

    if isinstance(node, Difference):
        right = set(_rows(node.right, tables))
        seen: set = set()
        result = []
        for row in _rows(node.left, tables):
            if row not in right and row not in seen:
                seen.add(row)
                result.append(row)
        return result

    if isinstance(node, Aggregate):
        child_schema = output_schema(node.child, schemas)
        group_indices = [child_schema.index(c) for c in node.group_by]
        agg_indices = [
            child_schema.index(a.column) if a.column is not None else None
            for a in node.aggregates
        ]
        groups: dict[tuple, list] = {}
        for row in _rows(node.child, tables):
            key = tuple(row[i] for i in group_indices)
            state = groups.get(key)
            if state is None:
                state = [init_state(a.func) for a in node.aggregates]
                groups[key] = state
            for pos, agg in enumerate(node.aggregates):
                value = row[agg_indices[pos]] if agg_indices[pos] is not None else None
                state[pos] = update_state(agg.func, state[pos], value)
        return [
            key + tuple(
                finalize_state(agg.func, state[pos])
                for pos, agg in enumerate(node.aggregates)
            )
            for key, state in groups.items()
        ]

    raise StackExecutionError(f"unknown plan node type: {type(node).__name__}")
