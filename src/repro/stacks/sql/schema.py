"""Relational schema and table representation for the SQL workloads.

Rows are plain tuples; a :class:`Schema` maps column names to positions.
Keeping rows as tuples (hashable, comparable) lets the same relation flow
through the in-memory interpreter, the Hive→MapReduce compiler and the
Shark→RDD compiler without conversion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StackExecutionError

__all__ = ["Schema", "Relation"]


@dataclass(frozen=True)
class Schema:
    """An ordered set of column names."""

    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise StackExecutionError("a schema needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise StackExecutionError(f"duplicate column names: {self.columns}")

    def index(self, name: str) -> int:
        """Position of column ``name``.

        Raises:
            StackExecutionError: If the column does not exist.
        """
        try:
            return self.columns.index(name)
        except ValueError:
            raise StackExecutionError(
                f"unknown column {name!r}; schema has {self.columns}"
            ) from None

    def project(self, names: tuple[str, ...]) -> "Schema":
        """Schema of a projection onto ``names`` (validates existence)."""
        for name in names:
            self.index(name)
        return Schema(tuple(names))

    def concat(self, other: "Schema", prefix_left: str = "l_", prefix_right: str = "r_") -> "Schema":
        """Schema of a join/cross product; collisions get side prefixes."""
        left = list(self.columns)
        right = []
        for name in other.columns:
            if name in left:
                right.append(prefix_right + name)
            else:
                right.append(name)
        renamed_left = [
            prefix_left + name if name in other.columns else name for name in left
        ]
        return Schema(tuple(renamed_left + right))

    def __len__(self) -> int:
        return len(self.columns)


@dataclass
class Relation:
    """A named table: a schema plus tuple rows.

    Raises:
        StackExecutionError: If any row's arity mismatches the schema.
    """

    name: str
    schema: Schema
    rows: list[tuple]

    def __post_init__(self) -> None:
        width = len(self.schema)
        for row in self.rows:
            if len(row) != width:
                raise StackExecutionError(
                    f"relation {self.name!r}: row arity {len(row)} != schema "
                    f"width {width}"
                )

    def __len__(self) -> int:
        return len(self.rows)
