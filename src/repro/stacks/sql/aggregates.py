"""Partial-aggregation state machines shared by all three SQL executors.

Grouped aggregation decomposes into init / update / merge / finalize so
that the Hive compiler can run combiners (partial aggregates on the map
side) and the Shark compiler can reduceByKey over partial states, while
the in-memory interpreter uses the same code for reference semantics.
"""

from __future__ import annotations

from repro.errors import StackExecutionError
from repro.stacks.sql.plan import AggFunc

__all__ = ["init_state", "update_state", "merge_states", "finalize_state"]


def init_state(func: AggFunc):
    """Identity element of ``func``'s partial state."""
    if func is AggFunc.COUNT:
        return 0
    if func is AggFunc.SUM:
        return 0
    if func is AggFunc.AVG:
        return (0.0, 0)
    if func in (AggFunc.MIN, AggFunc.MAX):
        return None
    raise StackExecutionError(f"unknown aggregate function: {func}")


def update_state(func: AggFunc, state, value):
    """Fold one input ``value`` into ``state``."""
    if func is AggFunc.COUNT:
        return state + 1
    if func is AggFunc.SUM:
        return state + value
    if func is AggFunc.AVG:
        total, count = state
        return (total + value, count + 1)
    if func is AggFunc.MIN:
        return value if state is None else min(state, value)
    if func is AggFunc.MAX:
        return value if state is None else max(state, value)
    raise StackExecutionError(f"unknown aggregate function: {func}")


def merge_states(func: AggFunc, left, right):
    """Combine two partial states (combiner / reduceByKey step)."""
    if func in (AggFunc.COUNT, AggFunc.SUM):
        return left + right
    if func is AggFunc.AVG:
        return (left[0] + right[0], left[1] + right[1])
    if func is AggFunc.MIN:
        if left is None:
            return right
        return left if right is None else min(left, right)
    if func is AggFunc.MAX:
        if left is None:
            return right
        return left if right is None else max(left, right)
    raise StackExecutionError(f"unknown aggregate function: {func}")


def finalize_state(func: AggFunc, state):
    """Produce the output value from a final state."""
    if func is AggFunc.AVG:
        total, count = state
        return total / count if count else 0.0
    return state
