"""Relational algebra: schema, plans, parser, reference interpreter."""

from repro.stacks.sql.interpreter import execute
from repro.stacks.sql.parser import parse_query
from repro.stacks.sql.plan import (
    AggFunc,
    Aggregate,
    AggSpec,
    CompareOp,
    Comparison,
    CrossProduct,
    Difference,
    Filter,
    Join,
    OrderBy,
    PlanNode,
    Project,
    Scan,
    Union,
    output_schema,
)
from repro.stacks.sql.schema import Relation, Schema

__all__ = [
    "execute",
    "parse_query",
    "AggFunc",
    "Aggregate",
    "AggSpec",
    "CompareOp",
    "Comparison",
    "CrossProduct",
    "Difference",
    "Filter",
    "Join",
    "OrderBy",
    "PlanNode",
    "Project",
    "Scan",
    "Union",
    "output_schema",
    "Relation",
    "Schema",
]
