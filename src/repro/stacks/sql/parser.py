"""A small SQL front-end for the Hive/Shark stacks.

Covers exactly the query shapes the ten Table I interactive-analytics
workloads use (and their obvious compositions)::

    SELECT a, b FROM t
    SELECT * FROM t WHERE price > 10 AND category = 'books'
    SELECT category, AVG(price) AS avg_price FROM t GROUP BY category
    SELECT * FROM t ORDER BY price DESC
    SELECT * FROM a JOIN b ON a_col = b_col
    SELECT * FROM a CROSS JOIN b
    SELECT * FROM a UNION ALL SELECT * FROM b
    SELECT * FROM a EXCEPT SELECT * FROM b

Grammar (informal)::

    query      := select [ (UNION ALL | EXCEPT) select ]
    select     := SELECT items FROM source [WHERE conds]
                  [GROUP BY cols] [ORDER BY cols [DESC]]
    items      := '*' | item (',' item)*
    item       := column | FUNC '(' (column | '*') ')' [AS alias]
    source     := table [ (JOIN table ON col '=' col) | (CROSS JOIN table) ]
    conds      := cond (AND cond)*
    cond       := column op literal      (op in = != <> < <= > >=)

The parser produces :mod:`repro.stacks.sql.plan` trees, so parsed queries
run identically on the interpreter, Hive, and Shark.
"""

from __future__ import annotations

import re

from repro.errors import StackExecutionError
from repro.stacks.sql.plan import (
    AggFunc,
    Aggregate,
    AggSpec,
    CompareOp,
    Comparison,
    CrossProduct,
    Difference,
    Filter,
    Join,
    OrderBy,
    PlanNode,
    Project,
    Scan,
    Union,
)

__all__ = ["parse_query"]

_TOKEN_RE = re.compile(
    r"""
    \s*(
        '[^']*'            # string literal
      | <> | != | <= | >= | = | < | >
      | \( | \) | , | \*
      | [A-Za-z_][A-Za-z_0-9.]*
      | -?\d+\.\d+ | -?\d+
    )
    """,
    re.VERBOSE,
)

_AGG_FUNCS = {f.value.upper(): f for f in AggFunc}

_OPS = {
    "=": CompareOp.EQ,
    "!=": CompareOp.NE,
    "<>": CompareOp.NE,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise StackExecutionError(f"cannot tokenize SQL near: {remainder[:30]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> str | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _peek_upper(self) -> str | None:
        token = self._peek()
        return token.upper() if token is not None else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise StackExecutionError("unexpected end of SQL")
        self._position += 1
        return token

    def _expect(self, keyword: str) -> None:
        token = self._next()
        if token.upper() != keyword:
            raise StackExecutionError(f"expected {keyword}, got {token!r}")

    def _accept(self, keyword: str) -> bool:
        if self._peek_upper() == keyword:
            self._position += 1
            return True
        return False

    # -- grammar ------------------------------------------------------------

    def parse(self) -> PlanNode:
        left = self._select()
        if self._accept("UNION"):
            self._expect("ALL")
            right = self._select()
            node: PlanNode = Union(left, right)
        elif self._accept("EXCEPT"):
            right = self._select()
            node = Difference(left, right)
        else:
            node = left
        if self._peek() is not None:
            raise StackExecutionError(f"trailing tokens after query: {self._peek()!r}")
        return node

    def _select(self) -> PlanNode:
        self._expect("SELECT")
        star, columns, aggregates = self._select_items()
        self._expect("FROM")
        node = self._source()
        if self._accept("WHERE"):
            node = Filter(node, self._conditions())

        group_by: tuple[str, ...] = ()
        if self._accept("GROUP"):
            self._expect("BY")
            group_by = self._column_list()

        if aggregates:
            node = Aggregate(node, group_by, tuple(aggregates))
        elif group_by:
            raise StackExecutionError("GROUP BY requires aggregate functions")
        elif not star:
            node = Project(node, tuple(columns))

        if self._accept("ORDER"):
            self._expect("BY")
            keys = self._column_list()
            descending = self._accept("DESC")
            if not descending:
                self._accept("ASC")
            node = OrderBy(node, keys, descending=descending)
        return node

    def _select_items(self) -> tuple[bool, list[str], list[AggSpec]]:
        if self._accept("*"):
            return True, [], []
        columns: list[str] = []
        aggregates: list[AggSpec] = []
        while True:
            token = self._next()
            upper = token.upper()
            if upper in _AGG_FUNCS and self._peek() == "(":
                self._next()  # (
                argument = self._next()
                self._expect(")")
                column = None if argument == "*" else argument
                alias = f"{upper.lower()}_{column or 'all'}"
                if self._accept("AS"):
                    alias = self._next()
                aggregates.append(AggSpec(_AGG_FUNCS[upper], column, alias))
            else:
                columns.append(token)
            if not self._accept(","):
                break
        if columns and aggregates:
            # Plain columns next to aggregates are the GROUP BY keys; the
            # Aggregate node re-adds them, so they must match GROUP BY.
            return False, columns, aggregates
        return False, columns, aggregates

    def _source(self) -> PlanNode:
        left: PlanNode = Scan(self._next())
        if self._accept("CROSS"):
            self._expect("JOIN")
            right = Scan(self._next())
            return CrossProduct(left, right)
        if self._accept("JOIN"):
            right = Scan(self._next())
            self._expect("ON")
            left_key = self._next()
            self._expect("=")
            right_key = self._next()
            return Join(left, right, left_key, right_key)
        return left

    def _conditions(self) -> tuple[Comparison, ...]:
        conditions = [self._condition()]
        while self._accept("AND"):
            conditions.append(self._condition())
        return tuple(conditions)

    def _condition(self) -> Comparison:
        column = self._next()
        op_token = self._next()
        if op_token not in _OPS:
            raise StackExecutionError(f"unknown comparison operator {op_token!r}")
        return Comparison(column, _OPS[op_token], self._literal())

    def _literal(self):
        token = self._next()
        if token.startswith("'") and token.endswith("'"):
            return token[1:-1]
        try:
            if "." in token:
                return float(token)
            return int(token)
        except ValueError:
            raise StackExecutionError(f"bad literal {token!r}") from None

    def _column_list(self) -> tuple[str, ...]:
        columns = [self._next()]
        while self._accept(","):
            columns.append(self._next())
        return tuple(columns)


def parse_query(sql: str) -> PlanNode:
    """Parse ``sql`` into a logical plan.

    Raises:
        StackExecutionError: On any syntax the mini-grammar does not cover.
    """
    tokens = _tokenize(sql)
    if not tokens:
        raise StackExecutionError("empty SQL query")
    return _Parser(tokens).parse()
