"""The Spark software stack: engine (caching DAG executor) + identity.

Models Spark 0.8.1 as deployed on the paper's testbed.  The structural
facts encoded in :data:`SPARK_0_8_1` come from Section V-A: the whole
source folder is ~11 MB (so the framework's hot instruction footprint is
far smaller than Hadoop's), and executors run many tasks as threads of
one JVM, sharing cached RDD partitions in a single heap — which is why
Spark workloads show larger data footprints and much more inter-core data
sharing (snoop traffic) than their Hadoop counterparts.
"""

from __future__ import annotations

from repro.errors import StackExecutionError
from repro.obs.log import get_logger
from repro.obs.trace import span as obs_span
from repro.stacks.base import ExecutionTrace, PhaseKind, StackInfo, estimate_bytes
from repro.stacks.hdfs import Hdfs
from repro.stacks.rdd import RDD, SparkContextLike, _HdfsRDD, _SourceRDD

__all__ = ["SPARK_0_8_1", "SparkEngine"]

_log = get_logger("repro.stacks.spark")

_MB = 1 << 20

#: Spark 0.8.1 as characterized in the paper.
SPARK_0_8_1 = StackInfo(
    name="spark",
    source_bytes=11 * _MB,  # "Spark's whole folder is only 11 MB"
    hot_code_bytes=int(1.2 * _MB),
    tasks_share_process=True,  # executor threads share one JVM heap
    jvm_uops_factor=1.3,
    kernel_io_weight=0.45,  # in-memory intermediates, little ring 0 I/O
)


class SparkEngine(SparkContextLike):
    """The driver/executor engine: computes RDD lineages with caching.

    Args:
        num_workers: Executor slots (the paper runs four slave nodes).
        default_parallelism: Default shuffle partition count.
    """

    info = SPARK_0_8_1

    def __init__(self, num_workers: int = 4, default_parallelism: int | None = None) -> None:
        if num_workers <= 0:
            raise StackExecutionError("num_workers must be positive")
        self.num_workers = num_workers
        self.default_parallelism = default_parallelism or num_workers * 2
        self._cache: dict[int, list[list]] = {}

    # -- RDD creation -------------------------------------------------------

    def parallelize(self, data: list, num_partitions: int | None = None) -> RDD:
        """Distribute driver data into an RDD."""
        n = num_partitions or self.default_parallelism
        n = max(1, min(n, max(1, len(data))))
        size = -(-len(data) // n) if data else 1
        partitions = [data[i : i + size] for i in range(0, max(1, len(data)), size)]
        return _SourceRDD(self, partitions)

    def from_hdfs(self, hdfs: Hdfs, path: str) -> RDD:
        """An RDD with one partition per HDFS block (data locality)."""
        return _HdfsRDD(self, hdfs, path)

    # -- execution ----------------------------------------------------------

    def compute(self, rdd: RDD, trace: ExecutionTrace) -> list[list]:
        """Compute (or fetch from cache) all partitions of ``rdd``."""
        if rdd.cached and rdd.rdd_id in self._cache:
            partitions = self._cache[rdd.rdd_id]
            _log.debug(
                "rdd cache hit",
                extra={"rdd_id": rdd.rdd_id, "partitions": len(partitions)},
            )
            with obs_span(
                f"rdd:{rdd.rdd_id}:cache-scan", "rdd",
                partitions=len(partitions),
            ):
                for index, partition in enumerate(partitions):
                    trace.emit(
                        PhaseKind.CACHE_SCAN,
                        "cache-scan",
                        worker=rdd.preferred_worker(index),
                        records_in=len(partition),
                        bytes_in=sum(estimate_bytes(r) for r in partition),
                        records_out=len(partition),
                        bytes_out=sum(estimate_bytes(r) for r in partition),
                    )
            return [list(p) for p in partitions]

        with obs_span(f"rdd:{rdd.rdd_id}:compute", "rdd", cached=rdd.cached):
            partitions = rdd.compute_partitions(trace)
        if rdd.cached:
            self._cache[rdd.rdd_id] = [list(p) for p in partitions]
            for index, partition in enumerate(partitions):
                trace.emit(
                    PhaseKind.CACHE_BUILD,
                    "cache-build",
                    worker=rdd.preferred_worker(index),
                    records_in=len(partition),
                    bytes_in=sum(estimate_bytes(r) for r in partition),
                )
        return partitions

    # -- storage accounting ---------------------------------------------------

    @property
    def cached_bytes(self) -> int:
        """Total bytes currently pinned in executor memory."""
        return sum(
            estimate_bytes(record)
            for partitions in self._cache.values()
            for partition in partitions
            for record in partition
        )

    def new_trace(self, workload: str) -> ExecutionTrace:
        """A fresh execution trace tagged with this stack."""
        return ExecutionTrace(self.info, workload)

    def clear_cache(self) -> None:
        """Drop all cached partitions."""
        self._cache.clear()
