"""A miniature HDFS: replicated block storage across slave nodes.

Both stacks of the testbed read their input from HDFS.  This model keeps
the pieces that matter to workload behaviour: files are split into fixed
blocks, blocks are placed round-robin with replication across the slave
datanodes, and readers are told which node hosts each block so engines
can schedule tasks with data locality (each map task reads a local
block, as on the real cluster).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StackExecutionError
from repro.stacks.base import estimate_bytes

__all__ = ["HdfsBlock", "Hdfs"]


@dataclass(frozen=True)
class HdfsBlock:
    """One stored block.

    Attributes:
        path: Owning file path.
        index: Block index within the file.
        records: The records stored in the block.
        bytes: Estimated byte size of the block.
        primary_node: Node hosting the primary replica.
        replica_nodes: Nodes hosting the other replicas.
    """

    path: str
    index: int
    records: tuple
    bytes: int
    primary_node: int
    replica_nodes: tuple[int, ...]


class Hdfs:
    """Block store over ``num_nodes`` datanodes.

    Args:
        num_nodes: Number of slave datanodes (the paper's cluster has 4).
        block_records: Records per block (the scaled-down analogue of the
            64 MB block size).
        replication: Replica count (capped at ``num_nodes``).
    """

    def __init__(self, num_nodes: int = 4, block_records: int = 2000, replication: int = 3) -> None:
        if num_nodes <= 0:
            raise StackExecutionError("HDFS needs at least one datanode")
        if block_records <= 0:
            raise StackExecutionError("block_records must be positive")
        if replication <= 0:
            raise StackExecutionError("replication must be positive")
        self.num_nodes = num_nodes
        self.block_records = block_records
        self.replication = min(replication, num_nodes)
        self._files: dict[str, list[HdfsBlock]] = {}
        self._next_primary = 0

    def put(self, path: str, records: list) -> list[HdfsBlock]:
        """Store ``records`` under ``path``, splitting into blocks.

        Raises:
            StackExecutionError: If ``path`` already exists.
        """
        if path in self._files:
            raise StackExecutionError(f"HDFS path already exists: {path}")
        blocks: list[HdfsBlock] = []
        for index in range(0, max(1, len(records)), self.block_records):
            chunk = tuple(records[index : index + self.block_records])
            primary = self._next_primary % self.num_nodes
            self._next_primary += 1
            replicas = tuple(
                (primary + offset) % self.num_nodes
                for offset in range(1, self.replication)
            )
            blocks.append(
                HdfsBlock(
                    path=path,
                    index=len(blocks),
                    records=chunk,
                    bytes=sum(estimate_bytes(r) for r in chunk),
                    primary_node=primary,
                    replica_nodes=replicas,
                )
            )
            if not records:
                break
        self._files[path] = blocks
        return blocks

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        """Remove ``path`` (no error if absent)."""
        self._files.pop(path, None)

    def blocks(self, path: str) -> list[HdfsBlock]:
        """The block list of ``path``.

        Raises:
            StackExecutionError: If the path does not exist.
        """
        if path not in self._files:
            raise StackExecutionError(f"HDFS path not found: {path}")
        return list(self._files[path])

    def read(self, path: str) -> list:
        """All records of ``path`` in block order."""
        return [record for block in self.blocks(path) for record in block.records]

    def file_bytes(self, path: str) -> int:
        """Total stored bytes of ``path``."""
        return sum(block.bytes for block in self.blocks(path))

    def paths(self) -> list[str]:
        """All stored paths."""
        return sorted(self._files)
