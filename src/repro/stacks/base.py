"""Common abstractions shared by the software-stack engines.

Every engine (Hadoop MapReduce, Spark, Hive, Shark) *really executes* its
workload on scaled-down data, and while doing so appends
:class:`PhaseRecord` entries to an :class:`ExecutionTrace` — what was
processed, where, and how much.  The instrumentation layer
(:mod:`repro.stacks.instrument`) later converts the trace, together with
the stack's static properties (code size, threading model), into the
:class:`~repro.arch.trace.PhaseProfile` objects the microarchitecture
simulator consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import StackExecutionError
from repro.obs.metrics import REGISTRY
from repro.obs.timeline import observe_phase_record

_PHASE_RECORDS = REGISTRY.counter(
    "repro_stack_phase_records_total",
    "Phase records emitted by the stack engines, by phase kind",
    ("kind",),
)

__all__ = [
    "PhaseKind",
    "PhaseRecord",
    "ExecutionTrace",
    "StackInfo",
    "estimate_bytes",
]


class PhaseKind(enum.Enum):
    """Execution-phase categories the engines emit."""

    SETUP = "setup"  # JVM / executor startup, job submission
    MAP = "map"  # Hadoop map tasks
    SPILL = "spill"  # map-side sort + spill to local disk
    SHUFFLE = "shuffle"  # copying map output to reducers (network + disk)
    SORT_MERGE = "sort-merge"  # reduce-side merge of sorted runs
    REDUCE = "reduce"  # Hadoop reduce tasks
    OUTPUT = "output"  # writing job output to HDFS
    STAGE = "stage"  # Spark narrow-stage computation
    SHUFFLE_WRITE = "shuffle-write"  # Spark shuffle map-side write
    SHUFFLE_READ = "shuffle-read"  # Spark shuffle reduce-side fetch
    CACHE_BUILD = "cache-build"  # materialising an RDD into memory
    CACHE_SCAN = "cache-scan"  # re-reading a cached RDD partition
    DRIVER = "driver"  # driver-side work (plan compile, collect)


@dataclass(frozen=True)
class PhaseRecord:
    """One observed execution phase.

    Attributes:
        kind: Phase category.
        name: Free-form label ("map:wordcount", "stage-1", ...).
        worker: Worker slot index the phase ran on (driver phases use -1).
        records_in: Records consumed.
        bytes_in: Bytes consumed (estimated).
        records_out: Records produced.
        bytes_out: Bytes produced (estimated).
        details: Engine-specific extras (e.g. ``{"compare_ops": 12345.0}``).
        tag: Recovery provenance.  Empty for the committed execution;
            ``"failed:<kind>"`` for a fault-killed attempt and
            ``"speculative"`` for the losing attempt of a speculated
            straggler.  Tagged records document what recovery did but are
            excluded from instrumentation, so a recovered run measures
            identically to a fault-free one.
    """

    kind: PhaseKind
    name: str
    worker: int
    records_in: int
    bytes_in: int
    records_out: int
    bytes_out: int
    details: dict[str, float] = field(default_factory=dict)
    tag: str = ""


@dataclass(frozen=True)
class StackInfo:
    """Static properties of a software stack.

    These encode the structural facts the paper uses to explain its
    findings (Section V-A): Hadoop 1.0.2's main source tree is ~67 MB
    against Spark 0.8.1's ~11 MB, Hadoop tasks run in separate JVM
    processes while Spark executors run many tasks as threads of one JVM
    sharing cached RDD partitions, and so on.

    Attributes:
        name: Stack family name ("hadoop", "spark", "hive", "shark").
        source_bytes: Source-tree size of the stack release (the paper's
            proxy for framework instruction footprint).
        hot_code_bytes: Estimated hot instruction footprint during
            steady-state execution.
        tasks_share_process: Whether sibling tasks on a node share one
            address space (threads) — drives data sharing/snoop traffic.
        jvm_uops_factor: Micro-op expansion factor of framework-heavy code.
        kernel_io_weight: Relative amount of ring-0 work per byte of I/O
            (disk-materialising stacks spend more time in the kernel).
    """

    name: str
    source_bytes: int
    hot_code_bytes: int
    tasks_share_process: bool
    jvm_uops_factor: float
    kernel_io_weight: float


class ExecutionTrace:
    """Accumulates phase records for one workload run."""

    def __init__(self, stack: StackInfo, workload: str) -> None:
        self.stack = stack
        self.workload = workload
        self.records: list[PhaseRecord] = []

    def add(self, record: PhaseRecord) -> None:
        self.records.append(record)
        # Purely observational: reports the committed (or tagged) record
        # to the ambient timeline sampler, a no-op when sampling is off.
        observe_phase_record(
            record.kind.value,
            record.worker,
            record.records_out,
            record.bytes_in,
            record.bytes_out,
            record.tag,
        )

    def emit(
        self,
        kind: PhaseKind,
        name: str,
        worker: int,
        records_in: int,
        bytes_in: int,
        records_out: int = 0,
        bytes_out: int = 0,
        **details: float,
    ) -> None:
        """Convenience constructor-and-append."""
        _PHASE_RECORDS.inc(kind=kind.value)
        self.add(
            PhaseRecord(
                kind=kind,
                name=name,
                worker=worker,
                records_in=records_in,
                bytes_in=bytes_in,
                records_out=records_out,
                bytes_out=bytes_out,
                details=dict(details),
            )
        )

    def by_kind(
        self, kind: PhaseKind, committed_only: bool = False
    ) -> list[PhaseRecord]:
        """All records of one phase kind, in emission order."""
        return [
            r
            for r in self.records
            if r.kind is kind and not (committed_only and r.tag)
        ]

    @property
    def committed_records(self) -> list[PhaseRecord]:
        """Records of the committed execution (failed/speculative-loser
        attempts excluded) — what the measurement pipeline consumes."""
        return [r for r in self.records if not r.tag]

    @property
    def total_records_in(self) -> int:
        return sum(r.records_in for r in self.records)

    @property
    def total_bytes_in(self) -> int:
        return sum(r.bytes_in for r in self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionTrace({self.stack.name}/{self.workload}, "
            f"{len(self.records)} phases)"
        )


def estimate_bytes(record: object) -> int:
    """Cheap, deterministic wire-size estimate of one record.

    The engines track data volume through this instead of
    ``sys.getsizeof`` so byte counts are stable across Python versions.
    """
    if record is None:
        return 1
    if isinstance(record, bool):
        return 1
    if isinstance(record, (int, float)):
        return 8
    if isinstance(record, str):
        return len(record) + 1
    if isinstance(record, (bytes, bytearray)):
        return len(record)
    if isinstance(record, (tuple, list)):
        return 2 + sum(estimate_bytes(item) for item in record)
    if isinstance(record, dict):
        return 2 + sum(
            estimate_bytes(k) + estimate_bytes(v) for k, v in record.items()
        )
    if hasattr(record, "__dataclass_fields__"):
        return 2 + sum(
            estimate_bytes(getattr(record, name))
            for name in record.__dataclass_fields__
        )
    return 16


def stable_hash(value: object) -> int:
    """Deterministic hash for partitioning (``hash()`` is salted per run)."""
    import zlib

    return zlib.crc32(repr(value).encode("utf-8"))


def require(condition: bool, message: str) -> None:
    """Raise :class:`StackExecutionError` unless ``condition`` holds."""
    if not condition:
        raise StackExecutionError(message)
