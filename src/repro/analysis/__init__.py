"""Reproduction harness: every figure and table of the evaluation."""

from repro.analysis.observations import Observation, evaluate_observations
from repro.analysis.sensitivity import CategorySensitivity, metric_category_sensitivity
from repro.analysis.report import write_report
from repro.analysis.runtime import RuntimeEstimate, estimate_runtime
from repro.analysis.experiment import (
    FAST_CONFIG,
    Experiment,
    ExperimentConfig,
    run_experiment,
)
from repro.analysis.figures import (
    FIG5_NEGATIVE_METRICS,
    FIG5_POSITIVE_METRICS,
    Figure1,
    Figure23,
    Figure4,
    Figure5,
    Figure6,
    figure1,
    figure2_3,
    figure4,
    figure5,
    figure6,
)
from repro.analysis.tables import Table4, Table5, table4, table5

__all__ = [
    "CategorySensitivity",
    "metric_category_sensitivity",
    "Observation",
    "evaluate_observations",
    "write_report",
    "RuntimeEstimate",
    "estimate_runtime",
    "FAST_CONFIG",
    "Experiment",
    "ExperimentConfig",
    "run_experiment",
    "FIG5_NEGATIVE_METRICS",
    "FIG5_POSITIVE_METRICS",
    "Figure1",
    "Figure23",
    "Figure4",
    "Figure5",
    "Figure6",
    "figure1",
    "figure2_3",
    "figure4",
    "figure5",
    "figure6",
    "Table4",
    "Table5",
    "table4",
    "table5",
]
