"""One-call reproduction of the paper's whole evaluation.

:func:`run_experiment` characterizes the 32-workload suite on the
simulated cluster, runs the subsetting pipeline, and materialises every
figure and table.  The heavy characterization is memoised per
configuration (see :mod:`repro.cluster.collection`), so the benchmark
harness can regenerate each figure without re-running the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.figures import (
    Figure1,
    Figure23,
    Figure4,
    Figure5,
    Figure6,
    figure1,
    figure2_3,
    figure4,
    figure5,
    figure6,
)
from repro.analysis.tables import Table4, Table5, table4, table5
from repro.cluster.collection import CollectionConfig, characterize_suite
from repro.cluster.testbed import MeasurementConfig
from repro.core.subsetting import SubsettingResult, subset_workloads

__all__ = ["ExperimentConfig", "Experiment", "run_experiment", "FAST_CONFIG"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of a full reproduction run."""

    collection: CollectionConfig = CollectionConfig()
    subsetting_seed: int = 0
    cache_dir: str | None = None


#: A configuration tuned for quick regeneration (used by the benchmark
#: harness and the examples): one measured slave, smaller samples.  The
#: statistical structure is stable under these settings; only per-metric
#: variance grows slightly.
FAST_CONFIG = ExperimentConfig(
    collection=CollectionConfig(
        scale=0.5,
        seed=42,
        measurement=MeasurementConfig(
            slaves_measured=1, active_cores=3, ops_per_core=4000
        ),
    )
)


@dataclass(frozen=True)
class Experiment:
    """Everything the paper's evaluation section produces.

    Attributes:
        config: The configuration used.
        result: The subsetting pipeline output (PCA, dendrogram, BIC, ...).
        fig1..fig6, tab4, tab5: The figure/table data products.
    """

    config: ExperimentConfig
    result: SubsettingResult
    fig1: Figure1
    fig2_3: Figure23
    fig4: Figure4
    fig5: Figure5
    fig6: Figure6
    tab4: Table4
    tab5: Table5

    def render(self) -> str:
        """The full evaluation as one text report."""
        sections = [
            self.fig1.render(),
            self.fig2_3.render(),
            self.fig4.render(),
            self.fig5.render(),
            self.fig6.render(),
            self.tab4.render(),
            self.tab5.render(),
        ]
        rule = "\n" + "=" * 72 + "\n"
        return rule.join(sections)


def run_experiment(config: ExperimentConfig | None = None) -> Experiment:
    """Characterize the suite and reproduce every figure and table."""
    config = config or ExperimentConfig()
    suite = characterize_suite(
        config=config.collection, cache_dir=config.cache_dir
    )
    result = subset_workloads(suite.matrix, seed=config.subsetting_seed)
    return Experiment(
        config=config,
        result=result,
        fig1=figure1(result),
        fig2_3=figure2_3(result),
        fig4=figure4(result),
        fig5=figure5(suite.matrix),
        fig6=figure6(result),
        tab4=table4(result),
        tab5=table5(result),
    )
