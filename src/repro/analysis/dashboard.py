"""Self-contained HTML dashboard over a characterized suite.

:func:`render_dashboard` turns a metric matrix plus (optionally
timeline-carrying) characterizations into **one** HTML document with
every asset inline — inline SVG charts, inline CSS, zero scripts, zero
external references — so the page renders identically from ``repro
report --html``, from ``GET /dashboard``, and from a file opened years
later with no network.

Charts (all SVG, one measure per chart):

- **Per-workload timelines** — records committed over the run with the
  ramp-up window shaded, and the per-phase simulation windows' ILP as a
  bar strip (the paper's time-resolved protocol made visible).
- **Suite heatmap** — column z-scores of the 45-metric matrix on the
  diverging blue↔red ramp with a neutral-gray midpoint (sign = above or
  below the suite mean, exactly the normalization the clustering uses).
- **Kiviat diagrams** — Figure 6's radar polygons for the chosen
  representatives, via :mod:`repro.core.kiviat`.
- **Flamegraph** — a span-attributed icicle of a merged fleet CPU
  profile (:mod:`repro.obs.prof`), rendered as pure SVG with ``<title>``
  tooltips; :func:`render_profile_page` serves it standalone for
  ``GET /profile?format=flame`` and ``repro profile --flame``.

Colors come from the validated reference palette (categorical slot 1
blue for series, diverging blue↔red for signed z-scores) with light and
dark values swapped through CSS custom properties; values, labels and
legends wear ink tokens, never series color.  A ``<details>`` table view
of the full matrix backs every chart for non-visual access.
"""

from __future__ import annotations

import html
from collections.abc import Iterable, Sequence

import numpy as np

from repro.cluster.testbed import WorkloadCharacterization
from repro.core.dataset import WorkloadMetricMatrix
from repro.core.kiviat import KiviatDiagram
from repro.core.subsetting import SubsettingResult
from repro.metrics.catalog import METRIC_NAMES

__all__ = ["render_dashboard", "render_profile_page"]


# -- palette (reference instance; see the data-viz method) ---------------------

#: Diverging blue ↔ red with a neutral-gray midpoint, per mode.  Arm
#: endpoints are the palette's categorical blue/red steps for that mode.
_DIVERGING_LIGHT = ("#2a78d6", "#f0efec", "#e34948")
_DIVERGING_DARK = ("#3987e5", "#383835", "#e66767")

#: Quantized z-score buckets: a cell's class is ``z±N``; each bucket gets
#: a light and a dark fill so the heatmap follows the color scheme.
_Z_BUCKETS = 5  # per arm: z-5 .. z0 .. z+5


def _hex_to_rgb(value: str) -> tuple[int, int, int]:
    value = value.lstrip("#")
    return tuple(int(value[i : i + 2], 16) for i in (0, 2, 4))


def _lerp_hex(a: str, b: str, t: float) -> str:
    ra, ga, ba = _hex_to_rgb(a)
    rb, gb, bb = _hex_to_rgb(b)
    return "#{:02x}{:02x}{:02x}".format(
        round(ra + (rb - ra) * t),
        round(ga + (gb - ga) * t),
        round(ba + (bb - ba) * t),
    )


def _diverging_ramp(poles: tuple[str, str, str]) -> dict[int, str]:
    """Bucket → hex for one mode: negative arm cool, positive arm warm."""
    low, mid, high = poles
    ramp = {0: mid}
    for step in range(1, _Z_BUCKETS + 1):
        t = step / _Z_BUCKETS
        ramp[-step] = _lerp_hex(mid, low, t)
        ramp[step] = _lerp_hex(mid, high, t)
    return ramp


def _bucket(z: float, span: float = 2.5) -> int:
    """Quantize a z-score into ``[-_Z_BUCKETS, +_Z_BUCKETS]``."""
    if not np.isfinite(z):
        return 0
    scaled = int(round(z / span * _Z_BUCKETS))
    return max(-_Z_BUCKETS, min(_Z_BUCKETS, scaled))


def _z_scores(values: np.ndarray) -> np.ndarray:
    """Column z-scores (the matrix normalization the pipeline uses)."""
    mean = values.mean(axis=0)
    std = values.std(axis=0)
    safe = np.where(std == 0.0, 1.0, std)
    z = (values - mean) / safe
    return np.where(std == 0.0, 0.0, z)


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


# -- SVG builders --------------------------------------------------------------


def _polyline_points(
    xs: Sequence[float],
    ys: Sequence[float],
    width: float,
    height: float,
    pad: float,
) -> str:
    x_max = max(xs) or 1.0
    y_max = max(ys) or 1.0
    points = []
    for x, y in zip(xs, ys):
        px = pad + (x / x_max) * (width - 2 * pad)
        py = height - pad - (y / y_max) * (height - 2 * pad)
        points.append(f"{px:.1f},{py:.1f}")
    return " ".join(points)


def _timeline_svg(char: WorkloadCharacterization) -> str:
    """Records committed over the run, ramp-up window shaded."""
    series = char.timeline
    run = series.run_samples
    if len(run) < 2:
        return ""
    width, height, pad = 360.0, 120.0, 8.0
    xs = [float(s["t_ms"]) for s in run]
    ys = [float(s["records_committed"]) for s in run]
    points = _polyline_points(xs, ys, width, height, pad)
    ramp_px = pad + (
        (series.ramp_up_ms / (max(xs) or 1.0)) * (width - 2 * pad)
    )
    last = run[-1]
    tooltip = (
        f"{char.name}: {last['records_committed']:,} records, "
        f"{last['tasks_done']} tasks, ramp-up "
        f"{series.ramp_up_ms:.0f} ms of {series.duration_ms:.0f} ms"
    )
    return f"""<svg viewBox="0 0 {width:.0f} {height:.0f}" width="{width:.0f}" height="{height:.0f}" role="img" aria-label="{_esc(char.name)} records timeline">
  <title>{_esc(tooltip)}</title>
  <rect x="0" y="0" width="{width:.0f}" height="{height:.0f}" fill="var(--surface-1)"/>
  <rect x="{pad:.1f}" y="{pad:.1f}" width="{max(0.0, ramp_px - pad):.1f}" height="{height - 2 * pad:.1f}" fill="var(--ramp-wash)"/>
  <line x1="{ramp_px:.1f}" y1="{pad:.1f}" x2="{ramp_px:.1f}" y2="{height - pad:.1f}" stroke="var(--baseline)" stroke-dasharray="3 3"/>
  <line x1="{pad:.1f}" y1="{height - pad:.1f}" x2="{width - pad:.1f}" y2="{height - pad:.1f}" stroke="var(--baseline)"/>
  <polyline points="{points}" fill="none" stroke="var(--series-1)" stroke-width="2" stroke-linejoin="round"/>
</svg>"""


def _windows_svg(char: WorkloadCharacterization, metric: str = "ILP") -> str:
    """Per-phase simulation windows of one slave as a bar strip."""
    series = char.timeline
    slaves = sorted({s["slave"] for s in series.sim_samples})
    if not slaves:
        return ""
    windows = [
        s for s in series.sim_samples
        if s["slave"] == slaves[0] and metric in s["metrics"]
    ]
    if not windows:
        return ""
    width, height, pad, gap = 360.0, 72.0, 8.0, 2.0
    n = len(windows)
    bar_w = max(1.0, (width - 2 * pad - gap * (n - 1)) / n)
    peak = max(float(w["metrics"][metric]) for w in windows) or 1.0
    bars = []
    for i, window in enumerate(windows):
        value = float(window["metrics"][metric])
        bar_h = max(1.0, (value / peak) * (height - 2 * pad))
        x = pad + i * (bar_w + gap)
        y = height - pad - bar_h
        bars.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
            f'height="{bar_h:.1f}" rx="2" fill="var(--series-1)">'
            f"<title>{_esc(window['phase'])}: {metric} {value:.3f}</title>"
            f"</rect>"
        )
    return f"""<svg viewBox="0 0 {width:.0f} {height:.0f}" width="{width:.0f}" height="{height:.0f}" role="img" aria-label="{_esc(char.name)} per-window {metric}">
  <title>{_esc(char.name)}: per-phase {metric} (slave {slaves[0]}, {n} windows)</title>
  <rect x="0" y="0" width="{width:.0f}" height="{height:.0f}" fill="var(--surface-1)"/>
  <line x1="{pad:.1f}" y1="{height - pad:.1f}" x2="{width - pad:.1f}" y2="{height - pad:.1f}" stroke="var(--baseline)"/>
  {''.join(bars)}
</svg>"""


def _heatmap_svg(matrix: WorkloadMetricMatrix) -> str:
    """Workload × metric z-score heatmap on the diverging ramp."""
    z = _z_scores(matrix.values)
    n_rows, n_cols = z.shape
    cell, label_w, label_h = 14.0, 110.0, 16.0
    width = label_w + n_cols * cell + 8
    height = label_h + n_rows * cell + 8
    cells = []
    for r in range(n_rows):
        for c in range(n_cols):
            bucket = _bucket(float(z[r, c]))
            sign = "m" if bucket < 0 else "p"
            tip = (
                f"{matrix.workloads[r]} · {METRIC_NAMES[c]}: "
                f"z = {z[r, c]:+.2f}"
            )
            cells.append(
                f'<rect x="{label_w + c * cell:.1f}" '
                f'y="{label_h + r * cell:.1f}" width="{cell - 1:.1f}" '
                f'height="{cell - 1:.1f}" class="z{sign}{abs(bucket)}">'
                f"<title>{_esc(tip)}</title></rect>"
            )
    row_labels = [
        f'<text x="{label_w - 6:.1f}" y="{label_h + r * cell + cell - 4:.1f}" '
        f'text-anchor="end" class="axis">{_esc(name)}</text>'
        for r, name in enumerate(matrix.workloads)
    ]
    col_labels = [
        f'<text x="{label_w + c * cell + cell / 2 - 0.5:.1f}" '
        f'y="{label_h - 5:.1f}" text-anchor="middle" class="axis">'
        f"{c + 1}</text>"
        for c in range(n_cols)
        if (c + 1) % 5 == 0 or c == 0
    ]
    return f"""<svg viewBox="0 0 {width:.0f} {height:.0f}" width="{width:.0f}" height="{height:.0f}" role="img" aria-label="suite metric z-score heatmap">
  <title>Column z-scores of the workload × metric matrix (blue below suite mean, red above)</title>
  {''.join(col_labels)}
  {''.join(row_labels)}
  {''.join(cells)}
</svg>"""


def _kiviat_svg(diagram: KiviatDiagram) -> str:
    """One representative's Figure-6 radar polygon."""
    size, pad = 150.0, 24.0
    center = size / 2
    radius = center - pad
    peak = max(abs(v) for v in diagram.values) or 1.0
    vertices = diagram.polygon()
    points = " ".join(
        f"{center + (x / peak) * radius:.1f},{center + (y / peak) * radius:.1f}"
        for x, y in vertices
    )
    n = len(diagram.axes)
    spokes, labels = [], []
    for i, axis in enumerate(diagram.axes):
        angle = 2.0 * np.pi * i / n
        ex = center + radius * np.cos(angle)
        ey = center + radius * np.sin(angle)
        spokes.append(
            f'<line x1="{center:.1f}" y1="{center:.1f}" '
            f'x2="{ex:.1f}" y2="{ey:.1f}" stroke="var(--gridline)"/>'
        )
        lx = center + (radius + 10) * np.cos(angle)
        ly = center + (radius + 10) * np.sin(angle)
        labels.append(
            f'<text x="{lx:.1f}" y="{ly + 3:.1f}" text-anchor="middle" '
            f'class="axis">{_esc(axis)}</text>'
        )
    tip = (
        f"{diagram.workload}: dominated by {diagram.dominant_axis} "
        f"(|score| {peak:.2f})"
    )
    return f"""<svg viewBox="0 0 {size:.0f} {size:.0f}" width="{size:.0f}" height="{size:.0f}" role="img" aria-label="{_esc(diagram.workload)} Kiviat diagram">
  <title>{_esc(tip)}</title>
  {''.join(spokes)}
  <polygon points="{points}" fill="var(--series-1)" fill-opacity="0.18" stroke="var(--series-1)" stroke-width="2" stroke-linejoin="round"/>
  {''.join(labels)}
</svg>"""


# -- page assembly -------------------------------------------------------------


def _heatmap_classes() -> str:
    """CSS rules for the quantized diverging buckets, light and dark."""
    light = _diverging_ramp(_DIVERGING_LIGHT)
    dark = _diverging_ramp(_DIVERGING_DARK)

    def rules(ramp: dict[int, str], scope: str) -> Iterable[str]:
        for bucket, color in sorted(ramp.items()):
            sign = "m" if bucket < 0 else "p"
            yield f"{scope} .z{sign}{abs(bucket)} {{ fill: {color}; }}"

    dark_rules = "\n".join(rules(dark, ".viz-root"))
    return "\n".join(
        [
            *rules(light, ".viz-root"),
            "@media (prefers-color-scheme: dark) {",
            ':root:where(:not([data-theme="light"])) ' + dark_rules.replace(
                "\n", "\n:root:where(:not([data-theme=\"light\"])) "
            ),
            "}",
            ':root[data-theme="dark"] ' + dark_rules.replace(
                "\n", '\n:root[data-theme="dark"] '
            ),
        ]
    )


_STYLE = """
.viz-root {
  color-scheme: light;
  --surface-1:      #fcfcfb;
  --page:           #f9f9f7;
  --text-primary:   #0b0b0b;
  --text-secondary: #52514e;
  --muted:          #898781;
  --gridline:       #e1e0d9;
  --baseline:       #c3c2b7;
  --border:         rgba(11,11,11,0.10);
  --series-1:       #2a78d6;
  --series-2:       #e34948;
  --ramp-wash:      rgba(137,135,129,0.12);
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1:      #1a1a19;
    --page:           #0d0d0d;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --muted:          #898781;
    --gridline:       #2c2c2a;
    --baseline:       #383835;
    --border:         rgba(255,255,255,0.10);
    --series-1:       #3987e5;
    --series-2:       #e66767;
    --ramp-wash:      rgba(137,135,129,0.18);
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1:      #1a1a19;
  --page:           #0d0d0d;
  --text-primary:   #ffffff;
  --text-secondary: #c3c2b7;
  --muted:          #898781;
  --gridline:       #2c2c2a;
  --baseline:       #383835;
  --border:         rgba(255,255,255,0.10);
  --series-1:       #3987e5;
  --series-2:       #e66767;
  --ramp-wash:      rgba(137,135,129,0.18);
}
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; margin: 28px 0 10px; }
.viz-root h3 { font-size: 13px; margin: 0 0 6px; }
.viz-root p.sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 16px; }
.viz-root .cards { display: flex; flex-wrap: wrap; gap: 16px; }
.viz-root .card {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 12px;
}
.viz-root .card p { color: var(--text-secondary); font-size: 12px; margin: 6px 0 0; }
.viz-root svg { display: block; }
.viz-root svg .axis { fill: var(--muted); font-size: 9px; font-family: inherit; }
.viz-root table { border-collapse: collapse; font-size: 11px; }
.viz-root th, .viz-root td {
  border: 1px solid var(--gridline);
  padding: 2px 6px;
  text-align: right;
  font-variant-numeric: tabular-nums;
}
.viz-root th { color: var(--text-secondary); font-weight: 600; }
.viz-root td.name, .viz-root th.name { text-align: left; }
.viz-root details summary { cursor: pointer; color: var(--text-secondary); font-size: 13px; }
.viz-root .legend { color: var(--text-secondary); font-size: 12px; margin: 6px 0 0; }
.viz-root .swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin: 0 4px 0 10px; vertical-align: baseline;
}
.viz-root rect.fl-span { fill: var(--series-1); fill-opacity: 0.85; }
.viz-root rect.fl-span.fl-frame { fill-opacity: 0.45; }
.viz-root rect.fl-idle { fill: var(--muted); fill-opacity: 0.50; }
.viz-root rect.fl-idle.fl-frame { fill-opacity: 0.28; }
.viz-root rect.fl-untracked { fill: var(--series-2); fill-opacity: 0.60; }
.viz-root rect.fl-untracked.fl-frame { fill-opacity: 0.35; }
.viz-root svg .fl-label {
  fill: var(--text-primary); font-size: 10px;
  font-family: ui-monospace, "SF Mono", Menlo, monospace;
  pointer-events: none;
}
"""


def _matrix_table(matrix: WorkloadMetricMatrix) -> str:
    """The full matrix as an HTML table (the charts' accessible twin)."""
    head = "".join(
        f'<th title="{_esc(name)}">{i + 1}</th>'
        for i, name in enumerate(METRIC_NAMES)
    )
    rows = []
    for r, workload in enumerate(matrix.workloads):
        cells = "".join(
            f"<td>{matrix.values[r, c]:.3g}</td>"
            for c in range(matrix.values.shape[1])
        )
        rows.append(f'<tr><td class="name">{_esc(workload)}</td>{cells}</tr>')
    return (
        "<details><summary>Table view: full workload × metric matrix"
        "</summary><div style=\"overflow-x:auto\"><table>"
        f'<tr><th class="name">workload</th>{head}</tr>'
        f"{''.join(rows)}</table></div></details>"
    )


def _timeline_cards(
    characterizations: Sequence[WorkloadCharacterization],
) -> str:
    cards = []
    for char in characterizations:
        if char.timeline is None or len(char.timeline.run_samples) < 2:
            continue
        rates = char.timeline.steady_state_rates()
        windows = _windows_svg(char)
        cards.append(
            '<div class="card">'
            f"<h3>{_esc(char.name)}</h3>"
            f"{_timeline_svg(char)}"
            f"{windows}"
            f"<p>steady state: {rates['records_per_s']:,.0f} records/s over "
            f"{rates['window_s']:.2f}s · {len(char.timeline)} samples</p>"
            "</div>"
        )
    if not cards:
        return (
            '<p class="sub">No timelines recorded — collect with timeline '
            "sampling enabled (<code>repro report --html</code> does) to "
            "see per-run charts here.</p>"
        )
    return f'<div class="cards">{"".join(cards)}</div>'


def _budget_curve_svg(selection) -> str:
    """Coverage vs. budget staircase with the chosen operating point.

    One series (the greedy ranking's nested prefixes), so no legend —
    the axis labels and the direct-labelled operating point carry it.
    """
    ranking = selection.ranking
    width, height, pad_l, pad_b, pad = 420.0, 180.0, 46.0, 30.0, 10.0
    x_max = max(ranking[-1].cumulative_cost_s, selection.budget_s) * 1.05
    plot_w = width - pad_l - pad
    plot_h = height - pad - pad_b

    def px(cost: float) -> float:
        return pad_l + (cost / x_max) * plot_w

    def py(coverage: float) -> float:
        return height - pad_b - coverage * plot_h

    # Staircase: coverage jumps when a prefix becomes affordable.
    vertices = [(px(0.0), py(0.0))]
    previous = 0.0
    for entry in ranking:
        vertices.append((px(entry.cumulative_cost_s), py(previous)))
        vertices.append(
            (px(entry.cumulative_cost_s), py(entry.cumulative_coverage))
        )
        previous = entry.cumulative_coverage
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in vertices)

    markers = []
    for entry in ranking:
        tip = (
            f"{entry.workload}: +{entry.gain:.3f} coverage for "
            f"{entry.cost_s:.2f}s (cumulative {entry.cumulative_cost_s:.2f}s "
            f"→ {entry.cumulative_coverage:.3f})"
        )
        markers.append(
            f'<circle cx="{px(entry.cumulative_cost_s):.1f}" '
            f'cy="{py(entry.cumulative_coverage):.1f}" r="4" '
            f'fill="var(--series-1)" stroke="var(--surface-1)" '
            f'stroke-width="2"><title>{_esc(tip)}</title></circle>'
        )

    budget_x = px(min(selection.budget_s, x_max))
    op_x, op_y = px(selection.cost_s), py(selection.coverage)
    op_tip = (
        f"operating point: {len(selection.picks)} workloads, "
        f"{selection.cost_s:.2f}s of {selection.budget_s:g}s budget, "
        f"coverage {selection.coverage:.3f}"
    )
    label_anchor = "end" if op_x > width * 0.6 else "start"
    label_x = op_x - 10 if label_anchor == "end" else op_x + 10
    return f"""<svg viewBox="0 0 {width:.0f} {height:.0f}" width="{width:.0f}" height="{height:.0f}" role="img" aria-label="coverage versus budget curve">
  <title>{_esc(op_tip)}</title>
  <rect x="0" y="0" width="{width:.0f}" height="{height:.0f}" fill="var(--surface-1)"/>
  <line x1="{pad_l:.1f}" y1="{py(1.0):.1f}" x2="{width - pad:.1f}" y2="{py(1.0):.1f}" stroke="var(--gridline)" stroke-dasharray="2 4"/>
  <line x1="{pad_l:.1f}" y1="{py(0.0):.1f}" x2="{width - pad:.1f}" y2="{py(0.0):.1f}" stroke="var(--baseline)"/>
  <line x1="{pad_l:.1f}" y1="{pad:.1f}" x2="{pad_l:.1f}" y2="{py(0.0):.1f}" stroke="var(--baseline)"/>
  <line x1="{budget_x:.1f}" y1="{pad:.1f}" x2="{budget_x:.1f}" y2="{py(0.0):.1f}" stroke="var(--baseline)" stroke-dasharray="3 3"/>
  <text x="{budget_x + 4:.1f}" y="{pad + 10:.1f}" class="axis">budget</text>
  <text x="{pad_l - 6:.1f}" y="{py(1.0) + 4:.1f}" text-anchor="end" class="axis">1.0</text>
  <text x="{pad_l - 6:.1f}" y="{py(0.0) + 4:.1f}" text-anchor="end" class="axis">0</text>
  <text x="{width / 2:.1f}" y="{height - 6:.1f}" text-anchor="middle" class="axis">cumulative simulated-runtime cost (s)</text>
  <polyline points="{points}" fill="none" stroke="var(--series-1)" stroke-width="2" stroke-linejoin="round"/>
  {''.join(markers)}
  <circle cx="{op_x:.1f}" cy="{op_y:.1f}" r="6" fill="var(--series-1)" stroke="var(--surface-1)" stroke-width="2"><title>{_esc(op_tip)}</title></circle>
  <text x="{label_x:.1f}" y="{max(op_y - 10, pad + 10):.1f}" text-anchor="{label_anchor}" class="axis">{len(selection.picks)} workloads · {selection.coverage:.2f}</text>
</svg>"""


def _budget_section(selection) -> str:
    """The budget panel: curve + its accessible table twin."""
    if selection is None or not selection.ranking:
        return (
            '<p class="sub">No budgeted selection computed — pass a budget '
            "(<code>repro subset --budget</code> or "
            "<code>GET /subset?budget=S</code>) to choose an operating "
            "point on this curve.</p>"
        )
    rows = "".join(
        f'<tr><td class="name">{_esc(entry.workload)}</td>'
        f"<td>{entry.cost_s:.3f}</td>"
        f"<td>{entry.cumulative_cost_s:.3f}</td>"
        f"<td>{entry.gain:.4f}</td>"
        f"<td>{entry.cumulative_coverage:.4f}</td>"
        f"<td>{'yes' if entry.workload in selection.workloads else 'no'}</td>"
        "</tr>"
        for entry in selection.ranking
    )
    table = (
        "<details><summary>Table view: greedy ranking with costs and "
        "coverage</summary><div style=\"overflow-x:auto\"><table>"
        '<tr><th class="name">workload</th><th>cost s</th>'
        "<th>cum cost s</th><th>gain</th><th>cum coverage</th>"
        f"<th>selected</th></tr>{rows}</table></div></details>"
    )
    return f'<div class="card">{_budget_curve_svg(selection)}</div>{table}'


def _kiviat_cards(subsetting: SubsettingResult | None) -> str:
    if subsetting is None or not subsetting.kiviat:
        return '<p class="sub">Subsetting unavailable for this suite.</p>'
    cards = [
        '<div class="card">'
        f"<h3>{_esc(diagram.workload)}</h3>"
        f"{_kiviat_svg(diagram)}"
        f"<p>dominant: {_esc(diagram.dominant_axis)}</p>"
        "</div>"
        for diagram in subsetting.kiviat
    ]
    return f'<div class="cards">{"".join(cards)}</div>'


# -- continuous-profiling panel ------------------------------------------------

#: Flamegraph geometry: full-width rows of fixed height, pruned below
#: one pixel so the SVG stays bounded no matter how many stacks merged.
_FLAME_W = 1040.0
_FLAME_ROW_H = 17.0
_FLAME_MAX_DEPTH = 48
_FLAME_MIN_PX = 1.0
#: Approximate monospace advance at font-size 10 — labels are cut to fit.
_FLAME_CHAR_PX = 6.2

#: Roots the profiler uses for samples with no live span path (kept in
#: sync with :mod:`repro.obs.prof`; restated here so rendering a saved
#: profile document needs nothing but the document).
_FLAME_IDLE = "(idle)"
_FLAME_UNTRACKED = "(untracked)"


def _profile_stacks(doc: dict):
    """``(spans, frames, count, idle)`` per entry of a profile document."""
    for entry in doc.get("stacks", ()):
        spans, frames, count, idle = entry
        yield tuple(spans), tuple(frames), int(count), bool(idle)


def _flame_tree(doc: dict) -> tuple[dict, int]:
    """Aggregate stacks into a nested ``{segment: [count, children]}``.

    Each path is the span segments (or the unattributed root) followed
    by the frame labels root-first, so the icicle groups frames under
    the span that owned them — the same shape as the collapsed output.
    """
    tree: dict = {}
    total = 0
    for spans, frames, count, idle in _profile_stacks(doc):
        if spans:
            path = spans + frames
        else:
            path = ((_FLAME_IDLE if idle else _FLAME_UNTRACKED),) + frames
        total += count
        node = tree
        for segment in path:
            entry = node.setdefault(segment, [0, {}])
            entry[0] += count
            node = entry[1]
    return tree, total


def _flame_category(root_segment: str) -> str:
    if root_segment == _FLAME_IDLE:
        return "idle"
    if root_segment == _FLAME_UNTRACKED:
        return "untracked"
    return "span"


def _flamegraph_svg(doc: dict) -> str:
    """The merged profile as a no-script SVG icicle (root on top).

    Rect widths are sample shares of the window; ``<title>`` children
    carry the tooltips, so the chart needs zero JavaScript.  Subtrees
    narrower than one pixel are pruned (their samples still widen every
    ancestor, so nothing is miscounted — only unreadably small rects
    are dropped).
    """
    tree, total = _flame_tree(doc)
    if not total:
        return ""
    rects: list[str] = []
    max_depth = 0

    def render(node: dict, x: float, depth: int, category: str | None) -> None:
        nonlocal max_depth
        for name, (count, children) in sorted(
            node.items(), key=lambda kv: (-kv[1][0], kv[0])
        ):
            width = count / total * _FLAME_W
            if width < _FLAME_MIN_PX or depth >= _FLAME_MAX_DEPTH:
                x += width
                continue
            max_depth = max(max_depth, depth)
            cat = category or _flame_category(name)
            classes = f"fl-{cat}"
            if ".py:" in name or name.startswith("<"):
                classes += " fl-frame"
            y = depth * _FLAME_ROW_H
            tip = f"{name} — {count} samples ({count / total:.1%})"
            rects.append(
                f'<rect x="{x:.2f}" y="{y:.1f}" width="{max(width - 0.4, 0.4):.2f}" '
                f'height="{_FLAME_ROW_H - 1:.1f}" rx="1" class="{classes}">'
                f"<title>{_esc(tip)}</title></rect>"
            )
            label_room = int(width / _FLAME_CHAR_PX)
            if label_room >= 4:
                label = name if len(name) <= label_room else name[: label_room - 1] + "…"
                rects.append(
                    f'<text x="{x + 3:.2f}" y="{y + _FLAME_ROW_H - 5:.1f}" '
                    f'class="fl-label">{_esc(label)}</text>'
                )
            render(children, x, depth + 1, cat)
            x += width

    render(tree, 0.0, 0, None)
    height = (max_depth + 1) * _FLAME_ROW_H + 2
    return (
        f'<svg viewBox="0 0 {_FLAME_W:.0f} {height:.0f}" '
        f'width="{_FLAME_W:.0f}" height="{height:.0f}" role="img" '
        f'aria-label="fleet CPU flamegraph">\n'
        f"  <title>Fleet CPU profile: {total} samples; each row is one "
        f"stack level, width is the sample share</title>\n"
        f"  {''.join(rects)}\n</svg>"
    )


def _profile_attribution(doc: dict) -> dict:
    attributed = idle = untracked = 0
    for spans, _frames, count, is_idle in _profile_stacks(doc):
        if spans:
            attributed += count
        elif is_idle:
            idle += count
        else:
            untracked += count
    busy = attributed + untracked
    return {
        "attributed": attributed,
        "idle": idle,
        "untracked": untracked,
        "fraction": (attributed / busy) if busy else 0.0,
    }


def _profile_tables(doc: dict, top: int = 20) -> str:
    """The flamegraph's accessible twin: span paths and hot frames."""
    samples = max(1, int(doc.get("samples", 0)))
    span_counts: dict[str, int] = {}
    frame_counts: dict[str, int] = {}
    for spans, frames, count, idle in _profile_stacks(doc):
        if spans:
            root = ";".join(spans)
        else:
            root = _FLAME_IDLE if idle else _FLAME_UNTRACKED
        span_counts[root] = span_counts.get(root, 0) + count
        if frames and not (idle and not spans):
            leaf = frames[-1]
            frame_counts[leaf] = frame_counts.get(leaf, 0) + count
    span_rows = "".join(
        f'<tr><td class="name">{_esc(path)}</td><td>{count}</td>'
        f"<td>{count / samples:.1%}</td></tr>"
        for path, count in sorted(
            span_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top]
    )
    frame_rows = "".join(
        f'<tr><td class="name">{_esc(label)}</td><td>{count}</td>'
        f"<td>{count / samples:.1%}</td></tr>"
        for label, count in sorted(
            frame_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top]
    )
    return (
        "<details><summary>Table view: samples per span path and hottest "
        'busy frames</summary><div style="overflow-x:auto">'
        '<table><tr><th class="name">span path</th><th>samples</th>'
        f"<th>share</th></tr>{span_rows}</table>"
        '<table style="margin-top:10px">'
        '<tr><th class="name">leaf frame (busy samples)</th>'
        f"<th>samples</th><th>share</th></tr>{frame_rows}</table>"
        "</div></details>"
    )


def _profile_section(doc: dict | None) -> str:
    """The dashboard's continuous-profiling panel for one merged profile."""
    if not doc or not doc.get("samples"):
        return (
            '<p class="sub">No profile attached — capture one with '
            "<code>repro profile --out profile.json</code> (or "
            "<code>GET /profile?format=flame</code>) while the fleet is "
            "working.</p>"
        )
    stats = _profile_attribution(doc)
    processes = doc.get("processes") or []
    roles: dict[str, int] = {}
    for process in processes:
        role = str(process.get("role", "?"))
        roles[role] = roles.get(role, 0) + 1
    provenance = ", ".join(
        f"{count} {role}" for role, count in sorted(roles.items())
    )
    summary = (
        f"{doc['samples']} samples over {float(doc.get('duration_s', 0.0)):.2f}s "
        f"({_esc(doc.get('mode', 'wall'))} clock, "
        f"{float(doc.get('interval_ms', 0.0)):g}ms interval"
        + (f"; {provenance}" if provenance else "")
        + f") · span attribution {stats['fraction']:.1%} of busy samples"
    )
    legend = (
        '<p class="legend">'
        '<span class="swatch" style="background:var(--series-1)"></span>'
        "span-attributed"
        '<span class="swatch" style="background:var(--series-2);opacity:.6">'
        "</span>untracked busy"
        '<span class="swatch" style="background:var(--muted);opacity:.5">'
        "</span>idle (parked threads)</p>"
    )
    return (
        f'<p class="sub">{summary}</p>'
        f'<div class="card" style="overflow-x:auto">{_flamegraph_svg(doc)}'
        f"{legend}</div>{_profile_tables(doc)}"
    )


def render_profile_page(
    doc: dict, title: str = "repro fleet CPU profile"
) -> str:
    """One merged profile document as a self-contained flamegraph page.

    Serves ``GET /profile?format=flame`` and ``repro profile --flame``:
    the same zero-script, inline-CSS contract as the dashboard — the
    file renders identically offline, light and dark.
    """
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_STYLE}</style>
</head>
<body class="viz-root">
<h1>{_esc(title)}</h1>
<p class="sub">Statistical stack samples across every fleet process,
charged to the span path that owned each thread — root rows are spans
(or the unattributed buckets), nested rows are Python frames.</p>
{_profile_section(doc)}
</body>
</html>
"""


def render_dashboard(
    matrix: WorkloadMetricMatrix,
    characterizations: Sequence[WorkloadCharacterization] = (),
    subsetting: SubsettingResult | None = None,
    title: str = "repro characterization dashboard",
    budgeted=None,
    profile: dict | None = None,
) -> str:
    """Render the suite as one self-contained HTML page.

    Args:
        matrix: The workload × metric matrix to chart.
        characterizations: Per-workload detail; entries carrying a
            :class:`~repro.obs.timeline.TimelineSeries` get a timeline
            card.
        subsetting: The subsetting result whose Kiviat diagrams (Fig. 6)
            to include; ``None`` omits that section.
        title: Page title.
        budgeted: A :class:`repro.subset.BudgetedSelection`; when given,
            a coverage-vs-budget panel charts the greedy ranking's
            nested prefixes with the chosen operating point.
        profile: A merged profile document (``repro profile --out`` /
            ``GET /profile``); when given, a continuous-profiling panel
            renders it as a span-attributed flamegraph.

    Returns:
        A complete HTML document with all assets inline — no scripts,
        no external URLs.
    """
    with_timelines = sum(
        1 for c in characterizations if c.timeline is not None
    )
    subset_names = (
        ", ".join(subsetting.representative_subset) if subsetting else "—"
    )
    ramp = _diverging_ramp(_DIVERGING_LIGHT)
    legend = (
        '<p class="legend">z-score'
        f'<span class="swatch" style="background:{ramp[-_Z_BUCKETS]}"></span>'
        "below mean"
        f'<span class="swatch" style="background:{ramp[0]}"></span>mean'
        f'<span class="swatch" style="background:{ramp[_Z_BUCKETS]}"></span>'
        "above mean</p>"
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_STYLE}
{_heatmap_classes()}
</style>
</head>
<body class="viz-root">
<h1>{_esc(title)}</h1>
<p class="sub">{len(matrix.workloads)} workloads × {len(METRIC_NAMES)} metrics
 · {with_timelines} with timelines · representative subset: {_esc(subset_names)}</p>

<h2>Workload timelines</h2>
<p class="sub">Records committed over the run (shaded region = ramp-up window,
discarded from steady-state rates) and per-phase simulation-window ILP.</p>
{_timeline_cards(characterizations)}

<h2>Suite heatmap</h2>
<p class="sub">Column z-scores of every metric across the suite — the exact
normalization the PCA and clustering consume.</p>
<div class="card">{_heatmap_svg(matrix)}{legend}</div>

<h2>Coverage vs. budget</h2>
<p class="sub">PC-space facility-location coverage bought by each additional
second of simulated runtime (greedy ranking; prefixes nest, so the curve is
the whole budget sweep); the large marker is the chosen operating point.</p>
{_budget_section(budgeted)}

<h2>Representative subset (Kiviat)</h2>
<p class="sub">Each chosen representative's principal-component profile;
diverse dominant axes are what make the subset representative.</p>
{_kiviat_cards(subsetting)}

<h2>Continuous profiling</h2>
{_profile_section(profile)}

<h2>Data</h2>
{_matrix_table(matrix)}
</body>
</html>
"""
