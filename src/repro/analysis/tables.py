"""Data products for Tables IV and V of the paper.

Table IV lists the K-means clusters at the BIC-chosen K; Table V lists
the representative workloads chosen by both selection approaches with
their cluster sizes and the subset's maximal linkage distance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.representatives import ClusterRepresentative, SelectionPolicy
from repro.core.subsetting import SubsettingResult

__all__ = ["Table4", "table4", "Table5", "table5"]


@dataclass(frozen=True)
class Table4:
    """Table IV: the K-means clustering of the suite.

    Attributes:
        k: The BIC-chosen cluster count (paper: 7).
        clusters: Member labels per cluster, largest first.
        bic_scores: The full BIC sweep (paper reports only the winner).
        paper_k_clusters: The clustering forced to the paper's K = 7, for
            a direct side-by-side (our BIC-chosen K may differ; cluster
            structure is data-dependent).
    """

    k: int
    clusters: tuple[tuple[str, ...], ...]
    bic_scores: dict[int, float]
    paper_k_clusters: tuple[tuple[str, ...], ...]

    def render(self) -> str:
        lines = [f"Table IV — K-means clusters (BIC chose K = {self.k}; paper: 7)", ""]
        lines.append(f"{'Cluster':>7}  {'Number':>6}  Workloads")
        for index, members in enumerate(self.clusters, start=1):
            lines.append(
                f"{index:>7}  {len(members):>6}  {', '.join(sorted(members))}"
            )
        lines.append("")
        lines.append("BIC sweep: " + ", ".join(
            f"K={k}:{score:.1f}" for k, score in sorted(self.bic_scores.items())
        ))
        lines.append("")
        lines.append("Forced K = 7 view (paper's Table IV shape):")
        for index, members in enumerate(self.paper_k_clusters, start=1):
            lines.append(
                f"{index:>7}  {len(members):>6}  {', '.join(sorted(members))}"
            )
        return "\n".join(lines)


def table4(result: SubsettingResult) -> Table4:
    """Build Table IV from a subsetting result."""
    workloads = result.matrix.workloads
    clustering = result.clustering

    def clusters_of(labels) -> tuple[tuple[str, ...], ...]:
        groups: dict[int, list[str]] = {}
        for workload, label in zip(workloads, labels):
            groups.setdefault(int(label), []).append(workload)
        ordered = sorted(groups.values(), key=lambda g: (-len(g), g[0]))
        return tuple(tuple(sorted(group)) for group in ordered)

    paper_k = result.bic.clusterings.get(7)
    if paper_k is None:
        from repro.core.kmeans import kmeans

        paper_k = kmeans(result.pca.scores, 7, seed=0)
    return Table4(
        k=clustering.k,
        clusters=clusters_of(clustering.labels),
        bic_scores=dict(result.bic.scores),
        paper_k_clusters=clusters_of(paper_k.labels),
    )


@dataclass(frozen=True)
class Table5:
    """Table V: representative workloads under both selection approaches.

    Attributes:
        nearest: Nearest-to-centroid representatives.
        farthest: Farthest-from-centroid representatives.
        nearest_max_linkage: Maximal linkage distance within the nearest
            subset (paper: 5.82).
        farthest_max_linkage: Same for the farthest subset (paper: 11.20
            — larger, which is why the paper prefers this approach).
    """

    nearest: tuple[ClusterRepresentative, ...]
    farthest: tuple[ClusterRepresentative, ...]
    nearest_max_linkage: float
    farthest_max_linkage: float

    @property
    def farthest_is_more_diverse(self) -> bool:
        """The paper's conclusion: the boundary subset covers more space."""
        return self.farthest_max_linkage >= self.nearest_max_linkage

    def render(self) -> str:
        lines = ["Table V — representative workloads by selection approach", ""]
        lines.append("Nearest to cluster center:")
        for rep in self.nearest:
            lines.append(f"  {rep.workload} ({rep.cluster_size})")
        lines.append(f"  maximal linkage distance: {self.nearest_max_linkage:.2f}")
        lines.append("")
        lines.append("Farthest from cluster center:")
        for rep in self.farthest:
            lines.append(f"  {rep.workload} ({rep.cluster_size})")
        lines.append(f"  maximal linkage distance: {self.farthest_max_linkage:.2f}")
        lines.append("")
        verdict = "more" if self.farthest_is_more_diverse else "NOT more"
        lines.append(
            f"farthest-from-center subset is {verdict} diverse "
            "(paper: more — 11.20 vs 5.82)"
        )
        return "\n".join(lines)


def table5(result: SubsettingResult) -> Table5:
    """Build Table V from a subsetting result."""
    return Table5(
        nearest=result.nearest,
        farthest=result.farthest,
        nearest_max_linkage=result.max_linkage_distance(
            SelectionPolicy.NEAREST_TO_CENTER
        ),
        farthest_max_linkage=result.max_linkage_distance(
            SelectionPolicy.FARTHEST_FROM_CENTER
        ),
    )
