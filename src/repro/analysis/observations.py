"""The paper's nine numbered observations as first-class artifacts.

Sections V-A and V-C organise the evaluation around Observations 1-9.
:func:`evaluate_observations` scores each one against a reproduction run,
returning structured results the benchmark harness prints and the test
suite asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.experiment import Experiment

__all__ = ["Observation", "evaluate_observations"]


@dataclass(frozen=True)
class Observation:
    """One scored observation.

    Attributes:
        number: The paper's observation number (1-9).
        paper_claim: The claim, paraphrased from the paper.
        measured: Our measured quantity, as a human-readable string.
        holds: Whether the claim's direction holds in this run.
    """

    number: int
    paper_claim: str
    measured: str
    holds: bool

    def render(self) -> str:
        status = "HOLDS" if self.holds else "DEVIATES"
        return (
            f"Observation {self.number}: {status}\n"
            f"  paper:    {self.paper_claim}\n"
            f"  measured: {self.measured}"
        )


def evaluate_observations(experiment: Experiment) -> tuple[Observation, ...]:
    """Score Observations 1-9 against ``experiment``."""
    fig1 = experiment.fig1
    fig23 = experiment.fig2_3
    fig5 = experiment.fig5
    matrix = experiment.result.matrix
    hadoop = [i for i, w in enumerate(matrix.workloads) if w.startswith("H-")]
    spark = [i for i, w in enumerate(matrix.workloads) if w.startswith("S-")]

    def mean(metric: str, rows) -> float:
        return float(matrix.column(metric)[rows].mean())

    observations = []

    observations.append(
        Observation(
            1,
            "most (80%) first-iteration clusters pair same-stack workloads",
            f"{fig1.same_stack_fraction:.0%} of "
            f"{len(fig1.first_iteration)} first merges are same-stack",
            fig1.same_stack_fraction >= 0.6,
        )
    )

    observations.append(
        Observation(
            2,
            "same-algorithm pairs on different stacks almost never merge "
            "first (only Projection does)",
            f"{len(fig1.same_algorithm_pairs)} cross-stack same-algorithm "
            f"first merges: "
            f"{[f'{a}+{b}' for a, b, _ in fig1.same_algorithm_pairs] or 'none'}",
            len(fig1.same_algorithm_pairs) <= 2,
        )
    )

    # Observation 3: after iteration one, same-stack workloads keep
    # merging quickly — measured as stack purity of the early merge half.
    dendrogram = experiment.result.dendrogram
    early = dendrogram.merges[: len(dendrogram.merges) // 2]
    sets = dendrogram._leaf_sets()
    pure = 0
    for index, merge in enumerate(early):
        members = sets[len(dendrogram.labels) + index]
        stacks = {dendrogram.labels[i][0] for i in members}
        pure += len(stacks) == 1
    purity = pure / len(early) if early else 0.0
    observations.append(
        Observation(
            3,
            "workloads on the same stack keep clustering together after "
            "the first iteration",
            f"{purity:.0%} of the earliest half of merges form "
            "single-stack clusters",
            purity >= 0.6,
        )
    )

    # Observation 4: similar algorithms on one stack merge very early
    # (JoinQuery/CrossProduct, Union/Filter in the paper).
    def cophenetic(a: str, b: str) -> float:
        return dendrogram.cophenetic_distance(a, b)

    union_filter = min(cophenetic("H-Union", "H-Filter"), cophenetic("S-Union", "S-Filter"))
    join_cross = min(
        cophenetic("H-JoinQuery", "H-CrossProduct"),
        cophenetic("S-JoinQuery", "S-CrossProduct"),
    )
    all_first = [d for _a, _b, d in fig1.first_iteration]
    early_threshold = 2.5 * (sum(all_first) / len(all_first)) if all_first else 0.0
    observations.append(
        Observation(
            4,
            "same-stack similar algorithms (Union/Filter, JoinQuery/"
            "CrossProduct) group early",
            f"closest Union/Filter pair joins at {union_filter:.2f}, "
            f"JoinQuery/CrossProduct at {join_cross:.2f} "
            f"(mean first-merge distance {sum(all_first)/len(all_first):.2f})",
            union_filter <= early_threshold or join_cross <= early_threshold,
        )
    )

    observations.append(
        Observation(
            5,
            "Hadoop-family workloads are more similar to each other than "
            "Spark-family workloads",
            f"mean cophenetic distance: Hadoop {fig1.hadoop_tightness:.2f} "
            f"vs Spark {fig1.spark_tightness:.2f}",
            fig1.hadoop_tightness < fig1.spark_tightness,
        )
    )

    l3_h, l3_s = mean("L3_MISS", hadoop), mean("L3_MISS", spark)
    observations.append(
        Observation(
            6,
            "Spark workloads have about twice the L3 misses per kilo "
            "instructions of Hadoop workloads",
            f"L3 MPKI: Spark {l3_s:.2f} vs Hadoop {l3_h:.2f} "
            f"(ratio {l3_s / l3_h:.2f}x)",
            l3_s > l3_h,
        )
    )

    observations.append(
        Observation(
            7,
            "Hadoop workloads have more data STLB hits and fewer DTLB "
            "misses (STLB hit rates 61.5% vs 50.8%)",
            f"STLB hit rate: Hadoop {fig5.hadoop_stlb_hit_rate:.1%} vs "
            f"Spark {fig5.spark_stlb_hit_rate:.1%}; DTLB walk PKI "
            f"{mean('DTLB_MISS', hadoop):.2f} vs {mean('DTLB_MISS', spark):.2f}",
            fig5.hadoop_stlb_hit_rate > fig5.spark_stlb_hit_rate
            and mean("DTLB_MISS", hadoop) < mean("DTLB_MISS", spark),
        )
    )

    observations.append(
        Observation(
            8,
            "Hadoop workloads stall the frontend (instruction fetch, ~30% "
            "more L1I MPKI); Spark workloads stall the backend (resources)",
            f"FETCH_STALL H/S {fig5.ratios['FETCH_STALL']:.2f}, "
            f"RESOURCE_STALL H/S {fig5.ratios['RESOURCE_STALL']:.2f}, "
            f"L1I MPKI H/S {fig5.l1i_ratio:.2f}",
            fig5.ratios["FETCH_STALL"] > 1.0
            and fig5.ratios["RESOURCE_STALL"] < 1.0
            and fig5.l1i_ratio > 1.0,
        )
    )

    snoop_holds = all(
        mean(name, spark) > mean(name, hadoop)
        for name in ("SNOOP_HIT", "SNOOP_HITE", "SNOOP_HITM")
    )
    observations.append(
        Observation(
            9,
            "Spark workloads produce more snoop HIT/HITE/HITM responses "
            "(more data sharing among cores)",
            "Spark/Hadoop snoop PKI ratios: "
            + ", ".join(
                f"{name} {mean(name, spark) / max(1e-12, mean(name, hadoop)):.1f}x"
                for name in ("SNOOP_HIT", "SNOOP_HITE", "SNOOP_HITM")
            ),
            snoop_holds,
        )
    )

    return tuple(observations)
