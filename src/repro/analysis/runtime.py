"""User-observed runtime model (the paper's motivating contrast).

The introduction motivates including multiple stacks with the
user-observed performance gap: "Compared to Hadoop, Spark improves
runtime performance by factors of up to 100" (for iterative, in-memory
workloads).  This module closes that loop: it estimates wall-clock
runtime from the same artefacts the characterization uses — the engine
trace (bytes moved per phase, JVM launches) and the measured IPC — so
the speedup emerges from the mechanisms (disk-materialised intermediates
and per-task JVMs vs cached partitions), not from a dialled-in factor.

The model is deliberately simple and fully documented::

    compute  = instructions / (IPC * frequency * active cores)
    disk     = bytes through disk-backed phases / disk bandwidth
    network  = shuffle bytes / NIC bandwidth (per transfer latency added)
    startup  = JVM launches * per-launch cost (Hadoop's task model)

Absolute seconds are simulator values; the Hadoop/Spark *ratio* per
algorithm is the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.network import GigabitNetwork
from repro.cluster.testbed import WorkloadCharacterization
from repro.errors import AnalysisError
from repro.stacks.base import PhaseKind
from repro.stacks.instrument import profiles_from_trace
from repro.workloads.base import Workload

__all__ = ["RuntimeEstimate", "estimate_runtime"]

#: Sustained sequential bandwidth of the testbed-era SATA disks.
DISK_BYTES_PER_S = 120e6
#: Cost of launching one task JVM (fork + class loading), seconds.
JVM_START_S = 0.6
#: Core frequency (Table III) and task parallelism per node.
FREQUENCY_HZ = 2.4e9
ACTIVE_CORES = 4

#: Phases whose input/output rides through the local disk on Hadoop.
#: MAP is included: every MapReduce job re-reads its input from HDFS —
#: the disk round trip that iterative algorithms pay once per iteration
#: and that Spark's cached partitions avoid (CACHE_SCAN is memory).
_DISK_KINDS = (
    PhaseKind.MAP,
    PhaseKind.SPILL,
    PhaseKind.SHUFFLE,
    PhaseKind.SORT_MERGE,
    PhaseKind.OUTPUT,
)
#: Phases that move bytes across the network on either stack.
_NETWORK_KINDS = (PhaseKind.SHUFFLE, PhaseKind.SHUFFLE_READ)
#: HDFS block size at real scale: one map-task JVM per block.
_HDFS_BLOCK_BYTES = 64 * (1 << 20)
_REDUCERS_PER_JOB = 4


@dataclass(frozen=True)
class RuntimeEstimate:
    """Wall-clock breakdown of one workload run.

    Attributes:
        workload: Workload label.
        compute_s: Retirement time at the measured IPC.
        disk_s: Disk time of disk-backed phases (zero on pure Spark paths).
        network_s: Shuffle transfer time on the 1 GbE interconnect.
        startup_s: Task JVM launch time (Hadoop's process-per-task model).
    """

    workload: str
    compute_s: float
    disk_s: float
    network_s: float
    startup_s: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.disk_s + self.network_s + self.startup_s

    def render(self) -> str:
        return (
            f"{self.workload:18s} total {self.total_s:8.2f}s  "
            f"(compute {self.compute_s:7.2f}  disk {self.disk_s:7.2f}  "
            f"network {self.network_s:6.2f}  jvm {self.startup_s:6.2f})"
        )


def estimate_runtime(
    workload: Workload,
    characterization: WorkloadCharacterization,
) -> RuntimeEstimate:
    """Estimate the wall-clock runtime of one characterized workload.

    Args:
        workload: The workload definition (provides the character hints
            the instrumentation used).
        characterization: Its characterization (trace + measured metrics).

    Raises:
        AnalysisError: If the measured IPC is not positive.
    """
    trace = characterization.run.trace
    ipc = characterization.metrics.get("ILP", 0.0)
    if ipc <= 0:
        raise AnalysisError(f"{workload.name}: measured IPC must be positive")

    # Engines ran on scaled-down data; extrapolate volumes (instructions,
    # bytes, task launches) back to the declared Table I problem size.
    # The scale anchor is the *input scan* volume so both stack variants
    # of an algorithm extrapolate identically.
    scan_bytes = [
        record.bytes_in
        for record in trace.records
        if record.kind is PhaseKind.MAP
        or (record.kind is PhaseKind.STAGE and record.name.startswith("scan:"))
    ]
    actual_input = max(
        scan_bytes or [max((r.bytes_in for r in trace.records), default=1)]
    )
    scale = max(1.0, workload.declared_bytes / max(1, actual_input))

    profiles = profiles_from_trace(trace, workload.hints)
    instructions = scale * float(sum(p.instructions for p in profiles))
    compute_s = instructions / (ipc * FREQUENCY_HZ * ACTIVE_CORES)

    disk_bytes = scale * sum(
        record.bytes_in for record in trace.records if record.kind in _DISK_KINDS
    )
    # Spark's cold scans (first read of an uncached RDD) also hit disk.
    disk_bytes += scale * sum(
        record.bytes_in
        for record in trace.records
        if record.kind is PhaseKind.STAGE and record.name.startswith("scan:")
    )
    disk_s = disk_bytes / DISK_BYTES_PER_S

    # Scale the byte volume, not the per-transfer latencies (the number
    # of fetch round trips grows with tasks, not with bytes; it is folded
    # into the task-launch/connection overhead below).
    network = GigabitNetwork()
    network_bytes = scale * sum(
        record.bytes_in for record in trace.records if record.kind in _NETWORK_KINDS
    )
    network_s = network.transfer(int(network_bytes))

    # Task-launch cost at real scale: Hadoop launches one JVM per 64 MB
    # input block per job, plus the reducers; launches overlap across the
    # task slots.  (The scaled-down trace's own jvm_starts reflect toy
    # block sizes and would wildly overcount if multiplied linearly.)
    n_jobs = sum(1 for record in trace.records if record.kind is PhaseKind.SETUP)
    tasks_per_job = workload.declared_bytes / _HDFS_BLOCK_BYTES + _REDUCERS_PER_JOB
    startup_s = n_jobs * tasks_per_job * JVM_START_S / ACTIVE_CORES

    return RuntimeEstimate(
        workload=workload.name,
        compute_s=compute_s,
        disk_s=disk_s,
        network_s=network_s,
        startup_s=startup_s,
    )
