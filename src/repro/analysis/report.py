"""Report writer: persist a full reproduction run as files.

Produces a directory a downstream user can archive or diff across
configurations:

* ``report.md`` — every figure/table rendering plus the summary header;
* ``metrics.json`` — the 32×45 matrix (reloadable via
  :meth:`repro.core.dataset.WorkloadMetricMatrix.load`);
* ``metrics.csv`` — the same matrix for spreadsheet tools;
* ``subset.json`` — the recommended simulator subset with its provenance.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.experiment import Experiment
from repro.core.representatives import SelectionPolicy

__all__ = ["write_report"]


def _summary(experiment: Experiment) -> str:
    result = experiment.result
    lines = [
        "# Reproduction report — Characterizing and Subsetting Big Data Workloads",
        "",
        f"- workloads characterized: {len(result.matrix.workloads)}",
        f"- Kaiser PCs retained: {result.pca.n_kept} "
        f"({result.pca.retained_variance:.2%} variance; paper: 8, 91.12 %)",
        f"- BIC-chosen K: {result.bic.best_k} (paper: 7)",
        f"- same-stack share of first merges: "
        f"{experiment.fig1.same_stack_fraction:.0%} (paper: 80 %)",
        f"- Figure 5 direction agreement: "
        f"{experiment.fig5.agreement_fraction:.0%}",
        f"- recommended subset: {', '.join(result.representative_subset)}",
        "",
    ]
    return "\n".join(lines)


def write_report(experiment: Experiment, out_dir: str | Path) -> Path:
    """Write the report bundle into ``out_dir``; returns the directory."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    (out / "report.md").write_text(
        _summary(experiment) + "\n" + experiment.render() + "\n"
    )
    experiment.result.matrix.save(out / "metrics.json")
    (out / "metrics.csv").write_text(experiment.result.matrix.to_csv())
    (out / "dendrogram.newick").write_text(
        experiment.result.dendrogram.to_newick() + "\n"
    )

    result = experiment.result
    subset_payload = {
        "paper": "Characterizing and Subsetting Big Data Workloads (IISWC 2014)",
        "selection_policy": SelectionPolicy.FARTHEST_FROM_CENTER.value,
        "clusters_k": result.clustering.k,
        "retained_pcs": result.pca.n_kept,
        "retained_variance": result.pca.retained_variance,
        "representatives": [
            {
                "workload": rep.workload,
                "cluster_size": rep.cluster_size,
                "members": list(rep.members),
            }
            for rep in result.farthest
        ],
    }
    (out / "subset.json").write_text(json.dumps(subset_payload, indent=2))
    return out
