"""Metric-category sensitivity of the subsetting result.

The paper identifies "the most important microarchitectural-level
metrics" through factor loadings (Section V-B).  This module asks the
complementary question from the subsetting side: *how much does the
recommended subset depend on each Table II metric category?*  For each
category we re-run the pipeline with that category's columns removed and
measure how the representative subset and the clustering move.

A category whose removal barely changes the subset is redundant with the
rest (its information is carried by correlated metrics — the very
redundancy PCA exploits); a category whose removal reshuffles the subset
carries unique discriminating information.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import WorkloadMetricMatrix
from repro.core.subsetting import SubsettingResult, subset_workloads
from repro.errors import AnalysisError
from repro.metrics.catalog import METRIC_NAMES, MetricCategory, metrics_in_category

__all__ = ["CategorySensitivity", "metric_category_sensitivity"]


@dataclass(frozen=True)
class CategorySensitivity:
    """Effect of removing one metric category.

    Attributes:
        category: The removed Table II category.
        n_metrics_removed: How many of the 45 columns were dropped.
        subset_jaccard: Jaccard similarity between the full-pipeline
            subset and the reduced-pipeline subset (1.0 = unchanged).
        cluster_agreement: Rand-index-style pairwise agreement between
            the two clusterings (fraction of workload pairs grouped the
            same way).
        k_delta: Change in the BIC-chosen K.
    """

    category: MetricCategory
    n_metrics_removed: int
    subset_jaccard: float
    cluster_agreement: float
    k_delta: int

    def render(self) -> str:
        return (
            f"{self.category.value:22s} -{self.n_metrics_removed:>2} metrics: "
            f"subset Jaccard {self.subset_jaccard:.2f}, "
            f"cluster agreement {self.cluster_agreement:.2f}, "
            f"ΔK {self.k_delta:+d}"
        )


def _pairwise_agreement(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Rand index: fraction of pairs co-clustered identically."""
    n = len(labels_a)
    if n < 2:
        raise AnalysisError("need at least two workloads to compare clusterings")
    same_a = labels_a[:, None] == labels_a[None, :]
    same_b = labels_b[:, None] == labels_b[None, :]
    upper = np.triu_indices(n, k=1)
    return float(np.mean(same_a[upper] == same_b[upper]))


def metric_category_sensitivity(
    matrix: WorkloadMetricMatrix,
    baseline: SubsettingResult | None = None,
    seed: int = 0,
    selection=None,
) -> tuple[CategorySensitivity, ...]:
    """Measure subsetting sensitivity to each metric category.

    Args:
        matrix: The full workload × 45-metric matrix.
        baseline: A pre-computed full-pipeline result (computed if absent).
        seed: Seed forwarded to the K-means restarts.
        selection: A :class:`repro.subset.BudgetedSelection` over this
            matrix.  When given, the *subset* comparison re-runs the
            budget-aware selector (same costs, same budget) on each
            reduced-column metric space instead of the Table V
            farthest-from-centroid policy; clustering agreement and ΔK
            still come from the K-means pipeline.

    Raises:
        AnalysisError: If ``selection``'s pool does not match the
            matrix's workloads.
    """
    baseline = baseline or subset_workloads(matrix, seed=seed)
    budget_costs = None
    if selection is not None:
        from repro.subset.cost import WorkloadCost

        pool = {entry.workload for entry in selection.ranking}
        if pool != set(matrix.workloads):
            raise AnalysisError(
                "selection pool does not match the matrix's workloads"
            )
        # The ranking carries every pool member's cost, so the reduced
        # pipelines re-select under exactly the conditions the caller's
        # selection was made under.
        budget_costs = tuple(
            WorkloadCost(
                workload=entry.workload,
                seconds=entry.cost_s,
                source="carried",
                raw_units=entry.cost_s,
            )
            for entry in selection.ranking
        )
        baseline_subset = set(selection.workloads)
    else:
        baseline_subset = set(baseline.representative_subset)
    baseline_labels = baseline.clustering.labels

    results: list[CategorySensitivity] = []
    for category in MetricCategory:
        removed = {spec.name for spec in metrics_in_category(category)}
        kept_indices = [
            i for i, name in enumerate(METRIC_NAMES) if name not in removed
        ]
        # Build a reduced-column pipeline by hand: the WorkloadMetricMatrix
        # container requires all 45 columns, so run the stages directly.
        from repro.core.bic import choose_k
        from repro.core.pca import fit_pca
        from repro.core.representatives import (
            SelectionPolicy,
            select_representatives,
        )

        reduced = matrix.values[:, kept_indices]
        pca = fit_pca(reduced)
        n = reduced.shape[0]
        bic = choose_k(pca.scores, k_min=5, k_max=min(12, n - 1), seed=seed)
        if budget_costs is not None:
            from repro.subset.select import select_budgeted

            reduced_selection = select_budgeted(
                pca.scores,
                matrix.workloads,
                budget_costs,
                selection.budget_s,
            )
            reduced_subset = set(reduced_selection.workloads)
        else:
            farthest = select_representatives(
                pca.scores,
                matrix.workloads,
                bic.best,
                SelectionPolicy.FARTHEST_FROM_CENTER,
            )
            reduced_subset = {rep.workload for rep in farthest}

        intersection = len(baseline_subset & reduced_subset)
        union = len(baseline_subset | reduced_subset)
        results.append(
            CategorySensitivity(
                category=category,
                n_metrics_removed=len(removed),
                subset_jaccard=intersection / union if union else 1.0,
                cluster_agreement=_pairwise_agreement(
                    baseline_labels, bic.best.labels
                ),
                k_delta=bic.best_k - baseline.bic.best_k,
            )
        )
    return tuple(results)
