"""Data products for every figure of the paper's evaluation.

Each ``figureN`` function returns a small dataclass holding the numbers
behind the corresponding figure plus a ``render()`` text view, so the
benchmark harness can print the same rows/series the paper plots and the
tests can assert on the underlying values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import WorkloadMetricMatrix
from repro.core.kiviat import KiviatDiagram
from repro.core.subsetting import SubsettingResult
from repro.errors import AnalysisError
from repro.metrics.catalog import METRIC_NAMES

__all__ = [
    "Figure1",
    "figure1",
    "Figure23",
    "figure2_3",
    "Figure4",
    "figure4",
    "Figure5",
    "figure5",
    "FIG5_NEGATIVE_METRICS",
    "FIG5_POSITIVE_METRICS",
    "Figure6",
    "figure6",
]


def _stack_of(workload: str) -> str:
    return "hadoop" if workload.startswith("H-") else "spark"


# ---------------------------------------------------------------------------
# Figure 1: similarity dendrogram
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure1:
    """Figure 1 data: the dendrogram plus Observation 1-5 statistics.

    Attributes:
        result: The full subsetting result (holds the dendrogram).
        first_iteration: Leaf-leaf merges ``(a, b, distance)``.
        same_stack_fraction: Share of first-iteration merges pairing two
            same-stack workloads (paper: 80 %).
        same_algorithm_pairs: First-iteration merges pairing the same
            algorithm across stacks (paper: only Projection).
        hadoop_tightness: Mean cophenetic distance among Hadoop-family
            workloads.
        spark_tightness: Mean cophenetic distance among Spark-family
            workloads (paper: larger — Spark is more diverse).
    """

    result: SubsettingResult
    first_iteration: tuple[tuple[str, str, float], ...]
    same_stack_fraction: float
    same_algorithm_pairs: tuple[tuple[str, str, float], ...]
    hadoop_tightness: float
    spark_tightness: float

    def render(self) -> str:
        lines = [
            "Figure 1 — Similarity of Hadoop (H) and Spark (S) workloads",
            "",
            self.result.dendrogram.render(),
            "",
            f"first-iteration merges: {len(self.first_iteration)}",
            f"same-stack fraction:    {self.same_stack_fraction:.0%} (paper: 80%)",
            f"cross-stack same-algorithm first merges: "
            f"{[f'{a}+{b}' for a, b, _ in self.same_algorithm_pairs]}",
            f"mean cophenetic distance, Hadoop family: {self.hadoop_tightness:.2f}",
            f"mean cophenetic distance, Spark family:  {self.spark_tightness:.2f}",
        ]
        return "\n".join(lines)


def figure1(result: SubsettingResult) -> Figure1:
    """Build the Figure 1 data from a subsetting result."""
    dendrogram = result.dendrogram
    first = tuple(dendrogram.first_iteration_merges())
    if first:
        same_stack = sum(1 for a, b, _ in first if _stack_of(a) == _stack_of(b))
        same_stack_fraction = same_stack / len(first)
    else:
        same_stack_fraction = 0.0
    same_algorithm = tuple(
        (a, b, d) for a, b, d in first if a[2:] == b[2:] and a != b
    )

    def tightness(prefix: str) -> float:
        family = [w for w in dendrogram.labels if w.startswith(prefix)]
        distances = [
            dendrogram.cophenetic_distance(a, b)
            for i, a in enumerate(family)
            for b in family[i + 1 :]
        ]
        return float(np.mean(distances)) if distances else 0.0

    return Figure1(
        result=result,
        first_iteration=first,
        same_stack_fraction=same_stack_fraction,
        same_algorithm_pairs=same_algorithm,
        hadoop_tightness=tightness("H-"),
        spark_tightness=tightness("S-"),
    )


# ---------------------------------------------------------------------------
# Figures 2 and 3: PC-space scatter plots
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure23:
    """Figures 2-3 data: per-workload scores on the first four PCs.

    Attributes:
        workloads: Row labels.
        scores: ``(n, >=4)`` PC-score matrix.
        hadoop_spread: Per-PC standard deviation of the Hadoop family.
        spark_spread: Per-PC standard deviation of the Spark family
            (paper: larger along PC1, PC3, PC4 — Spark covers the space).
        separating_pc: The PC index (0-based) that best separates the two
            stacks (largest |mean difference| / pooled std; the paper
            identifies PC2).
    """

    workloads: tuple[str, ...]
    scores: np.ndarray
    hadoop_spread: np.ndarray
    spark_spread: np.ndarray
    separating_pc: int

    def points(self, pc_x: int, pc_y: int) -> list[tuple[str, float, float]]:
        """The scatter series for one PC pair (0-based indices)."""
        return [
            (w, float(self.scores[i, pc_x]), float(self.scores[i, pc_y]))
            for i, w in enumerate(self.workloads)
        ]

    def render(self) -> str:
        lines = ["Figures 2-3 — workloads in PC space (first four PCs)", ""]
        lines.append(f"{'workload':16s} {'PC1':>8} {'PC2':>8} {'PC3':>8} {'PC4':>8}")
        for i, workload in enumerate(self.workloads):
            row = self.scores[i, :4]
            lines.append(
                f"{workload:16s} " + " ".join(f"{v:8.2f}" for v in row)
            )
        lines.append("")
        lines.append(
            "spread (std) per PC:  Hadoop "
            + " ".join(f"{v:.2f}" for v in self.hadoop_spread[:4])
            + " | Spark "
            + " ".join(f"{v:.2f}" for v in self.spark_spread[:4])
        )
        lines.append(
            f"stack-separating PC: PC{self.separating_pc + 1} (paper: PC2)"
        )
        return "\n".join(lines)


def figure2_3(result: SubsettingResult) -> Figure23:
    """Build the Figures 2-3 data from a subsetting result."""
    scores = result.pca.scores
    workloads = result.matrix.workloads
    hadoop_rows = [i for i, w in enumerate(workloads) if w.startswith("H-")]
    spark_rows = [i for i, w in enumerate(workloads) if w.startswith("S-")]
    if not hadoop_rows or not spark_rows:
        raise AnalysisError("figure2_3 needs both stack families present")
    hadoop = scores[hadoop_rows]
    spark = scores[spark_rows]
    separation = np.abs(hadoop.mean(axis=0) - spark.mean(axis=0)) / (
        0.5 * (hadoop.std(axis=0) + spark.std(axis=0)) + 1e-12
    )
    return Figure23(
        workloads=workloads,
        scores=scores,
        hadoop_spread=hadoop.std(axis=0),
        spark_spread=spark.std(axis=0),
        separating_pc=int(np.argmax(separation)),
    )


# ---------------------------------------------------------------------------
# Figure 4: factor loadings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure4:
    """Figure 4 data: factor loadings of the first four PCs.

    Attributes:
        metric_names: All 45 metric names.
        loadings: ``(45, >=4)`` loading matrix.
    """

    metric_names: tuple[str, ...]
    loadings: np.ndarray

    def dominant_metrics(self, pc: int, top: int = 8) -> list[tuple[str, float]]:
        """The ``top`` strongest-|loading| metrics of a PC (0-based)."""
        column = self.loadings[:, pc]
        order = np.argsort(-np.abs(column))[:top]
        return [(self.metric_names[i], float(column[i])) for i in order]

    def render(self) -> str:
        lines = ["Figure 4 — factor loadings of PC1-PC4", ""]
        header = f"{'metric':16s}" + "".join(f"{f'PC{j+1}':>9}" for j in range(4))
        lines.append(header)
        for i, name in enumerate(self.metric_names):
            row = self.loadings[i, :4]
            lines.append(f"{name:16s}" + "".join(f"{v:9.3f}" for v in row))
        lines.append("")
        for pc in range(4):
            top = self.dominant_metrics(pc, top=6)
            lines.append(
                f"PC{pc + 1} dominated by: "
                + ", ".join(f"{n} ({v:+.2f})" for n, v in top)
            )
        return "\n".join(lines)


def figure4(result: SubsettingResult) -> Figure4:
    """Build the Figure 4 loadings (first four PCs, all 45 metrics)."""
    k = max(4, result.pca.n_kept)
    return Figure4(
        metric_names=METRIC_NAMES,
        loadings=result.pca.loadings(min(k, result.pca.components.shape[1])),
    )


# ---------------------------------------------------------------------------
# Figure 5: metrics differentiating Hadoop and Spark
# ---------------------------------------------------------------------------

#: Metrics the paper reports as *higher for Spark* (negative PC2 weights).
FIG5_NEGATIVE_METRICS: tuple[str, ...] = (
    "L3_MISS",
    "DTLB_MISS",
    "DECODER_STALL",
    "ILD_STALL",
    "UOPS_STALL",
    "RESOURCE_STALL",
    "BRANCH",
    "SNOOP_HIT",
    "SNOOP_HITE",
)

#: Metrics the paper reports as *higher for Hadoop* (positive PC2 weights).
FIG5_POSITIVE_METRICS: tuple[str, ...] = (
    "ILP",
    "DATA_HIT_STLB",
    "FETCH_STALL",
    "UOPS_EXE_CYCLE",
    "STORE",
    "OFFCORE_DATA",
)


@dataclass(frozen=True)
class Figure5:
    """Figure 5 data: Hadoop means normalized to the Spark baseline.

    Attributes:
        ratios: ``{metric: hadoop_mean / spark_mean}`` for the Figure 5
            metric set.
        expected_direction: ``{metric: +1 | -1}`` — +1 when the paper
            shows the metric higher on Hadoop.
        agreement: ``{metric: bool}`` — whether our ratio matches.
        l1i_ratio: H/S ratio of L1I MPKI (paper: ~1.3).
        hadoop_stlb_hit_rate: Data STLB hit rate, Hadoop mean (paper
            61.48 %).
        spark_stlb_hit_rate: Data STLB hit rate, Spark mean (paper
            50.80 %).
    """

    ratios: dict[str, float]
    expected_direction: dict[str, int]
    agreement: dict[str, bool]
    l1i_ratio: float
    hadoop_stlb_hit_rate: float
    spark_stlb_hit_rate: float

    @property
    def agreement_fraction(self) -> float:
        """Share of Figure 5 metrics whose direction matches the paper."""
        return sum(self.agreement.values()) / len(self.agreement)

    def render(self) -> str:
        lines = [
            "Figure 5 — metrics causing Hadoop and Spark to behave differently",
            "(Hadoop mean normalized to Spark mean; paper direction in braces)",
            "",
        ]
        for name, ratio in self.ratios.items():
            direction = "H>S" if self.expected_direction[name] > 0 else "S>H"
            check = "ok" if self.agreement[name] else "DEVIATES"
            lines.append(f"  {name:15s} H/S = {ratio:6.2f}  {{{direction}}}  {check}")
        lines.append("")
        lines.append(f"direction agreement: {self.agreement_fraction:.0%}")
        lines.append(f"L1I MPKI ratio H/S: {self.l1i_ratio:.2f} (paper ~1.3)")
        lines.append(
            f"data STLB hit rate: Hadoop {self.hadoop_stlb_hit_rate:.1%} "
            f"(paper 61.5%), Spark {self.spark_stlb_hit_rate:.1%} (paper 50.8%)"
        )
        return "\n".join(lines)


def figure5(matrix: WorkloadMetricMatrix) -> Figure5:
    """Build the Figure 5 comparison from the raw metric matrix."""
    hadoop_rows = [i for i, w in enumerate(matrix.workloads) if w.startswith("H-")]
    spark_rows = [i for i, w in enumerate(matrix.workloads) if w.startswith("S-")]
    if not hadoop_rows or not spark_rows:
        raise AnalysisError("figure5 needs both stack families present")

    def mean_of(metric: str, rows: list[int]) -> float:
        return float(matrix.column(metric)[rows].mean())

    ratios: dict[str, float] = {}
    expected: dict[str, int] = {}
    agreement: dict[str, bool] = {}
    for name in FIG5_NEGATIVE_METRICS + FIG5_POSITIVE_METRICS:
        hadoop_mean = mean_of(name, hadoop_rows)
        spark_mean = mean_of(name, spark_rows)
        ratio = hadoop_mean / spark_mean if spark_mean else float("inf")
        ratios[name] = ratio
        expected[name] = 1 if name in FIG5_POSITIVE_METRICS else -1
        agreement[name] = (ratio > 1.0) == (expected[name] > 0)

    def stlb_hit_rate(rows: list[int]) -> float:
        hits = float(matrix.column("DATA_HIT_STLB")[rows].mean())
        walks = float(matrix.column("DTLB_MISS")[rows].mean())
        total = hits + walks
        return hits / total if total else 0.0

    return Figure5(
        ratios=ratios,
        expected_direction=expected,
        agreement=agreement,
        l1i_ratio=mean_of("L1I_MISS", hadoop_rows) / mean_of("L1I_MISS", spark_rows),
        hadoop_stlb_hit_rate=stlb_hit_rate(hadoop_rows),
        spark_stlb_hit_rate=stlb_hit_rate(spark_rows),
    )


# ---------------------------------------------------------------------------
# Figure 6: Kiviat diagrams of the representative subset
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure6:
    """Figure 6 data: one Kiviat diagram per representative workload."""

    diagrams: tuple[KiviatDiagram, ...]

    @property
    def dominant_axes(self) -> dict[str, str]:
        """Which PC dominates each representative (diversity evidence)."""
        return {d.workload: d.dominant_axis for d in self.diagrams}

    def render(self) -> str:
        parts = ["Figure 6 — Kiviat diagrams of the representative workloads", ""]
        parts.extend(diagram.render() for diagram in self.diagrams)
        parts.append("")
        parts.append(f"dominant axes: {self.dominant_axes}")
        return "\n\n".join(parts)


def figure6(result: SubsettingResult) -> Figure6:
    """Build the Figure 6 Kiviat set from a subsetting result."""
    return Figure6(diagrams=result.kiviat)
