"""Greedy submodular budget-aware subset selection.

The paper's ``k=`` path answers "which K workloads are representative?";
this module answers the operational question "which workloads should I
*run* when I can afford ``budget`` seconds of simulation?".

**Objective.**  Representativity is facility-location coverage of the
PCA-reduced metric space.  With pairwise Euclidean distances ``d(i, j)``
over the z-scored PC scores and similarities ``sim(i, j) = 1 - d(i, j) /
d_max``::

    coverage(S) = mean_i  max_{j in S} sim(i, j)

``coverage({}) = 0`` and ``coverage(all) = 1`` (every workload covers
itself at similarity 1).  The function is monotone and submodular, so
the classic greedy guarantees apply and lazy evaluation (CELF) is sound:
a candidate's cached marginal gain only ever shrinks, so a stale heap
entry is an upper bound.

**Budget handling.**  The greedy produces a *budget-independent ranking*
of the whole pool by marginal-gain-per-cost; a budget then selects the
longest affordable prefix of that ranking.  Prefixes nest, which buys
three properties the adaptive loop and the evaluation harness rely on:

- selections at growing budgets are supersets of each other, so
  coverage is monotone non-decreasing in budget *by construction*;
- re-budgeting is O(n) — no re-ranking;
- selection is deterministic: ties in the ranking break by (lower cost,
  workload name), never by float identity or dict order.

Raises :class:`~repro.errors.SubsetError` for budgets that are not
positive finite numbers or cannot afford even the cheapest workload.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SubsetError
from repro.obs.metrics import REGISTRY
from repro.subset.cost import WorkloadCost

__all__ = [
    "RankedCandidate",
    "BudgetedSelection",
    "similarity_matrix",
    "coverage_of",
    "greedy_ranking",
    "select_budgeted",
]

_SUBSET_COVERAGE = REGISTRY.gauge(
    "repro_subset_coverage",
    "PC-space facility-location coverage of the last budgeted selection",
)
_SUBSET_SIZE = REGISTRY.gauge(
    "repro_subset_size", "Workloads in the last budgeted selection"
)
_SUBSET_COST = REGISTRY.gauge(
    "repro_subset_cost_seconds",
    "Total simulated-runtime cost of the last budgeted selection",
)
_SUBSET_BUDGET = REGISTRY.gauge(
    "repro_subset_budget_seconds",
    "Budget the last budgeted selection was computed under",
)
_SUBSET_SELECTIONS = REGISTRY.counter(
    "repro_subset_selections_total", "Budgeted subset selections computed"
)


@dataclass(frozen=True)
class RankedCandidate:
    """One pool entry in greedy order.

    Attributes:
        workload: Workload label.
        index: Row index into the point/pool arrays.
        cost_s: Its simulated-runtime cost.
        gain: Marginal coverage gain when the greedy admitted it.
        cumulative_cost_s: Pool cost up to and including this entry.
        cumulative_coverage: Coverage of the ranking prefix ending here.
    """

    workload: str
    index: int
    cost_s: float
    gain: float
    cumulative_cost_s: float
    cumulative_coverage: float


@dataclass(frozen=True)
class BudgetedSelection:
    """A budget's worth of the greedy ranking.

    Attributes:
        picks: The selected prefix, in greedy order.
        ranking: The full pool ranking (budget-independent); the picks
            are always its affordable prefix, so growing the budget only
            ever extends a selection.
        budget_s: The budget selected under.
        total_pool_cost_s: Cost of running the whole pool.
        coverage: Facility-location coverage of the selection.
    """

    picks: tuple[RankedCandidate, ...]
    ranking: tuple[RankedCandidate, ...]
    budget_s: float
    total_pool_cost_s: float
    coverage: float

    @property
    def workloads(self) -> tuple[str, ...]:
        """Selected workload labels, in greedy order."""
        return tuple(pick.workload for pick in self.picks)

    @property
    def indices(self) -> tuple[int, ...]:
        return tuple(pick.index for pick in self.picks)

    @property
    def cost_s(self) -> float:
        """Total cost of the selection (never exceeds the budget)."""
        return self.picks[-1].cumulative_cost_s if self.picks else 0.0

    @property
    def n_pool(self) -> int:
        return len(self.ranking)

    def to_dict(self) -> dict:
        """JSON-safe summary (the service response body)."""
        return {
            "budget_s": self.budget_s,
            "coverage": self.coverage,
            "cost_s": self.cost_s,
            "n_selected": len(self.picks),
            "n_pool": self.n_pool,
            "total_pool_cost_s": self.total_pool_cost_s,
            "selected": [
                {
                    "workload": pick.workload,
                    "cost_s": pick.cost_s,
                    "gain": pick.gain,
                    "cumulative_cost_s": pick.cumulative_cost_s,
                    "cumulative_coverage": pick.cumulative_coverage,
                }
                for pick in self.picks
            ],
        }


def similarity_matrix(points: np.ndarray) -> np.ndarray:
    """Pairwise ``1 - d/d_max`` similarities over PC-space points.

    A degenerate pool (all points identical) gets all-ones similarity:
    any single workload covers everything.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] < 1:
        raise SubsetError(f"expected a 2-D point matrix, got shape {points.shape}")
    deltas = points[:, None, :] - points[None, :, :]
    distances = np.sqrt(np.sum(deltas * deltas, axis=2))
    d_max = float(distances.max())
    if d_max <= 0.0:
        return np.ones_like(distances)
    return 1.0 - distances / d_max


def coverage_of(sim: np.ndarray, indices) -> float:
    """Facility-location coverage of the workloads at ``indices``."""
    chosen = list(indices)
    if not chosen:
        return 0.0
    return float(np.mean(np.max(sim[:, chosen], axis=1)))


def _validated_costs(
    labels: tuple[str, ...], costs: tuple[WorkloadCost, ...]
) -> np.ndarray:
    by_name = {cost.workload: cost for cost in costs}
    if len(by_name) != len(costs):
        raise SubsetError("duplicate workloads in cost table")
    missing = [label for label in labels if label not in by_name]
    if missing:
        raise SubsetError(f"costs missing for workloads: {missing}")
    seconds = np.array([by_name[label].seconds for label in labels], dtype=float)
    if not np.all(np.isfinite(seconds)) or np.any(seconds <= 0):
        raise SubsetError("every workload cost must be positive and finite")
    return seconds


def greedy_ranking(
    points: np.ndarray,
    labels: tuple[str, ...],
    costs: tuple[WorkloadCost, ...],
) -> tuple[RankedCandidate, ...]:
    """Rank the whole pool by marginal coverage gain per unit cost.

    Lazy (CELF) evaluation: stale gains are upper bounds under
    submodularity, so a popped candidate is only re-scored when its
    cached gain might still beat the runner-up.  Ties break by
    ``(higher ratio, lower cost, workload name)`` — fully deterministic.
    """
    points = np.asarray(points, dtype=float)
    if points.shape[0] != len(labels):
        raise SubsetError(
            f"{len(labels)} labels but {points.shape[0]} point rows"
        )
    seconds = _validated_costs(labels, costs)
    sim = similarity_matrix(points)
    n = sim.shape[0]

    best = np.zeros(n)  # max similarity to the selected set, per workload
    # Heap entries: (-ratio, cost, name, index, gain, revision). The
    # revision is the selection size the gain was computed at; an entry
    # from the current revision is exact and can be admitted directly.
    heap: list[tuple] = []
    for j in range(n):
        gain = float(np.mean(sim[:, j]))
        heapq.heappush(
            heap, (-gain / seconds[j], seconds[j], labels[j], j, gain, 0)
        )

    ranking: list[RankedCandidate] = []
    cumulative_cost = 0.0
    coverage = 0.0
    revision = 0
    while heap:
        neg_ratio, cost_j, name, j, gain, at = heapq.heappop(heap)
        if at != revision:
            gain = float(np.mean(np.maximum(sim[:, j] - best, 0.0)))
            heapq.heappush(
                heap, (-gain / cost_j, cost_j, name, j, gain, revision)
            )
            continue
        best = np.maximum(best, sim[:, j])
        cumulative_cost += cost_j
        coverage += gain
        revision += 1
        ranking.append(
            RankedCandidate(
                workload=name,
                index=j,
                cost_s=float(cost_j),
                gain=gain,
                cumulative_cost_s=cumulative_cost,
                cumulative_coverage=min(1.0, coverage),
            )
        )
    return tuple(ranking)


def select_budgeted(
    points: np.ndarray,
    labels: tuple[str, ...],
    costs: tuple[WorkloadCost, ...],
    budget_s: float,
    ranking: tuple[RankedCandidate, ...] | None = None,
) -> BudgetedSelection:
    """Select the longest affordable prefix of the greedy ranking.

    Args:
        points: ``(n, k)`` PC-space coordinates (one row per workload).
        labels: Workload labels matching the rows.
        costs: One :class:`WorkloadCost` per label (any order).
        budget_s: Simulation-time budget in seconds.
        ranking: A precomputed ranking for these exact points/costs
            (the adaptive loop reuses one across budgets); computed
            when absent.

    Raises:
        SubsetError: If the budget is not a positive finite number, or
            is smaller than the cheapest workload's cost.
    """
    if not isinstance(budget_s, (int, float)) or isinstance(budget_s, bool):
        raise SubsetError(f"budget must be a number, got {budget_s!r}")
    budget_s = float(budget_s)
    if not math.isfinite(budget_s) or budget_s <= 0:
        raise SubsetError(
            f"budget must be a positive number of seconds, got {budget_s!r}"
        )
    if ranking is None:
        ranking = greedy_ranking(points, labels, costs)
    if not ranking:
        raise SubsetError("cannot select from an empty pool")

    cheapest = min(entry.cost_s for entry in ranking)
    if budget_s < cheapest:
        raise SubsetError(
            f"budget {budget_s:g}s is smaller than the cheapest workload "
            f"({cheapest:g}s) — nothing can be selected"
        )

    picks: list[RankedCandidate] = []
    for entry in ranking:
        if entry.cumulative_cost_s > budget_s:
            break
        picks.append(entry)

    total_pool_cost = ranking[-1].cumulative_cost_s
    coverage = picks[-1].cumulative_coverage if picks else 0.0
    selection = BudgetedSelection(
        picks=tuple(picks),
        ranking=ranking,
        budget_s=budget_s,
        total_pool_cost_s=total_pool_cost,
        coverage=coverage,
    )
    _SUBSET_SELECTIONS.inc()
    _SUBSET_COVERAGE.set(selection.coverage)
    _SUBSET_SIZE.set(len(selection.picks))
    _SUBSET_COST.set(selection.cost_s)
    _SUBSET_BUDGET.set(budget_s)
    return selection
