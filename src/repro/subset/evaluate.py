"""Validation harness: does budgeted selection actually earn its keep?

For a sweep of budgets (fractions of the whole pool's cost), the harness
compares the budgeted selection's PC-space coverage against two
baselines at the *same* budget:

- **Random** — the mean and max over ``n_random`` random "affordable
  fills": shuffle the pool, admit workloads in shuffled order while they
  fit.  This is what you get from picking workloads arbitrarily until
  the simulation window is full.
- **Farthest-from-centroid (FFC)** — the paper's recommended subset, in
  its largest-cluster-first order, truncated to the affordable prefix.
  This is the strongest cost-oblivious baseline the repo already ships.

The harness also re-runs the selection from scratch and checks the two
subsets are bit-identical — the determinism half of the CI gate.

Everything returned is JSON-safe; ``tools/bench_subset.py`` writes it to
``BENCH_subset.json`` and ``--check`` asserts the gates.
"""

from __future__ import annotations

import random

import numpy as np

from repro.errors import SubsetError
from repro.subset.cost import WorkloadCost
from repro.subset.select import (
    coverage_of,
    greedy_ranking,
    select_budgeted,
    similarity_matrix,
)

__all__ = ["DEFAULT_FRACTIONS", "evaluate_sweep"]

#: The ISSUE's budget sweep: 10 % to 80 % of total pool cost.
DEFAULT_FRACTIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)

#: Coverage slack for the match-or-beat FFC gate (float accumulation
#: noise only; a real loss to FFC is orders of magnitude larger).
_MATCH_EPS = 1e-9


def _affordable_fill(
    order: list[int], seconds: np.ndarray, budget_s: float
) -> list[int]:
    """Admit pool indices in ``order`` while they still fit the budget."""
    chosen: list[int] = []
    spent = 0.0
    for j in order:
        if spent + seconds[j] <= budget_s:
            chosen.append(j)
            spent += seconds[j]
    return chosen


def _random_baseline(
    rng: random.Random,
    n: int,
    seconds: np.ndarray,
    sim: np.ndarray,
    budget_s: float,
    n_random: int,
) -> tuple[float, float]:
    """(mean, max) coverage of ``n_random`` random affordable fills."""
    coverages = []
    for _ in range(n_random):
        order = rng.sample(range(n), n)
        coverages.append(coverage_of(sim, _affordable_fill(order, seconds, budget_s)))
    return float(np.mean(coverages)), float(max(coverages))


def evaluate_sweep(
    points: np.ndarray,
    labels: tuple[str, ...],
    costs: tuple[WorkloadCost, ...],
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    n_random: int = 20,
    seed: int = 0,
    ffc_order: tuple[str, ...] = (),
) -> dict:
    """Sweep budgets and score the budgeted selector against baselines.

    Args:
        points: ``(n, k)`` PC-space coordinates.
        labels: Workload labels matching the rows.
        costs: One cost per label.
        fractions: Budget sweep, as fractions of total pool cost.
        n_random: Random affordable fills per budget.
        seed: Seed for the random baseline.
        ffc_order: The paper's farthest-from-centroid subset in its
            largest-cluster-first order; the FFC baseline is skipped
            when empty.

    Returns:
        A JSON-safe dict: per-budget rows under ``"budgets"`` and gate
        booleans under ``"summary"``.
    """
    points = np.asarray(points, dtype=float)
    ranking = greedy_ranking(points, labels, costs)
    ranking_again = greedy_ranking(points, labels, costs)
    deterministic = ranking == ranking_again

    by_label = {label: i for i, label in enumerate(labels)}
    unknown = [name for name in ffc_order if name not in by_label]
    if unknown:
        raise SubsetError(f"FFC order names unknown workloads: {unknown}")
    ffc_indices = [by_label[name] for name in ffc_order]

    cost_by_name = {cost.workload: cost.seconds for cost in costs}
    seconds = np.array([cost_by_name[label] for label in labels])
    sim = similarity_matrix(points)
    total_cost = float(ranking[-1].cumulative_cost_s)
    cheapest = float(min(entry.cost_s for entry in ranking))
    rng = random.Random(seed)

    rows = []
    all_dominate = True
    all_match_ffc = True
    for fraction in fractions:
        budget_s = fraction * total_cost
        if budget_s < cheapest:
            # An unaffordable sweep point gates nothing; record it so
            # the bench output shows the sweep was not silently wider
            # than what actually ran.
            rows.append(
                {"fraction": fraction, "budget_s": budget_s, "skipped": True}
            )
            continue
        selection = select_budgeted(points, labels, costs, budget_s, ranking=ranking)
        rerun = select_budgeted(points, labels, costs, budget_s)
        deterministic = deterministic and rerun.workloads == selection.workloads

        random_mean, random_max = _random_baseline(
            rng, len(labels), seconds, sim, budget_s, n_random
        )
        dominates = selection.coverage > random_mean
        all_dominate = all_dominate and dominates

        row = {
            "fraction": fraction,
            "budget_s": budget_s,
            "skipped": False,
            "selected": list(selection.workloads),
            "n_selected": len(selection.picks),
            "coverage": selection.coverage,
            "cost_s": selection.cost_s,
            "random_mean": random_mean,
            "random_max": random_max,
            "dominates_random": dominates,
        }
        if ffc_indices:
            ffc_prefix = _affordable_fill(ffc_indices, seconds, budget_s)
            ffc_coverage = coverage_of(sim, ffc_prefix)
            matches = selection.coverage + _MATCH_EPS >= ffc_coverage
            all_match_ffc = all_match_ffc and matches
            row.update(
                {
                    "ffc_selected": [labels[j] for j in ffc_prefix],
                    "ffc_coverage": ffc_coverage,
                    "matches_ffc": matches,
                }
            )
        rows.append(row)

    swept = [row for row in rows if not row["skipped"]]
    return {
        "n_pool": len(labels),
        "total_pool_cost_s": total_cost,
        "n_random": n_random,
        "seed": seed,
        "ffc_order": list(ffc_order),
        "budgets": rows,
        "summary": {
            "n_swept": len(swept),
            "all_dominate_random": all_dominate and bool(swept),
            "all_match_ffc": all_match_ffc and bool(ffc_order),
            "deterministic": bool(deterministic),
            "mean_coverage_lift": (
                float(
                    np.mean(
                        [row["coverage"] - row["random_mean"] for row in swept]
                    )
                )
                if swept
                else 0.0
            ),
        },
    }
