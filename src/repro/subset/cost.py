"""Per-workload simulated-runtime cost model.

The budget in ``/subset?budget=<seconds>`` is *simulation time*: how long
the testbed takes to characterize a workload.  To select under that
budget the engine needs a cost per workload, derived from artifacts we
already store rather than from extra runs:

- **Timeline telemetry** (preferred).  A characterization collected with
  the :mod:`repro.obs.timeline` sampler carries a monotone-clock series
  whose span *is* the measured wall time of the run.  Cost source:
  ``"timeline"``.
- **Calibrated op-count fallback**.  Without a timeline, cost is
  estimated from the run's engine trace — records moved, bytes moved and
  phase count, each weighted by a constant-work coefficient.  When at
  least one workload in the batch *does* have a measured cost, the
  fallback is rescaled so the two populations agree in the median
  (WAter-style runtime-profile feedback); otherwise the raw coefficients
  stand.  Cost source: ``"op-count"``.

Costs are plain data (:class:`WorkloadCost`) and persist in the
:class:`~repro.service.store.ResultStore` under a key derived from the
collection parameters, so re-selection across processes (the service,
the CLI, the benchmark harness) never re-derives them from hydrated
runs.  The store is duck-typed here — this module never imports the
service layer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.testbed import WorkloadCharacterization
from repro.errors import SubsetError

__all__ = [
    "WorkloadCost",
    "estimate_cost",
    "estimate_costs",
    "cost_store_key",
    "persist_costs",
    "load_costs",
]

#: Constant-work coefficients of the op-count fallback: seconds of
#: simulation per record through a phase boundary, per byte moved, and
#: per phase record (fixed dispatch overhead).  Absolute values matter
#: less than ratios — with any measured cost present the whole estimate
#: is rescaled to the measured population.
SECONDS_PER_RECORD = 2.0e-6
SECONDS_PER_BYTE = 4.0e-9
SECONDS_PER_PHASE = 1.5e-3

#: No workload costs less than this; guards ratio math against a
#: degenerate trace (zero records, zero bytes).
MIN_COST_S = 1e-6

_COST_PAYLOAD_KIND = "subset-costs"


@dataclass(frozen=True)
class WorkloadCost:
    """One workload's simulated-runtime estimate.

    Attributes:
        workload: Workload label.
        seconds: Estimated (or measured) simulation seconds.
        source: ``"timeline"`` for measured costs, ``"op-count"`` for
            the calibrated trace-volume fallback.
        raw_units: The uncalibrated fallback estimate in seconds —
            kept on both sources so measured/estimated populations can
            be compared and recalibrated later.
    """

    workload: str
    seconds: float
    source: str
    raw_units: float

    @property
    def measured(self) -> bool:
        return self.source == "timeline"

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "seconds": self.seconds,
            "source": self.source,
            "raw_units": self.raw_units,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadCost":
        return cls(
            workload=str(payload["workload"]),
            seconds=float(payload["seconds"]),
            source=str(payload["source"]),
            raw_units=float(payload["raw_units"]),
        )


def _op_units(characterization: WorkloadCharacterization) -> float:
    """The raw (uncalibrated) op-count estimate in seconds."""
    records = characterization.run.trace.records
    moved_records = sum(r.records_in + r.records_out for r in records)
    moved_bytes = sum(r.bytes_in + r.bytes_out for r in records)
    return (
        moved_records * SECONDS_PER_RECORD
        + moved_bytes * SECONDS_PER_BYTE
        + len(records) * SECONDS_PER_PHASE
    )


def _measured_seconds(characterization: WorkloadCharacterization) -> float | None:
    """Timeline-measured wall seconds, or ``None`` without telemetry."""
    series = characterization.timeline
    if series is None or len(series) == 0:
        return None
    duration_ms = series.duration_ms
    if duration_ms <= 0:
        return None
    return duration_ms / 1e3


def estimate_cost(characterization: WorkloadCharacterization) -> WorkloadCost:
    """One workload's cost, in isolation (no cross-workload calibration)."""
    raw = max(MIN_COST_S, _op_units(characterization))
    measured = _measured_seconds(characterization)
    if measured is not None:
        return WorkloadCost(
            workload=characterization.name,
            seconds=max(MIN_COST_S, measured),
            source="timeline",
            raw_units=raw,
        )
    return WorkloadCost(
        workload=characterization.name,
        seconds=raw,
        source="op-count",
        raw_units=raw,
    )


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def estimate_costs(
    characterizations: tuple[WorkloadCharacterization, ...] | list,
) -> tuple[WorkloadCost, ...]:
    """Costs for a batch, calibrating the fallback against measured runs.

    Workloads with timeline telemetry keep their measured seconds.  The
    op-count fallback for the rest is multiplied by the median ratio of
    ``measured / raw`` over the measured population, so mixed batches
    (some collected with sampling, some hydrated from older stores) live
    on one scale.

    Raises:
        SubsetError: On an empty batch or duplicate workload names.
    """
    if not characterizations:
        raise SubsetError("cannot estimate costs for an empty batch")
    names = [c.name for c in characterizations]
    if len(set(names)) != len(names):
        raise SubsetError("duplicate workload names in cost batch")

    costs = [estimate_cost(c) for c in characterizations]
    ratios = [c.seconds / c.raw_units for c in costs if c.measured]
    if ratios and any(not c.measured for c in costs):
        alpha = _median(ratios)
        costs = [
            c
            if c.measured
            else replace(c, seconds=max(MIN_COST_S, c.raw_units * alpha))
            for c in costs
        ]
    return tuple(costs)


# -- persistence ---------------------------------------------------------------


def cost_store_key(suite_key: str) -> str:
    """The store key of a cost table, derived from the suite entry's key
    (:func:`repro.cluster.collection.suite_store_key`) so costs follow
    exactly the collection they were estimated from."""
    return f"subsetcost-{suite_key}"


def persist_costs(store, suite_key: str, costs: tuple[WorkloadCost, ...]) -> str:
    """Write a cost table through a ResultStore; returns its content hash."""
    return store.put(
        cost_store_key(suite_key),
        {
            "kind": _COST_PAYLOAD_KIND,
            "suite_key": suite_key,
            "costs": [cost.to_dict() for cost in costs],
        },
    )


def load_costs(store, suite_key: str) -> tuple[WorkloadCost, ...] | None:
    """The persisted cost table for ``suite_key``, or ``None`` on a miss."""
    payload = store.get(cost_store_key(suite_key), touch=False)
    if payload is None or payload.get("kind") != _COST_PAYLOAD_KIND:
        return None
    return tuple(WorkloadCost.from_dict(row) for row in payload["costs"])
