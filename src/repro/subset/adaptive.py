"""Adaptive re-selection as characterizations land.

A long-lived collection (the service's job manager, an overnight sweep)
produces characterizations one at a time; waiting for all of them before
choosing what to simulate wastes the budget window.
:class:`AdaptiveSubsetter` keeps a running pool and re-selects on
demand:

- **History reuse** — a workload observed once keeps its cost across
  re-observations, and a *measured* (timeline) cost is never downgraded
  to an op-count estimate by a later telemetry-free arrival.
- **Incremental scoring** — new arrivals are projected into the PCA
  space fitted on the earlier pool (``PcaResult.project``), so each
  arrival costs one matrix-vector product, not a refit.  The PCA is
  refitted (and every row re-scored) only when the pool has outgrown
  the fitted basis — by default when it doubles — or on an explicit
  :meth:`refit`.
- **Deterministic revisions** — the same observation sequence always
  yields the same selections; each :meth:`selection` call that sees new
  data bumps ``revision`` and reports which workloads entered and left.

The selector itself is :func:`repro.subset.select.select_budgeted`; the
adaptive layer only manages the pool and the score cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.testbed import WorkloadCharacterization
from repro.core.pca import PcaResult, fit_pca
from repro.errors import SubsetError
from repro.metrics.catalog import METRIC_NAMES
from repro.obs.metrics import REGISTRY
from repro.subset.cost import WorkloadCost, estimate_cost
from repro.subset.select import BudgetedSelection, select_budgeted

__all__ = ["AdaptiveSelection", "AdaptiveSubsetter"]

#: Pool growth factor that forces a PCA refit: the basis fitted on ``m``
#: rows serves incremental projections until the pool reaches ``2 m``.
_REFIT_GROWTH = 2.0

#: PCA needs at least this many rows; selections below it raise.
_MIN_POOL = 3

_REVISIONS = REGISTRY.counter(
    "repro_subset_revisions_total",
    "Adaptive subset re-selections that saw new data",
)


@dataclass(frozen=True)
class AdaptiveSelection:
    """One adaptive revision's outcome.

    Attributes:
        revision: Monotone revision counter (1 = first selection).
        selection: The budgeted selection over the current pool.
        entered: Workloads newly selected relative to the previous
            revision (everything, on revision 1).
        left: Workloads dropped relative to the previous revision.
        measured_costs: Pool entries carrying measured (timeline) costs.
    """

    revision: int
    selection: BudgetedSelection
    entered: tuple[str, ...]
    left: tuple[str, ...]
    measured_costs: int

    @property
    def changed(self) -> bool:
        return bool(self.entered or self.left)


class AdaptiveSubsetter:
    """A budget-holding pool that re-selects as characterizations land."""

    def __init__(self, budget_s: float, refit_growth: float = _REFIT_GROWTH):
        if not np.isfinite(budget_s) or budget_s <= 0:
            raise SubsetError(
                f"budget must be a positive number of seconds, got {budget_s!r}"
            )
        self.budget_s = float(budget_s)
        self._refit_growth = max(1.0, float(refit_growth))
        self._names: list[str] = []
        self._rows: list[np.ndarray] = []
        self._costs: dict[str, WorkloadCost] = {}
        self._pca: PcaResult | None = None
        self._fitted_rows = 0
        self._scores: np.ndarray | None = None
        self._dirty = True
        self._revision = 0
        self._current: AdaptiveSelection | None = None

    # -- pool -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._names)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._names)

    @property
    def revision(self) -> int:
        return self._revision

    def observe(
        self,
        characterization: WorkloadCharacterization,
        cost: WorkloadCost | None = None,
    ) -> None:
        """Add (or update) one characterization in the pool."""
        row = np.array(
            [characterization.metrics[name] for name in METRIC_NAMES],
            dtype=float,
        )
        self.observe_row(
            characterization.name, row, cost or estimate_cost(characterization)
        )

    def observe_row(self, name: str, row: np.ndarray, cost: WorkloadCost) -> None:
        """Add one pre-built metric row; cost follows the history-reuse rule."""
        row = np.asarray(row, dtype=float)
        if row.shape != (len(METRIC_NAMES),):
            raise SubsetError(
                f"{name}: expected a {len(METRIC_NAMES)}-metric row, "
                f"got shape {row.shape}"
            )
        known = self._costs.get(name)
        if known is None or (cost.measured and not known.measured):
            self._costs[name] = WorkloadCost(
                workload=name,
                seconds=cost.seconds,
                source=cost.source,
                raw_units=cost.raw_units,
            )
        if name in self._names:
            self._rows[self._names.index(name)] = row
        else:
            self._names.append(name)
            self._rows.append(row)
        self._dirty = True

    # -- scoring --------------------------------------------------------------

    def refit(self) -> None:
        """Force a full PCA refit on the next selection."""
        self._pca = None
        self._fitted_rows = 0
        self._dirty = True

    def _ensure_scores(self) -> np.ndarray:
        matrix = np.vstack(self._rows)
        needs_refit = (
            self._pca is None
            or len(self._rows) >= self._refit_growth * self._fitted_rows
        )
        if needs_refit:
            self._pca = fit_pca(matrix)
            self._fitted_rows = len(self._rows)
            self._scores = self._pca.scores
        else:
            # Incremental path: project every row through the frozen
            # basis (rows the basis was fitted on project to their
            # original scores, so this is consistent, not approximate
            # bookkeeping on top of stale coordinates).
            self._scores = self._pca.project(matrix)
        return self._scores

    # -- selection ------------------------------------------------------------

    def selection(self) -> AdaptiveSelection:
        """The current budgeted selection, recomputed only when dirty.

        Raises:
            SubsetError: With fewer than three observed workloads (PCA
                needs three samples) or an unaffordable budget.
        """
        if not self._dirty and self._current is not None:
            return self._current
        if len(self._names) < _MIN_POOL:
            raise SubsetError(
                f"adaptive selection needs at least {_MIN_POOL} observed "
                f"workloads, have {len(self._names)}"
            )
        scores = self._ensure_scores()
        labels = tuple(self._names)
        costs = tuple(self._costs[name] for name in labels)
        selected = select_budgeted(scores, labels, costs, self.budget_s)

        previous = (
            set(self._current.selection.workloads) if self._current else set()
        )
        current = set(selected.workloads)
        self._revision += 1
        _REVISIONS.inc()
        self._current = AdaptiveSelection(
            revision=self._revision,
            selection=selected,
            entered=tuple(sorted(current - previous)),
            left=tuple(sorted(previous - current)),
            measured_costs=sum(1 for cost in costs if cost.measured),
        )
        self._dirty = False
        return self._current
