"""Budget-aware adaptive subsetting engine.

The paper's subsetting pipeline (:mod:`repro.core.subsetting`) answers
"which K workloads represent the suite?".  This package answers the
operational follow-up: **"which workloads should I actually run when I
can only afford ``budget`` seconds of simulation?"** — the WAter-style
workload-compression question.

Layers, bottom up:

- :mod:`repro.subset.cost` — per-workload simulated-runtime costs from
  stored characterizations (timeline telemetry when present, calibrated
  op-count fallback otherwise), persisted through the ResultStore.
- :mod:`repro.subset.select` — greedy submodular (facility-location)
  selection per unit cost with CELF lazy evaluation, deterministic
  tie-breaking and nested budget prefixes.
- :mod:`repro.subset.adaptive` — re-selection as characterizations
  land, with measured-cost history reuse and incremental PCA scoring.
- :mod:`repro.subset.evaluate` — the budget-sweep harness backing
  ``tools/bench_subset.py`` and the CI gate.
"""

from repro.subset.adaptive import AdaptiveSelection, AdaptiveSubsetter
from repro.subset.cost import (
    WorkloadCost,
    cost_store_key,
    estimate_cost,
    estimate_costs,
    load_costs,
    persist_costs,
)
from repro.subset.evaluate import DEFAULT_FRACTIONS, evaluate_sweep
from repro.subset.select import (
    BudgetedSelection,
    RankedCandidate,
    coverage_of,
    greedy_ranking,
    select_budgeted,
    similarity_matrix,
)

__all__ = [
    "AdaptiveSelection",
    "AdaptiveSubsetter",
    "WorkloadCost",
    "cost_store_key",
    "estimate_cost",
    "estimate_costs",
    "load_costs",
    "persist_costs",
    "DEFAULT_FRACTIONS",
    "evaluate_sweep",
    "BudgetedSelection",
    "RankedCandidate",
    "coverage_of",
    "greedy_ranking",
    "select_budgeted",
    "similarity_matrix",
]
