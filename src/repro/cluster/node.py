"""Cluster node model (Table III hardware).

Each node of the testbed is a two-socket Xeon E5645 machine with 32 GB of
DDR3.  A :class:`Node` owns a :class:`~repro.arch.processor.Processor`
instance (the measured socket) plus identity and memory metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.processor import Processor, ProcessorConfig
from repro.errors import ConfigurationError

__all__ = ["NodeConfig", "Node"]

GiB = 1 << 30


@dataclass(frozen=True)
class NodeConfig:
    """Per-node hardware configuration (Table III)."""

    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    memory_bytes: int = 32 * GiB
    os_name: str = "CentOS 6.4"
    kernel_version: str = "3.11.10"
    jdk_version: str = "1.7.0"

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ConfigurationError("memory_bytes must be positive")


class Node:
    """One cluster machine: identity + simulated processor."""

    def __init__(self, hostname: str, config: NodeConfig | None = None) -> None:
        self.hostname = hostname
        self.config = config or NodeConfig()
        self.processor = Processor(self.config.processor)

    @property
    def total_cores(self) -> int:
        return self.processor.total_cores

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.hostname}, {self.total_cores} cores)"
