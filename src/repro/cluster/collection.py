"""Suite-level data collection with caching.

Characterizing all 32 workloads means running every engine and simulating
every phase — expensive enough that the analysis layer, the test suite
and every benchmark should share one result.  :func:`characterize_suite`
memoises in process and optionally persists the metric matrix as JSON
keyed by the collection parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.cluster.testbed import Cluster, MeasurementConfig, WorkloadCharacterization
from repro.core.dataset import WorkloadMetricMatrix
from repro.errors import AnalysisError
from repro.workloads.base import RunContext, Workload
from repro.workloads.suite import SUITE

__all__ = ["CollectionConfig", "SuiteCharacterization", "characterize_suite"]


@dataclass(frozen=True)
class CollectionConfig:
    """Everything that determines a suite characterization."""

    scale: float = 1.0
    seed: int = 42
    measurement: MeasurementConfig = MeasurementConfig()

    def cache_key(self) -> str:
        m = self.measurement
        return (
            f"suite-s{self.scale}-seed{self.seed}-n{m.slaves_measured}"
            f"-c{m.active_cores}-o{m.ops_per_core}-w{m.warmup_fraction}"
            f"-r{m.perf_repeats}"
        )


@dataclass(frozen=True)
class SuiteCharacterization:
    """The collected suite data.

    Attributes:
        matrix: The 32×45 workload/metric matrix.
        characterizations: Per-workload details, or empty when the matrix
            was loaded from a persistent cache (details are not cached).
    """

    matrix: WorkloadMetricMatrix
    characterizations: tuple[WorkloadCharacterization, ...]


_MEMO: dict[str, SuiteCharacterization] = {}


def characterize_suite(
    workloads: tuple[Workload, ...] = SUITE,
    config: CollectionConfig | None = None,
    cache_dir: str | Path | None = None,
    verify_checks: bool = True,
) -> SuiteCharacterization:
    """Characterize ``workloads`` on a fresh cluster.

    Args:
        workloads: Workloads to run (default: the full 32-workload suite).
        config: Collection parameters (scale, seed, measurement protocol).
        cache_dir: If given, the metric matrix is persisted there and
            reloaded on later calls with identical parameters.
        verify_checks: Fail loudly if any workload's self-check failed —
            a characterization of a wrong computation is worthless.

    Raises:
        AnalysisError: If ``verify_checks`` finds a failed correctness
            check.
    """
    config = config or CollectionConfig()
    key = config.cache_key() + f"-{len(workloads)}"
    if key in _MEMO:
        return _MEMO[key]

    cache_path = None
    if cache_dir is not None:
        cache_path = Path(cache_dir) / f"{key}.json"
        if cache_path.exists():
            result = SuiteCharacterization(
                matrix=WorkloadMetricMatrix.load(cache_path),
                characterizations=(),
            )
            _MEMO[key] = result
            return result

    cluster = Cluster()
    context = RunContext(scale=config.scale, seed=config.seed)
    characterizations = []
    rows: dict[str, dict[str, float]] = {}
    for workload in workloads:
        characterization = cluster.characterize_workload(
            workload, context, config.measurement
        )
        if verify_checks:
            failed = {
                name: value
                for name, value in characterization.run.checks.items()
                if name
                in (
                    "sorted",
                    "records_preserved",
                    "counts_correct",
                    "matches_correct",
                    "matches_reference",
                    "inertia_decreased",
                    "all_vertices_ranked",
                )
                and value != 1.0
            }
            if failed:
                raise AnalysisError(
                    f"{workload.name}: correctness checks failed: {failed}"
                )
        characterizations.append(characterization)
        rows[workload.name] = characterization.metrics

    result = SuiteCharacterization(
        matrix=WorkloadMetricMatrix.from_rows(rows),
        characterizations=tuple(characterizations),
    )
    _MEMO[key] = result
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        result.matrix.save(cache_path)
    return result
