"""Suite-level data collection with caching and process parallelism.

Characterizing all 32 workloads means running every engine and simulating
every phase — expensive enough that the analysis layer, the test suite
and every benchmark should share one result.  :func:`characterize_suite`
memoises in process and optionally persists *complete* characterizations
(metrics, per-slave detail, the underlying run) through the
:class:`~repro.service.store.ResultStore`, keyed by the collection
parameters; cache hits hydrate objects indistinguishable from a fresh
collection.

Each ``(workload, RunContext, MeasurementConfig)`` characterization is
independent of every other: the testbed seeds a dedicated RNG per
``(workload, seed, slave)`` and :meth:`Processor.run_workload` resets all
microarchitectural state before simulating, so a fresh :class:`Cluster`
per workload produces exactly the numbers a shared serial cluster would.
That is what makes the ``workers`` fan-out below safe — results are
merged back in suite order and the resulting matrix is bit-identical to
a serial run, regardless of worker count or scheduling.

The fan-out itself runs on a persistent worker pool
(:mod:`repro.cluster.pool`): workers are forked once and build their
cluster once, work items are ``(name, store_key)`` pairs, and each
worker persists its full payload to the result store itself — only
compact metric vectors, correctness checks and store receipts travel
back through the queue.  Heavy fields (the run trace, per-slave detail,
flight events, timelines) hydrate lazily from the store on first
access.
"""

from __future__ import annotations

import hashlib
import threading
from collections.abc import Callable
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.cluster.pool import (
    LazyWorkloadCharacterization,
    get_pool,
    pool_spill_dir,
)
from repro.cluster.testbed import Cluster, MeasurementConfig, WorkloadCharacterization
from repro.core.dataset import WorkloadMetricMatrix
from repro.errors import AnalysisError, CollectionCancelled, StackExecutionError
from repro.faults import FaultPlan
from repro.metrics.catalog import METRIC_NAMES
from repro.obs.log import get_logger
from repro.obs.timeline import TimelineConfig
from repro.obs.trace import span as obs_span
from repro.stacks.base import stable_hash
from repro.workloads.base import RunContext, Workload
from repro.workloads.suite import SUITE

__all__ = [
    "CollectionConfig",
    "SuiteCharacterization",
    "characterize_suite",
    "suite_store_key",
    "workload_store_key",
    "collection_runs",
    "ProgressFn",
    "WorkloadFn",
]

#: Progress callback signature: ``(workloads_done, workloads_total)``.
ProgressFn = Callable[[int, int], None]

#: Per-workload completion callback: receives each characterization as
#: it lands, in suite order (the job manager's timeline-delta feed).
WorkloadFn = Callable[[WorkloadCharacterization], None]

_log = get_logger("repro.cluster.collection")


@dataclass(frozen=True)
class CollectionConfig:
    """Everything that determines a suite characterization.

    ``workers`` controls *how* the suite is collected, not *what* comes
    out: any worker count yields the identical matrix (see the module
    docstring), so it is deliberately excluded from :meth:`cache_key`.
    """

    scale: float = 1.0
    seed: int = 42
    measurement: MeasurementConfig = MeasurementConfig()
    #: Worker processes to fan workloads over; 1 or 0 = serial in-process.
    workers: int = 1
    #: Fault-injection plan every workload runs under (``None`` = no faults).
    faults: FaultPlan | None = None
    #: Extra whole-workload attempts after a retry-budget-exhausted failure.
    #: Each re-attempt reseeds the fault plan (the injector's draws are
    #: deterministic, so retrying the *same* plan would fail identically).
    workload_retries: int = 2
    #: Timeline sampling config (``None`` = no time series collected).
    #: Participates in :meth:`cache_key` so timeline-enabled collections
    #: persist (and hydrate) entries that actually carry a timeline.
    timeline: TimelineConfig | None = None
    #: Flight-recorder ring capacity (``None`` = the recorder's default).
    #: Observational — the metrics are identical at any capacity — so it
    #: is excluded from :meth:`cache_key`, like ``workers``.
    flight_capacity: int | None = None

    def cache_key(self) -> str:
        m = self.measurement
        key = (
            f"suite-s{self.scale}-seed{self.seed}-n{m.slaves_measured}"
            f"-c{m.active_cores}-o{m.ops_per_core}-w{m.warmup_fraction}"
            f"-r{m.perf_repeats}"
        )
        if self.faults is not None and self.faults.any_faults():
            key += f"-{self.faults.token()}"
        if self.timeline is not None:
            key += f"-{self.timeline.token()}"
        return key


@dataclass(frozen=True)
class SuiteCharacterization:
    """The collected suite data.

    Attributes:
        matrix: The 32×45 workload/metric matrix.
        characterizations: Per-workload details — present on fresh
            collections *and* on persistent-cache hits (the store keeps
            complete characterizations and hydrates them back).
    """

    matrix: WorkloadMetricMatrix
    characterizations: tuple[WorkloadCharacterization, ...]


_MEMO: dict[str, SuiteCharacterization] = {}

#: Counts actual (non-cached) suite collections in this process.  The
#: service layer's single-flight tests assert on it: N concurrent
#: identical requests must bump it exactly once.
_RUNS = 0
_RUNS_LOCK = threading.Lock()

#: Correctness self-checks that must read 1.0 for a characterization to
#: be trusted (each workload only reports the checks that apply to it).
_CORRECTNESS_CHECKS = (
    "sorted",
    "records_preserved",
    "counts_correct",
    "matches_correct",
    "matches_reference",
    "inertia_decreased",
    "all_vertices_ranked",
)


def collection_runs() -> int:
    """How many actual (cache-missing) collections this process has run."""
    return _RUNS


def _workloads_digest(workloads: tuple[Workload, ...]) -> str:
    """A short stable digest of *which* workloads are being collected.

    The cache key must distinguish different subsets of the same size
    (``SUITE[:4]`` vs ``SUITE[4:8]``) — keying on ``len(workloads)``
    alone made those collide and return the wrong matrix.
    """
    names = "|".join(w.name for w in workloads)
    return hashlib.sha256(names.encode("utf-8")).hexdigest()[:12]


def suite_store_key(
    config: CollectionConfig, workloads: tuple[Workload, ...] = SUITE
) -> str:
    """The store/memo key of a suite collection: parameters + workload set."""
    return f"{config.cache_key()}-{len(workloads)}-{_workloads_digest(workloads)}"


def workload_store_key(config: CollectionConfig, name: str) -> str:
    """The store key of one workload's full characterization.

    Per-workload entries are shared between suite-sized and single-
    workload collections at the same parameters: collecting the suite
    warms every ``/characterize/<name>`` lookup.
    """
    return f"wc-{config.cache_key()}-{name}"


def _characterize_with_retries(
    cluster: Cluster,
    workload: Workload,
    context: RunContext,
    measurement: MeasurementConfig,
    faults: FaultPlan | None,
    retries: int,
    timeline: TimelineConfig | None = None,
    flight_capacity: int | None = None,
) -> WorkloadCharacterization:
    """Characterize one workload, re-attempting exhausted-budget failures.

    Mirrors a JobTracker resubmitting a failed job: when an injected
    fault persists past a task's retry budget the whole workload attempt
    fails with :class:`StackExecutionError`, and the collection layer
    re-runs it under a reseeded plan (same probabilities, fresh draws) up
    to ``retries`` extra times.  The returned characterization records
    how many attempts were needed.
    """
    attempts = 1 + max(0, retries if faults is not None else 0)
    last_error: StackExecutionError | None = None
    for attempt in range(1, attempts + 1):
        plan = faults
        if plan is not None and attempt > 1:
            plan = replace(faults, seed=stable_hash((faults.seed, attempt)))
        try:
            result = cluster.characterize_workload(
                workload, context, measurement, faults=plan,
                timeline=timeline, flight_capacity=flight_capacity,
            )
        except StackExecutionError as error:
            last_error = error
            continue
        return replace(result, attempts=attempt)
    raise StackExecutionError(
        f"{workload.name}: all {attempts} collection attempts failed "
        f"(last: {last_error})"
    )


def _verify_characterization(characterization: WorkloadCharacterization) -> None:
    """Raise if any correctness self-check of the run failed.

    Reads :attr:`WorkloadCharacterization.correctness_checks` — pool
    results answer from their compact checks without hydrating the run.
    """
    failed = {
        name: value
        for name, value in characterization.correctness_checks.items()
        if name in _CORRECTNESS_CHECKS and value != 1.0
    }
    if failed:
        raise AnalysisError(
            f"{characterization.name}: correctness checks failed: {failed}"
        )


def _check_cancel(cancel: threading.Event | None) -> None:
    if cancel is not None and cancel.is_set():
        raise CollectionCancelled("suite collection cancelled")


def _collect_serial(
    workloads: tuple[Workload, ...],
    config: CollectionConfig,
    progress: ProgressFn | None,
    cancel: threading.Event | None,
    on_workload: WorkloadFn | None = None,
) -> list[WorkloadCharacterization]:
    cluster = Cluster()
    context = RunContext(scale=config.scale, seed=config.seed)
    characterizations: list[WorkloadCharacterization] = []
    for workload in workloads:
        _check_cancel(cancel)
        characterizations.append(
            _characterize_with_retries(
                cluster, workload, context, config.measurement,
                config.faults, config.workload_retries,
                config.timeline, config.flight_capacity,
            )
        )
        _log.debug(
            "workload characterized",
            extra={"workload": workload.name,
                   "done": len(characterizations), "total": len(workloads)},
        )
        if on_workload is not None:
            on_workload(characterizations[-1])
        if progress is not None:
            progress(len(characterizations), len(workloads))
    return characterizations


def _pool_token(config: CollectionConfig) -> str:
    """What must match for a persistent pool to be reused: everything
    the workers latched at initialization time."""
    return (
        f"{config.cache_key()}-rt{config.workload_retries}"
        f"-fc{config.flight_capacity}"
    )


def _collect_parallel(
    workloads: tuple[Workload, ...],
    config: CollectionConfig,
    workers: int,
    progress: ProgressFn | None,
    cancel: threading.Event | None,
    on_workload: WorkloadFn | None = None,
    store_root: str | Path | None = None,
    correlation_id: str | None = None,
) -> list[WorkloadCharacterization]:
    """Fan the workloads over a persistent worker pool, in suite order.

    Workers live across calls (the cluster is built once per worker),
    work items are just ``(name, store_key)`` pairs, and each worker
    persists its full payload itself — only the 45 metrics, the
    correctness checks and a store receipt travel back through the
    queue.  The parent adopts each receipt into the store index (single
    index writer) and wraps it in a
    :class:`~repro.cluster.pool.LazyWorkloadCharacterization`; results
    land in suite order regardless of completion order, so the merged
    matrix is bit-identical to a serial run.

    Cancellation is cooperative: dispatch stops, in-flight workloads
    drain (the pool stays healthy), then
    :class:`~repro.errors.CollectionCancelled` is raised.  A worker
    that *dies* (as opposed to reporting a failure) raises
    :class:`~repro.errors.WorkerPoolError` — never a hang.
    """
    from repro.service.store import ResultStore

    if store_root is None:
        store_root = pool_spill_dir()
    store_root = str(Path(store_root))
    init = {
        "scale": config.scale,
        "seed": config.seed,
        "measurement": config.measurement,
        "faults": config.faults,
        "retries": config.workload_retries,
        "timeline": config.timeline,
        "flight_capacity": config.flight_capacity,
        "store_root": str(store_root),
    }
    pool = get_pool(workers, init, _pool_token(config))
    parent_store = ResultStore(store_root)
    characterizations: list[WorkloadCharacterization] = []

    def land(index: int, compact) -> None:
        parent_store.adopt(compact.store_key, compact.digest, compact.nbytes)
        characterizations.append(
            LazyWorkloadCharacterization(
                name=compact.name,
                metrics=compact.metrics,
                checks=compact.checks,
                attempts=compact.attempts,
                faults=compact.faults,
                store_root=store_root,
                store_key=compact.store_key,
            )
        )
        if on_workload is not None:
            on_workload(characterizations[-1])
        if progress is not None:
            progress(len(characterizations), len(workloads))

    pool.run(
        [
            (workload.name, workload_store_key(config, workload.name))
            for workload in workloads
        ],
        cancel=cancel,
        on_result=land,
        # Rides along on every task so the pool workers' trace spans
        # carry the submitting client's correlation id (fleet traces
        # join client -> server -> job -> pool on it).
        meta={"correlation_id": correlation_id} if correlation_id else None,
    )
    return characterizations


def _hydrate_from_store(store, key: str, config: CollectionConfig):
    """Rebuild a full SuiteCharacterization from the persistent store.

    Returns ``None`` (a miss) unless the suite entry *and* every
    per-workload entry are present and compatible — a partially evicted
    suite is recollected rather than served half-hydrated.
    """
    from repro.service.store import characterization_from_payload

    entry = store.get(key)
    if entry is None or entry.get("kind") != "suite":
        return None
    matrix_payload = entry["matrix"]
    if tuple(matrix_payload["metrics"]) != METRIC_NAMES:
        return None  # stale: the metric catalog changed
    characterizations = []
    for name in entry["workloads"]:
        payload = store.get(workload_store_key(config, name))
        if payload is None:
            return None
        characterizations.append(characterization_from_payload(payload))
    matrix = WorkloadMetricMatrix(
        workloads=tuple(matrix_payload["workloads"]),
        values=np.array(matrix_payload["values"], dtype=float),
    )
    return SuiteCharacterization(
        matrix=matrix, characterizations=tuple(characterizations)
    )


def _persist_to_store(
    store,
    key: str,
    config: CollectionConfig,
    result: SuiteCharacterization,
) -> None:
    from repro.service.store import characterization_to_payload

    for characterization in result.characterizations:
        wkey = workload_store_key(config, characterization.name)
        if isinstance(
            characterization, LazyWorkloadCharacterization
        ) and characterization.persisted_in(store.root, wkey):
            # The pool worker already wrote this exact object and the
            # parent adopted it; re-putting would hydrate the full
            # payload just to rewrite identical bytes.
            continue
        store.put(wkey, characterization_to_payload(characterization))
    store.put(
        key,
        {
            "kind": "suite",
            "key": key,
            "workloads": [name for name in result.matrix.workloads],
            "matrix": {
                "workloads": list(result.matrix.workloads),
                "metrics": list(METRIC_NAMES),
                "values": result.matrix.values.tolist(),
            },
        },
    )


def characterize_suite(
    workloads: tuple[Workload, ...] = SUITE,
    config: CollectionConfig | None = None,
    cache_dir: str | Path | None = None,
    verify_checks: bool = True,
    workers: int | None = None,
    progress: ProgressFn | None = None,
    cancel: threading.Event | None = None,
    on_workload: WorkloadFn | None = None,
    correlation_id: str | None = None,
) -> SuiteCharacterization:
    """Characterize ``workloads``, optionally fanning over processes.

    Args:
        workloads: Workloads to run (default: the full 32-workload suite).
        config: Collection parameters (scale, seed, measurement protocol,
            worker count).
        cache_dir: If given (or if ``REPRO_CACHE_DIR`` is set), complete
            characterizations are persisted there through the result
            store and fully rehydrated on later identical calls.
        verify_checks: Fail loudly if any workload's self-check failed —
            a characterization of a wrong computation is worthless.
        workers: Overrides ``config.workers`` when given.  Values above 1
            run each workload on a fresh cluster in a worker process; the
            result is bit-identical to serial (see module docstring).
        progress: Optional ``(done, total)`` callback invoked after each
            workload completes (the job manager's progress feed).
        cancel: Optional event; when set, collection stops between
            workloads and raises :class:`CollectionCancelled`.
        on_workload: Optional callback receiving each completed
            :class:`WorkloadCharacterization` as it lands, in suite
            order (feeds per-workload timeline deltas to job streams).
            Not invoked on memo/store cache hits.
        correlation_id: Optional client correlation id, recorded on the
            suite span and forwarded to the pool workers' task spans so
            a merged fleet trace joins the whole request end-to-end.
            Purely observational — never part of any cache key.

    Raises:
        AnalysisError: If ``verify_checks`` finds a failed correctness
            check.
        CollectionCancelled: If ``cancel`` was set mid-collection.
    """
    # Imported here, not at module top: the service layer sits above the
    # cluster layer, and the store pulls in none of this module.
    from repro.service.store import ResultStore, resolve_cache_dir

    config = config or CollectionConfig()
    if workers is None:
        workers = config.workers
    key = suite_store_key(config, workloads)
    if key in _MEMO:
        _log.debug("suite memo hit", extra={"key": key})
        return _MEMO[key]

    store = None
    cache_dir = resolve_cache_dir(cache_dir)
    if cache_dir is not None:
        store = ResultStore(cache_dir)
        hydrated = _hydrate_from_store(store, key, config)
        if hydrated is not None:
            _log.info("suite hydrated from store", extra={"key": key})
            _MEMO[key] = hydrated
            return hydrated

    global _RUNS
    with _RUNS_LOCK:
        _RUNS += 1
    _log.info(
        "collecting suite",
        extra={"key": key, "workloads": len(workloads), "workers": workers},
    )
    span_args = {"workloads": len(workloads), "workers": workers}
    if correlation_id:
        span_args["correlation_id"] = correlation_id
    with obs_span("suite-collection", "suite", **span_args):
        if workers > 1 and len(workloads) > 1:
            # Workers spill full payloads into the persistent store when
            # one is configured (adoption doubles as persistence), else
            # into the pool-owned temporary store.
            characterizations = _collect_parallel(
                workloads, config, workers, progress, cancel, on_workload,
                store_root=cache_dir, correlation_id=correlation_id,
            )
        else:
            characterizations = _collect_serial(
                workloads, config, progress, cancel, on_workload
            )

    rows: dict[str, dict[str, float]] = {}
    for characterization in characterizations:
        if verify_checks:
            _verify_characterization(characterization)
        rows[characterization.name] = characterization.metrics

    result = SuiteCharacterization(
        matrix=WorkloadMetricMatrix.from_rows(rows),
        characterizations=tuple(characterizations),
    )
    _MEMO[key] = result
    if store is not None:
        _persist_to_store(store, key, config, result)
    return result
