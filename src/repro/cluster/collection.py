"""Suite-level data collection with caching and process parallelism.

Characterizing all 32 workloads means running every engine and simulating
every phase — expensive enough that the analysis layer, the test suite
and every benchmark should share one result.  :func:`characterize_suite`
memoises in process and optionally persists the metric matrix as JSON
keyed by the collection parameters.

Each ``(workload, RunContext, MeasurementConfig)`` characterization is
independent of every other: the testbed seeds a dedicated RNG per
``(workload, seed, slave)`` and :meth:`Processor.run_workload` resets all
microarchitectural state before simulating, so a fresh :class:`Cluster`
per workload produces exactly the numbers a shared serial cluster would.
That is what makes the ``workers`` fan-out below safe — results are
merged back in suite order and the resulting matrix is bit-identical to
a serial run, regardless of worker count or scheduling.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.cluster.testbed import Cluster, MeasurementConfig, WorkloadCharacterization
from repro.core.dataset import WorkloadMetricMatrix
from repro.errors import AnalysisError
from repro.workloads.base import RunContext, Workload
from repro.workloads.suite import SUITE, workload_by_name

__all__ = ["CollectionConfig", "SuiteCharacterization", "characterize_suite"]


@dataclass(frozen=True)
class CollectionConfig:
    """Everything that determines a suite characterization.

    ``workers`` controls *how* the suite is collected, not *what* comes
    out: any worker count yields the identical matrix (see the module
    docstring), so it is deliberately excluded from :meth:`cache_key`.
    """

    scale: float = 1.0
    seed: int = 42
    measurement: MeasurementConfig = MeasurementConfig()
    #: Worker processes to fan workloads over; 1 or 0 = serial in-process.
    workers: int = 1

    def cache_key(self) -> str:
        m = self.measurement
        return (
            f"suite-s{self.scale}-seed{self.seed}-n{m.slaves_measured}"
            f"-c{m.active_cores}-o{m.ops_per_core}-w{m.warmup_fraction}"
            f"-r{m.perf_repeats}"
        )


@dataclass(frozen=True)
class SuiteCharacterization:
    """The collected suite data.

    Attributes:
        matrix: The 32×45 workload/metric matrix.
        characterizations: Per-workload details, or empty when the matrix
            was loaded from a persistent cache (details are not cached).
    """

    matrix: WorkloadMetricMatrix
    characterizations: tuple[WorkloadCharacterization, ...]


_MEMO: dict[str, SuiteCharacterization] = {}

#: Correctness self-checks that must read 1.0 for a characterization to
#: be trusted (each workload only reports the checks that apply to it).
_CORRECTNESS_CHECKS = (
    "sorted",
    "records_preserved",
    "counts_correct",
    "matches_correct",
    "matches_reference",
    "inertia_decreased",
    "all_vertices_ranked",
)


def _workloads_digest(workloads: tuple[Workload, ...]) -> str:
    """A short stable digest of *which* workloads are being collected.

    The cache key must distinguish different subsets of the same size
    (``SUITE[:4]`` vs ``SUITE[4:8]``) — keying on ``len(workloads)``
    alone made those collide and return the wrong matrix.
    """
    names = "|".join(w.name for w in workloads)
    return hashlib.sha256(names.encode("utf-8")).hexdigest()[:12]


def _characterize_one(
    workload_name: str,
    scale: float,
    seed: int,
    measurement: MeasurementConfig,
) -> WorkloadCharacterization:
    """Characterize one workload on a fresh cluster (worker-process entry).

    Module-level so it pickles; takes the workload *name* rather than the
    object so each worker resolves its own instance.
    """
    cluster = Cluster()
    context = RunContext(scale=scale, seed=seed)
    return cluster.characterize_workload(
        workload_by_name(workload_name), context, measurement
    )


def _verify_characterization(characterization: WorkloadCharacterization) -> None:
    """Raise if any correctness self-check of the run failed."""
    failed = {
        name: value
        for name, value in characterization.run.checks.items()
        if name in _CORRECTNESS_CHECKS and value != 1.0
    }
    if failed:
        raise AnalysisError(
            f"{characterization.name}: correctness checks failed: {failed}"
        )


def _collect_serial(
    workloads: tuple[Workload, ...], config: CollectionConfig
) -> list[WorkloadCharacterization]:
    cluster = Cluster()
    context = RunContext(scale=config.scale, seed=config.seed)
    return [
        cluster.characterize_workload(workload, context, config.measurement)
        for workload in workloads
    ]


def _collect_parallel(
    workloads: tuple[Workload, ...], config: CollectionConfig, workers: int
) -> list[WorkloadCharacterization]:
    """Fan the workloads over ``workers`` processes, in suite order.

    ``executor.map`` preserves input order, so the merged list (and the
    matrix built from it) is ordered exactly as the serial path orders
    it — determinism does not depend on completion order.
    """
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return list(
            executor.map(
                _characterize_one,
                [w.name for w in workloads],
                [config.scale] * len(workloads),
                [config.seed] * len(workloads),
                [config.measurement] * len(workloads),
            )
        )


def characterize_suite(
    workloads: tuple[Workload, ...] = SUITE,
    config: CollectionConfig | None = None,
    cache_dir: str | Path | None = None,
    verify_checks: bool = True,
    workers: int | None = None,
) -> SuiteCharacterization:
    """Characterize ``workloads``, optionally fanning over processes.

    Args:
        workloads: Workloads to run (default: the full 32-workload suite).
        config: Collection parameters (scale, seed, measurement protocol,
            worker count).
        cache_dir: If given, the metric matrix is persisted there and
            reloaded on later calls with identical parameters.
        verify_checks: Fail loudly if any workload's self-check failed —
            a characterization of a wrong computation is worthless.
        workers: Overrides ``config.workers`` when given.  Values above 1
            run each workload on a fresh cluster in a worker process; the
            result is bit-identical to serial (see module docstring).

    Raises:
        AnalysisError: If ``verify_checks`` finds a failed correctness
            check.
    """
    config = config or CollectionConfig()
    if workers is None:
        workers = config.workers
    key = (
        f"{config.cache_key()}-{len(workloads)}-{_workloads_digest(workloads)}"
    )
    if key in _MEMO:
        return _MEMO[key]

    cache_path = None
    if cache_dir is not None:
        cache_path = Path(cache_dir) / f"{key}.json"
        if cache_path.exists():
            result = SuiteCharacterization(
                matrix=WorkloadMetricMatrix.load(cache_path),
                characterizations=(),
            )
            _MEMO[key] = result
            return result

    if workers > 1 and len(workloads) > 1:
        characterizations = _collect_parallel(workloads, config, workers)
    else:
        characterizations = _collect_serial(workloads, config)

    rows: dict[str, dict[str, float]] = {}
    for characterization in characterizations:
        if verify_checks:
            _verify_characterization(characterization)
        rows[characterization.name] = characterization.metrics

    result = SuiteCharacterization(
        matrix=WorkloadMetricMatrix.from_rows(rows),
        characterizations=tuple(characterizations),
    )
    _MEMO[key] = result
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        result.matrix.save(cache_path)
    return result
