"""The five-node experimental cluster and the data-collection protocol."""

from repro.cluster.collection import (
    CollectionConfig,
    SuiteCharacterization,
    characterize_suite,
)
from repro.cluster.network import GigabitNetwork, NetworkConfig
from repro.cluster.node import Node, NodeConfig
from repro.cluster.testbed import Cluster, MeasurementConfig, WorkloadCharacterization

__all__ = [
    "CollectionConfig",
    "SuiteCharacterization",
    "characterize_suite",
    "GigabitNetwork",
    "NetworkConfig",
    "Node",
    "NodeConfig",
    "Cluster",
    "MeasurementConfig",
    "WorkloadCharacterization",
]
