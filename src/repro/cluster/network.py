"""1 Gb Ethernet interconnect model.

The testbed's nodes are connected by gigabit Ethernet (Section IV-A).
The characterization itself is rate-based and does not need wall-clock
times, but the network model closes the loop for completeness: shuffle
phases report their bytes here, and the cluster can report aggregate
transfer volumes and idealised transfer times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["NetworkConfig", "GigabitNetwork"]


@dataclass(frozen=True)
class NetworkConfig:
    """Link characteristics."""

    bandwidth_bits_per_s: float = 1e9  # 1 GbE
    latency_s: float = 100e-6  # typical same-rack RTT/2
    protocol_efficiency: float = 0.94  # Ethernet + IP + TCP overhead

    def __post_init__(self) -> None:
        if self.bandwidth_bits_per_s <= 0 or self.latency_s < 0:
            raise ConfigurationError("bad network parameters")
        if not 0 < self.protocol_efficiency <= 1:
            raise ConfigurationError("protocol_efficiency must be in (0, 1]")


class GigabitNetwork:
    """Tracks transfers and computes idealised transfer times."""

    def __init__(self, config: NetworkConfig | None = None) -> None:
        self.config = config or NetworkConfig()
        self.bytes_transferred = 0
        self.transfers = 0

    def transfer(self, num_bytes: int) -> float:
        """Record a transfer; returns its idealised duration in seconds.

        Raises:
            ConfigurationError: On a negative byte count.
        """
        if num_bytes < 0:
            raise ConfigurationError("cannot transfer a negative byte count")
        self.bytes_transferred += num_bytes
        self.transfers += 1
        payload_rate = (
            self.config.bandwidth_bits_per_s * self.config.protocol_efficiency / 8.0
        )
        return self.config.latency_s + num_bytes / payload_rate
