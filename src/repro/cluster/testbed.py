"""The five-node experimental cluster (Section IV).

One master plus four slaves on gigabit Ethernet, each slave a Table III
machine.  :meth:`Cluster.characterize_workload` reproduces the paper's
data-collection protocol end to end:

1. really run the workload through its software stack (ramp-up is part
   of the simulated sampling protocol);
2. instrument the execution trace into phase profiles;
3. simulate the profiles on each measured slave's processor;
4. observe the resulting ground-truth events through the perf layer
   (multiplexed counters, repeated runs);
5. derive the 45 Table II metrics per slave and take the mean across
   slaves ("We collect the data for all four slave nodes and take the
   mean").
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace

import numpy as np

from repro.arch.batch import PhasePlan, plan_workload
from repro.arch.trace import SynthScratch
from repro.cluster.network import GigabitNetwork
from repro.cluster.node import Node, NodeConfig
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultPlan, fault_injection
from repro.metrics.derivation import derive_metrics
from repro.obs.flight import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    current_flight,
    flight_recording,
)
from repro.obs.timeline import (
    TimelineConfig,
    TimelineSampler,
    TimelineSeries,
    current_timeline,
    timeline_sampling,
)
from repro.obs.trace import span as obs_span
from repro.perf.profiler import PerfProfiler
from repro.stacks.base import PhaseKind, stable_hash
from repro.stacks.instrument import profiles_from_trace
from repro.workloads.base import RunContext, Workload, WorkloadRun

__all__ = ["MeasurementConfig", "WorkloadCharacterization", "Cluster"]


@dataclass(frozen=True)
class MeasurementConfig:
    """Knobs of the measurement protocol.

    Attributes:
        slaves_measured: How many of the four slaves to actually simulate
            (they are statistically exchangeable; measuring fewer trades
            variance for speed, exactly like fewer repeat runs would).
        active_cores: Sibling cores running each phase per slave.
        ops_per_core: Measured sample size per core per phase.
        warmup_fraction: Ramp-up sample discarded before measurement.
        perf_repeats: Repeated perf runs averaged per slave.
    """

    slaves_measured: int = 2
    active_cores: int = 4
    ops_per_core: int = 6000
    warmup_fraction: float = 0.3
    perf_repeats: int = 3

    def __post_init__(self) -> None:
        if not 1 <= self.slaves_measured <= 4:
            raise ConfigurationError("slaves_measured must be in [1, 4]")
        if self.perf_repeats <= 0:
            raise ConfigurationError("perf_repeats must be positive")


@dataclass(frozen=True)
class WorkloadCharacterization:
    """Result of characterizing one workload.

    Attributes:
        name: Workload label (``H-Sort`` ...).
        metrics: Mean of the 45 Table II metrics across measured slaves.
        per_slave: Per-slave metric mappings (before averaging).
        run: The underlying workload run (trace + correctness checks).
        attempts: How many whole-workload attempts the collection layer
            needed (1 = first try succeeded; >1 only under fault plans
            that exhausted some task's retry budget).
        faults: Fault/recovery tally (:meth:`FaultStats.to_dict`) when
            the run executed under an active fault plan, else ``None``.
        events: Flight-recorder events captured during the run (bounded,
            oldest-first).  Purely observational: carries wall-clock
            timings, so it is excluded from metric comparisons.
        events_capacity: Ring capacity the flight recorder ran with, so
            a stored snapshot is self-describing (gaps in ``seq`` plus
            this bound tell you exactly what overflowed).
        timeline: Time-resolved sample series collected during the run,
            or ``None`` when timeline sampling was off.  Observational
            like ``events``: excluded from metric comparisons.
    """

    name: str
    metrics: dict[str, float]
    per_slave: tuple[dict[str, float], ...]
    run: WorkloadRun
    attempts: int = 1
    faults: dict | None = None
    events: tuple[dict, ...] = ()
    events_capacity: int = 256
    timeline: TimelineSeries | None = None

    @property
    def correctness_checks(self) -> dict[str, float]:
        """The run's correctness self-checks, as a plain mapping.

        Verification reads this property rather than ``run.checks``
        directly so that store-backed lazy results (which carry the
        checks compactly) can answer without hydrating the full run.
        """
        return dict(self.run.checks)


class Cluster:
    """One master + four slaves, as in the paper's testbed."""

    NUM_SLAVES = 4

    def __init__(self, node_config: NodeConfig | None = None) -> None:
        self.master = Node("master", node_config)
        self.slaves = tuple(
            Node(f"slave-{i}", node_config) for i in range(self.NUM_SLAVES)
        )
        self.network = GigabitNetwork()

    def characterize_workload(
        self,
        workload: Workload,
        context: RunContext | None = None,
        measurement: MeasurementConfig | None = None,
        faults: FaultPlan | None = None,
        fault_scope: object = None,
        timeline: TimelineConfig | None = None,
        flight_capacity: int | None = None,
    ) -> WorkloadCharacterization:
        """Run and characterize one workload (see module docstring).

        With a ``faults`` plan, the workload executes under an ambient
        :class:`FaultInjector`: task crashes/stragglers/HDFS hiccups are
        recovered transparently (the committed trace — and hence the
        metrics — is unchanged), while losing a slave removes it from
        the measured set, so the cross-slave mean degrades to survivors
        exactly as a real four-node cluster's would.

        With a ``timeline`` config, an ambient
        :class:`~repro.obs.timeline.TimelineSampler` records the run's
        time series and attaches it as ``characterization.timeline``.
        Sampling is purely observational: metrics are bit-identical with
        it on or off, and the series must pass both reconciliation
        invariants (window sums = simulated totals; slave-sample mean =
        published metrics) or the run fails loudly.

        Raises:
            StackExecutionError: If an injected fault persists past a
                task's retry budget (the workload attempt fails, like a
                Hadoop job exceeding ``mapred.map.max.attempts``).
            AnalysisError: If a collected timeline fails to reconcile
                with the published metrics.
        """
        context = context or RunContext()
        measurement = measurement or MeasurementConfig()

        # Record into the ambient flight recorder when one is active
        # (e.g. the service wraps whole jobs); otherwise each
        # characterization gets its own bounded recorder.
        recorder = current_flight()
        if recorder is None:
            recorder = FlightRecorder(capacity=flight_capacity or DEFAULT_CAPACITY)

        sampler = TimelineSampler(timeline) if timeline is not None else None

        injector: FaultInjector | None = None
        if faults is not None and faults.any_faults():
            injector = FaultInjector(faults, scope=(workload.name, fault_scope))
        with flight_recording(recorder), timeline_sampling(sampler), obs_span(
            f"workload:{workload.name}", "workload",
            family=workload.family.value,
        ):
            recorder.record("workload-start", workload=workload.name)
            with fault_injection(injector), obs_span(
                f"run:{workload.name}", "run"
            ):
                run = workload.run(context)

            characterization = self._measure(
                workload, context, measurement, injector, run
            )
        recorder.record("workload-done", workload=workload.name)

        series: TimelineSeries | None = None
        if sampler is not None:
            series = sampler.series()
            # The assertion-backed invariant: the steady-state slave
            # samples must reproduce the published mean bit-for-bit.
            series.reconcile(characterization.metrics)
        return replace(
            characterization,
            events=tuple(recorder.snapshot()),
            events_capacity=recorder.capacity,
            timeline=series,
        )

    def _measure(
        self,
        workload: Workload,
        context: RunContext,
        measurement: MeasurementConfig,
        injector: FaultInjector | None,
        run: WorkloadRun,
    ) -> WorkloadCharacterization:
        """Steps 2-5 of the protocol: instrument, simulate, observe, derive."""
        committed = run.trace.committed_records
        actual_input = max((record.bytes_in for record in committed), default=1)
        footprint_scale = max(1.0, workload.declared_bytes / max(1, actual_input))
        with obs_span(
            f"instrument:{workload.name}", "measure", phases=len(committed)
        ):
            profiles = profiles_from_trace(
                run.trace,
                workload.hints,
                num_workers=self.NUM_SLAVES,
                footprint_scale=footprint_scale,
            )

        # Account shuffle traffic on the interconnect (committed transfers
        # only; a killed attempt's half-done fetches are not re-counted).
        for record in committed:
            if record.kind in (PhaseKind.SHUFFLE, PhaseKind.SHUFFLE_READ):
                self.network.transfer(record.bytes_in)

        measured_slaves = list(range(measurement.slaves_measured))
        if injector is not None:
            lost = injector.lost_nodes(self.NUM_SLAVES)
            surviving = [i for i in measured_slaves if i not in lost]
            if not surviving:
                # Every measured slave died: fall back to the first
                # survivor in the cluster so the mean still exists.
                surviving = [min(set(range(self.NUM_SLAVES)) - set(lost))]
            measured_slaves = surviving

        # Hoist every measured slave's synthesis ahead of all simulation:
        # each slave's plan is drawn from its own rng (identical stream
        # to the one run_workload would consume internally), while one
        # shared scratch backs every sample's uniform draws so the whole
        # measurement reuses a single set of preallocated buffers.
        scratch = SynthScratch()
        slave_rngs: dict[int, np.random.Generator] = {}
        slave_plans: dict[int, list[PhasePlan]] = {}
        for slave_index in measured_slaves:
            slave = self.slaves[slave_index]
            rng = np.random.default_rng(
                stable_hash((workload.name, context.seed, slave_index))
            )
            slave_rngs[slave_index] = rng
            core_ids = [
                core.core_id
                for core in slave.processor.cores[: measurement.active_cores]
            ]
            slave_plans[slave_index] = plan_workload(
                profiles,
                rng,
                core_ids,
                measurement.ops_per_core,
                measurement.warmup_fraction,
                scratch=scratch,
            )

        profiler = PerfProfiler()
        sampler = current_timeline()
        per_slave: list[dict[str, float]] = []
        for slave_index in measured_slaves:
            slave = self.slaves[slave_index]
            rng = slave_rngs[slave_index]
            scope = (
                sampler.slave_scope(slave_index)
                if sampler is not None
                else contextlib.nullcontext()
            )
            with scope, obs_span(
                f"simulate:{workload.name}:slave-{slave_index}", "measure"
            ):
                true_events = slave.processor.run_workload(
                    profiles,
                    rng,
                    active_cores=measurement.active_cores,
                    ops_per_core=measurement.ops_per_core,
                    warmup_fraction=measurement.warmup_fraction,
                    plan=slave_plans[slave_index],
                )
                if sampler is not None:
                    # Windows must exactly partition the measurement —
                    # fail at collection time, not after persisting.
                    sampler.verify_slave_windows(slave_index, true_events)
                observed = profiler.profile(
                    true_events, rng, repeats=measurement.perf_repeats
                )
                per_slave.append(derive_metrics(observed.counts))
                if sampler is not None:
                    sampler.slave_metrics(slave_index, per_slave[-1])

        mean_metrics = {
            name: float(np.mean([slave[name] for slave in per_slave]))
            for name in per_slave[0]
        }
        return WorkloadCharacterization(
            name=workload.name,
            metrics=mean_metrics,
            per_slave=tuple(per_slave),
            run=run,
            faults=injector.stats.to_dict() if injector is not None else None,
        )
