"""Persistent worker pool for parallel suite collection.

The original parallel path paid three per-workload taxes: it spawned a
fresh worker process (fork + full interpreter state) per workload batch,
built a fresh five-node :class:`~repro.cluster.testbed.Cluster` inside
every task, and pickled each *complete* characterization — metrics,
per-slave detail, the whole execution trace, flight-recorder events and
timeline — back through the result queue.  This module replaces that
with long-lived workers and a compact wire protocol:

* **Workers are persistent.**  A :class:`CollectionPool` forks its
  workers once; each builds one :class:`Cluster` (and resolves its
  collection config) in its initializer and then characterizes any
  number of workloads on it.  ``Processor.run_workload`` resets all
  microarchitectural state per workload, so reuse is bit-identical to a
  fresh cluster (the invariant the old fan-out already relied on).
* **Work items are compact.**  A task is ``(job, name, store_key,
  meta)`` — the workload name, the store key the result should land
  under, and an observational annotation dict (correlation ids for the
  worker's trace spans).  The config rode along at pool construction.
* **Results are compact.**  The worker persists the full payload itself
  (:meth:`ResultStore.put_object` — object file only, written
  atomically) and ships back just the 45-metric mapping, the
  correctness checks, the attempt/fault bookkeeping and the
  ``(store_key, digest, nbytes)`` receipt.  The parent — the single
  index writer — :meth:`ResultStore.adopt`\\ s each receipt, so
  concurrent workers never race on ``index.json``.
* **Heavy fields hydrate lazily.**  The parent wraps each receipt in a
  :class:`LazyWorkloadCharacterization`: metrics and checks are
  immediately available; ``run``/``per_slave``/``events``/``timeline``
  load from the store on first access and are then cached on the
  instance.

Lifecycle guarantees (pinned by ``tests/cluster/test_worker_pool.py``):

* a worker that dies mid-task surfaces as :class:`WorkerPoolError` in
  the submitting thread — never a hang — and the broken pool is torn
  down rather than reused;
* cooperative cancellation stops dispatching, *drains* in-flight tasks
  (workers stay healthy and reusable), then raises
  :class:`CollectionCancelled`;
* pools are singletons per ``(workers, config, store root)`` and are
  shut down at interpreter exit; results from an abandoned run carry a
  stale generation stamp and are discarded, never misattributed.

When the collection has no persistent ``cache_dir``, payloads spill to
a pool-owned temporary store that lives until interpreter exit (lazy
results memoized by the collection layer may hydrate long after the
collection returns).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue
import shutil
import tempfile
import threading
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.cluster.testbed import WorkloadCharacterization
from repro.errors import (
    AnalysisError,
    CollectionCancelled,
    StackExecutionError,
    StoreError,
    WorkerPoolError,
)
from repro.obs.log import get_logger

__all__ = [
    "CollectionPool",
    "LazyWorkloadCharacterization",
    "CompactResult",
    "get_pool",
    "shutdown_pools",
    "pool_spill_dir",
    "CRASH_ENV",
]

_log = get_logger("repro.cluster.pool")

#: Test hook: a worker assigned the named workload exits immediately and
#: uncleanly (``os._exit``), simulating an OOM-killed or segfaulted
#: worker.  Read per task, so tests can arm it around a single call.
CRASH_ENV = "REPRO_POOL_CRASH_WORKLOAD"

#: How long the parent waits between result polls before re-checking
#: worker liveness and the cancel event.
_POLL_S = 0.1

#: Exception types a worker may report that the parent re-raises as
#: themselves (message-only reconstruction) rather than wrapping.
_RERAISABLE = {
    cls.__name__: cls
    for cls in (StackExecutionError, AnalysisError, StoreError)
}


@dataclass(frozen=True)
class CompactResult:
    """What a worker ships back per workload (everything else is on disk).

    Attributes:
        name: Workload label.
        metrics: The 45 Table II metric means.
        checks: The run's correctness self-checks (so verification never
            needs the full payload).
        attempts: Whole-workload attempts the worker needed.
        faults: Fault/recovery tally, or ``None`` without a fault plan.
        store_key: Key the full payload was persisted under.
        digest: Content hash of the persisted object (adoption receipt).
        nbytes: Size of the persisted object in bytes.
    """

    name: str
    metrics: dict[str, float]
    checks: dict[str, float]
    attempts: int
    faults: dict | None
    store_key: str
    digest: str
    nbytes: int


class LazyWorkloadCharacterization(WorkloadCharacterization):
    """A store-backed characterization: compact now, complete on demand.

    Carries the metrics, checks and bookkeeping a collection actually
    consumes inline; the heavy fields (``run``, ``per_slave``,
    ``events``, ``events_capacity``, ``timeline``) hydrate from the
    result store on first attribute access and are cached on the
    instance afterwards, so an eager consumer sees an object
    indistinguishable from a fresh serial characterization.
    """

    def __init__(
        self,
        *,
        name: str,
        metrics: dict[str, float],
        checks: dict[str, float],
        attempts: int,
        faults: dict | None,
        store_root: str | Path,
        store_key: str,
    ) -> None:
        # The parent dataclass is frozen; bypass its __setattr__ the
        # same way its generated __init__ does.
        set_ = object.__setattr__
        set_(self, "name", name)
        set_(self, "metrics", dict(metrics))
        set_(self, "attempts", int(attempts))
        set_(self, "faults", faults)
        set_(self, "_checks", dict(checks))
        set_(self, "_store_root", str(store_root))
        set_(self, "_store_key", store_key)

    # -- hydration ------------------------------------------------------------

    def _full(self) -> WorkloadCharacterization:
        cached = self.__dict__.get("_full_cache")
        if cached is None:
            from repro.service.store import (
                ResultStore,
                characterization_from_payload,
            )

            payload = ResultStore(self._store_root).get(
                self._store_key, touch=False
            )
            if payload is None:
                raise StoreError(
                    f"{self.name}: persisted characterization "
                    f"{self._store_key!r} vanished from {self._store_root}"
                )
            cached = characterization_from_payload(payload)
            object.__setattr__(self, "_full_cache", cached)
        return cached

    def persisted_in(self, root: str | Path, key: str) -> bool:
        """Whether this result's payload already lives at ``root/key``
        (lets the collection layer skip a redundant re-put)."""
        return str(root) == self._store_root and key == self._store_key

    # Data descriptors shadow the frozen dataclass's instance fields, so
    # these win even though the parent declares them as fields.

    @property
    def correctness_checks(self) -> dict[str, float]:
        return dict(self._checks)

    @property
    def run(self):
        return self._full().run

    @property
    def per_slave(self):
        return self._full().per_slave

    @property
    def events(self):
        return self._full().events

    @property
    def events_capacity(self):
        return self._full().events_capacity

    @property
    def timeline(self):
        return self._full().timeline


# -- worker side ---------------------------------------------------------------


#: Ring capacity of a pool worker's tracer: plenty for coarse per-task
#: spans (one per workload) without unbounded growth in long-lived pools.
_WORKER_TRACE_CAPACITY = 4096


def _worker_main(tasks, results, init: dict) -> None:
    """The persistent worker loop: build the cluster once, then serve.

    Protocol: each task is ``(generation, index, name, store_key,
    meta)``; ``None`` is the shutdown sentinel.  Each reply is
    ``(generation, index, "ok", CompactResult)`` or
    ``(generation, index, "error", {type, message})``.

    Fleet telemetry: the worker resets the registry values it inherited
    from the parent at fork (they would double-count in the merged
    view), then publishes its own metric shard and a coarse
    ``pool:characterize:<name>`` trace span per task — carrying the
    submitting client's correlation id from ``meta`` — into the store's
    telemetry directory.  Spans are recorded on a worker-local tracer,
    never activated as the ambient tracer, so the engines inside the
    characterization stay on their zero-cost disabled path.
    """
    # Imported here: the worker resolves its own instances post-fork,
    # and the service layer sits above this module.
    from repro.cluster.collection import _characterize_with_retries
    from repro.cluster.testbed import Cluster
    from repro.obs.fleet import ShardWriter
    from repro.obs.metrics import REGISTRY
    from repro.obs.prof import ProfileAgent, arm as arm_profiling
    from repro.obs.trace import Tracer
    from repro.service.store import ResultStore, characterization_to_payload
    from repro.workloads.base import RunContext
    from repro.workloads.suite import workload_by_name

    REGISTRY.reset_values()
    tracer = Tracer(max_events=_WORKER_TRACE_CAPACITY)
    shards = ShardWriter(
        init["store_root"],
        instance=f"pool-{os.getpid():x}",
        role="pool",
        tracer=tracer,
    ).start()
    # This loop *is* the worker process's main thread: arm the sampling
    # signals here so fleet profile windows catch the characterization
    # frames (attributed to the pool:characterize:<name> span) mid-task.
    arm_profiling()
    profile_agent = ProfileAgent(
        init["store_root"], instance=f"pool-{os.getpid():x}", role="pool"
    ).start()
    tasks_done = REGISTRY.counter(
        "repro_pool_tasks_total",
        "Workload characterizations finished by pool workers, by outcome",
        ("outcome",),
    )
    cluster = Cluster()
    context = RunContext(scale=init["scale"], seed=init["seed"])
    store = ResultStore(init["store_root"])
    while True:
        task = tasks.get()
        if task is None:
            profile_agent.close()
            shards.close()
            return
        generation, index, name, store_key, meta = task
        if os.environ.get(CRASH_ENV) == name:
            os._exit(13)
        span_args = {"workload": name}
        correlation = (meta or {}).get("correlation_id")
        if correlation:
            span_args["correlation_id"] = correlation
        try:
            with tracer.span(f"pool:characterize:{name}", "pool", **span_args):
                characterization = _characterize_with_retries(
                    cluster,
                    workload_by_name(name),
                    context,
                    init["measurement"],
                    init["faults"],
                    init["retries"],
                    init["timeline"],
                    init["flight_capacity"],
                )
            digest, nbytes = store.put_object(
                store_key, characterization_to_payload(characterization)
            )
            compact = CompactResult(
                name=characterization.name,
                metrics=dict(characterization.metrics),
                checks=dict(characterization.run.checks),
                attempts=characterization.attempts,
                faults=characterization.faults,
                store_key=store_key,
                digest=digest,
                nbytes=nbytes,
            )
            tasks_done.inc(outcome="ok")
            results.put((generation, index, "ok", compact))
        except BaseException as error:  # noqa: BLE001 — must reach the parent
            tasks_done.inc(outcome="error")
            results.put(
                (
                    generation,
                    index,
                    "error",
                    {"type": type(error).__name__, "message": str(error)},
                )
            )
            if not isinstance(error, Exception):
                profile_agent.close()
                shards.close()
                raise  # KeyboardInterrupt/SystemExit: report, then die
        # Publish the finished task's span and counters promptly — a
        # merge right after a job completes must see this worker's lane.
        shards.write_now()


# -- parent side ---------------------------------------------------------------


class CollectionPool:
    """A fixed set of long-lived collection workers (see module docstring)."""

    def __init__(self, workers: int, init: dict) -> None:
        if workers < 1:
            raise WorkerPoolError("a pool needs at least one worker")
        ctx = multiprocessing.get_context()
        self.workers = workers
        self.store_root = init["store_root"]
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._generation = 0
        self._lock = threading.Lock()
        self._closed = False
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(self._tasks, self._results, init),
                daemon=True,
                name=f"repro-pool-{i}",
            )
            for i in range(workers)
        ]
        for proc in self._procs:
            proc.start()

    # -- submission -----------------------------------------------------------

    def run(
        self,
        items: list[tuple[str, str]],
        cancel: threading.Event | None = None,
        on_result: Callable[[int, CompactResult], None] | None = None,
        meta: dict | None = None,
    ) -> list[CompactResult]:
        """Characterize ``items`` (``(name, store_key)`` pairs), in order.

        Tasks are dispatched at most ``workers`` at a time, so a
        cooperative cancel only ever has to drain what is actually
        running.  ``on_result`` fires in *submission* order as results
        become emittable (later completions are buffered), exactly like
        the serial path's per-workload callback.

        ``meta`` is an optional JSON-safe annotation dict (correlation
        ids) that rides along on every task for the workers' telemetry;
        it never influences the characterizations.

        Raises:
            WorkerPoolError: A worker died mid-task; the pool is torn
                down and must not be reused.
            CollectionCancelled: ``cancel`` was set; in-flight tasks
                were drained and the pool remains healthy.
            StackExecutionError, AnalysisError, StoreError: Re-raised
                from the worker that hit them.
        """
        with self._lock:
            if self._closed:
                raise WorkerPoolError("pool is shut down")
            self._generation += 1
            generation = self._generation
            return self._run_locked(generation, items, cancel, on_result, meta)

    def _run_locked(self, generation, items, cancel, on_result, meta=None):
        pending = deque(enumerate(items))
        outstanding: dict[int, str] = {}
        buffered: dict[int, CompactResult] = {}
        ordered: list[CompactResult] = []
        next_emit = 0
        cancelled = False

        def emit_ready() -> None:
            nonlocal next_emit
            while next_emit in buffered:
                result = buffered.pop(next_emit)
                ordered.append(result)
                if on_result is not None:
                    on_result(next_emit, result)
                next_emit += 1

        while pending or outstanding:
            if cancel is not None and cancel.is_set():
                cancelled = True
                pending.clear()
                if not outstanding:
                    break
            while pending and len(outstanding) < self.workers:
                index, (name, store_key) = pending.popleft()
                self._tasks.put((generation, index, name, store_key, meta))
                outstanding[index] = name
            if not outstanding:
                continue
            try:
                gen, index, status, data = self._results.get(timeout=_POLL_S)
            except queue.Empty:
                self._check_alive(outstanding)
                continue
            if gen != generation:
                continue  # stale result from an abandoned run
            outstanding.pop(index, None)
            if status == "error":
                self._raise_worker_error(data)
            buffered[index] = data
            if not cancelled:
                emit_ready()
        if cancelled:
            raise CollectionCancelled(
                "suite collection cancelled; in-flight workloads drained"
            )
        emit_ready()
        return ordered

    def _raise_worker_error(self, data: dict) -> None:
        cls = _RERAISABLE.get(data["type"])
        if cls is not None:
            raise cls(data["message"])
        raise WorkerPoolError(
            f"collection worker failed: {data['type']}: {data['message']}"
        )

    def _check_alive(self, outstanding: dict[int, str]) -> None:
        dead = [p for p in self._procs if not p.is_alive()]
        if not dead:
            return
        names = ", ".join(sorted(outstanding.values())) or "none"
        codes = ", ".join(str(p.exitcode) for p in dead)
        self._teardown()
        raise WorkerPoolError(
            f"{len(dead)} collection worker(s) died (exit codes: {codes}) "
            f"with workloads outstanding: {names}"
        )

    # -- lifecycle ------------------------------------------------------------

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop all workers: sentinel each, join, terminate stragglers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for _ in self._procs:
                try:
                    self._tasks.put(None)
                except (OSError, ValueError):
                    break
            for proc in self._procs:
                proc.join(timeout=timeout)
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
            self._tasks.close()
            self._results.close()

    def _teardown(self) -> None:
        """Kill a broken pool (called with the run lock already held)."""
        self._closed = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=1.0)
        self._tasks.close()
        self._results.close()
        _forget(self)

    @property
    def closed(self) -> bool:
        return self._closed


# -- singleton management ------------------------------------------------------

_POOLS: dict[tuple, CollectionPool] = {}
_POOLS_LOCK = threading.Lock()
_SPILL_DIR: str | None = None

#: Forked workers inherit this module's atexit hooks; every hook below
#: is guarded on the registering process so a worker exiting never
#: deletes the shared spill store or sentinels its own siblings.
_OWNER_PID = os.getpid()


def _cleanup_spill(path: str) -> None:
    if os.getpid() == _OWNER_PID:
        shutil.rmtree(path, ignore_errors=True)


def pool_spill_dir() -> str:
    """The pool-owned spill store root for cache-less collections.

    Created on first use, shared by every pool in the process, and
    removed at interpreter exit — lazy results memoized by the
    collection layer can hydrate for as long as the process lives.
    """
    global _SPILL_DIR
    with _POOLS_LOCK:
        if _SPILL_DIR is None:
            _SPILL_DIR = tempfile.mkdtemp(prefix="repro-pool-spill-")
            atexit.register(_cleanup_spill, _SPILL_DIR)
        return _SPILL_DIR


def get_pool(workers: int, init: dict, token: str) -> CollectionPool:
    """The process-wide pool for ``(workers, token, store_root)``.

    A healthy matching pool is reused; a differing configuration shuts
    the old pool down first (one pool's worth of processes at a time).
    """
    key = (workers, token, str(init["store_root"]))
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is not None and not pool.closed:
            return pool
        for old in list(_POOLS.values()):
            old.shutdown()
        _POOLS.clear()
        pool = CollectionPool(workers, init)
        _POOLS[key] = pool
        return pool


def _forget(pool: CollectionPool) -> None:
    with _POOLS_LOCK:
        for key, value in list(_POOLS.items()):
            if value is pool:
                del _POOLS[key]


def shutdown_pools() -> None:
    """Shut down every live pool (atexit hook; also used by tests)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


def _atexit_shutdown() -> None:
    if os.getpid() == _OWNER_PID:
        shutdown_pools()


atexit.register(_atexit_shutdown)
