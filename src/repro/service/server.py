"""Stdlib-only HTTP API over the characterization store and job manager.

``repro serve`` (or :func:`serve` programmatically) exposes the whole
reproduction as a JSON service::

    GET  /                      service info + endpoint table
    GET  /workloads             the suite's Table I metadata
    GET  /metrics               fleet-wide metrics (Prometheus text format)
    GET  /metrics/catalog       the 45 Table II metric specs
    GET  /stats                 runtime metrics + store/job state as JSON
    GET  /fleet                 per-worker liveness + merged fleet totals
    GET  /trace                 merged multi-process Chrome trace
    GET  /characterize/<name>   one workload's full characterization
    GET  /suite/matrix          the workload × metric matrix
    GET  /subset?k=K            K-means representative subset (Table V)
    GET  /subset?budget=S       budget-aware subset (S seconds of simulation)
    GET  /observations          the paper's Observations 1-9, scored
    GET  /jobs, /jobs/<id>      collection-job states and progress
    DELETE /jobs/<id>           cooperative cancellation

Serving model: endpoints that need data a cold store cannot provide
submit a job to the :class:`~repro.service.jobs.JobManager` and block
until it lands — single-flight deduplication means a stampede of
identical cold requests runs exactly one collection, and every waiter
then streams the *same stored bytes*.  Store-backed responses carry the
store's content hash as a strong ETag; conditional requests
(``If-None-Match``) short-circuit to 304 with no body.  Pass
``?wait=0`` to ``/characterize`` to get 202 + a job snapshot instead of
blocking.

Everything here is standard library (``http.server`` with
``ThreadingHTTPServer``); the service owns a thread pool only through
its job manager.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.cluster.collection import (
    CollectionConfig,
    characterize_suite,
    suite_store_key,
    workload_store_key,
)
from repro.core.subsetting import subset_workloads
from repro.errors import ReproError, ServiceError, WorkloadError
from repro.metrics.catalog import METRICS
from repro.obs.fleet import (
    ShardWriter,
    fleet_status,
    merge_store_traces,
    read_live_shards,
    render_merged,
)
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.prof import (
    DEFAULT_INTERVAL_MS,
    DEFAULT_WINDOW_S,
    MAX_WINDOW_S,
    ProfileAgent,
    arm as arm_profiling,
    collapsed_stacks,
    collect_fleet_profile,
    request_profile,
)
from repro.obs.trace import Tracer, span as obs_span, tracing
from repro.service.jobs import JobManager, JobState
from repro.service.store import ResultStore, resolve_cache_dir
from repro.workloads.base import Workload
from repro.workloads.suite import SUITE, closest_workloads, workload_by_name

__all__ = [
    "ServiceConfig",
    "CharacterizationService",
    "serve",
    "CORRELATION_HEADER",
]

_JSON = "application/json"
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"
_HTML = "text/html; charset=utf-8"
_EVENT_STREAM = "text/event-stream"

#: Request header carrying the client's correlation id; propagated into
#: the server's request span and onto the job it submits/joins.
CORRELATION_HEADER = "X-Repro-Correlation-Id"

#: Ring bound of the service's long-running tracer (newest spans win).
_TRACE_CAPACITY = 8192

_log = get_logger("repro.service.server")

_HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by endpoint (first path segment) and status",
    ("endpoint", "status"),
)
_HTTP_SECONDS = REGISTRY.histogram(
    "repro_http_request_seconds",
    "Wall time spent handling one HTTP request",
)


@dataclass(frozen=True)
class ServiceConfig:
    """What one service instance serves and how it collects it.

    Attributes:
        collection: Measurement protocol for every collection the
            service runs (scale, seed, slaves, cores, ops).
        workloads: The suite this instance serves (tests shrink it).
        cache_dir: Store root; ``None`` falls back to ``REPRO_CACHE_DIR``
            or a private temporary directory.
        workers: Process fan-out within one collection.
        request_timeout_s: How long a blocking endpoint waits for its
            job before giving up with 504.
        subsetting_seed: Seed for the ``/subset`` K-means restarts.
        tracing: Record request and job spans in a bounded service
            tracer (correlation ids from ``X-Repro-Correlation-Id``
            land in span args).  The tracer keeps only the newest
            spans, so a long-lived service cannot grow without bound.
    """

    collection: CollectionConfig = CollectionConfig()
    workloads: tuple[Workload, ...] = SUITE
    cache_dir: str | None = None
    workers: int = 1
    request_timeout_s: float = 600.0
    subsetting_seed: int = 0
    tracing: bool = True


class _HttpError(Exception):
    """Internal: mapped to an HTTP error response."""

    def __init__(self, status: int, message: str, extra: dict | None = None):
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **(extra or {})}


@dataclass
class _Response:
    status: int
    body: bytes
    etag: str | None = None
    content_type: str = _JSON
    #: When set, ``body`` is ignored and the handler streams these byte
    #: chunks with ``Connection: close`` (the SSE path).
    stream: object | None = None


def _dumps(payload) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def _computed(payload, status: int = 200) -> _Response:
    """A deterministic JSON response with a body-derived ETag."""
    body = _dumps(payload)
    return _Response(status, body, etag=hashlib.sha256(body).hexdigest()[:32])


class CharacterizationService:
    """Endpoint logic, independent of the HTTP plumbing (unit-testable)."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        cache_dir = resolve_cache_dir(self.config.cache_dir)
        if cache_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-service-")
            cache_dir = self._tmp.name
        self.store = ResultStore(cache_dir)
        self.tracer = (
            Tracer(max_events=_TRACE_CAPACITY) if self.config.tracing else None
        )
        self.jobs = JobManager(
            self.store,
            config=self.config.collection,
            workers=self.config.workers,
            tracer=self.tracer,
        )
        self._lock = threading.Lock()
        self._derived: dict[tuple, _Response] = {}
        # Warm-path caches, all validated against the store's etag (one
        # stat() per request): the parsed suite entry and per-workload
        # characterization responses.  A sibling worker rewriting the
        # store invalidates them on the next request automatically.
        self._suite_cache: tuple[str, dict] | None = None
        self._char_cache: dict[str, tuple[str, _Response]] = {}
        # Fleet telemetry: this process's metric shard (and trace spill)
        # in the shared store, merged with the siblings' at scrape time.
        self.shards = ShardWriter(
            self.store.root,
            instance=f"server-{self.jobs.instance}",
            role="server",
            tracer=self.tracer,
        ).start()
        # Continuous-profiling plane: install the sampling signal
        # handlers while we may still be on the main thread (a no-op
        # otherwise — the profiler then falls back to its thread clock)
        # and answer fleet-wide sampling windows from a daemon agent.
        arm_profiling()
        self.profile_agent = ProfileAgent(
            self.store.root,
            instance=f"server-{self.jobs.instance}",
            role="server",
        ).start()

    def close(self) -> None:
        self.profile_agent.close()
        self.jobs.shutdown()
        # Final shard write *after* the jobs wind down so the last
        # counters of this worker's life are scrapeable until staleness
        # retires the shard.
        self.shards.close()

    # -- routing --------------------------------------------------------------

    def handle_get(
        self,
        path: str,
        query: dict[str, list[str]],
        correlation_id: str | None = None,
    ) -> _Response:
        parts = [p for p in path.split("/") if p]
        if not parts:
            return self._info()
        if parts == ["workloads"]:
            return self._workloads()
        if parts == ["metrics"]:
            return self._runtime_metrics()
        if parts == ["metrics", "catalog"]:
            return self._metric_catalog()
        if parts == ["stats"]:
            return self._stats()
        if parts == ["fleet"]:
            return self._fleet()
        if parts == ["healthz"]:
            return self._healthz()
        if parts == ["readyz"]:
            return self._readyz()
        if parts == ["trace"]:
            return self._merged_trace()
        if parts == ["profile"]:
            return self._profile(query)
        if len(parts) == 2 and parts[0] == "characterize":
            wait = query.get("wait", ["1"])[0] not in ("0", "false", "no")
            return self._characterize(
                parts[1], wait=wait, correlation_id=correlation_id
            )
        if parts == ["suite", "matrix"]:
            return self._matrix(correlation_id)
        if parts == ["subset"]:
            return self._subset(query, correlation_id)
        if parts == ["observations"]:
            return self._observations(correlation_id)
        if parts == ["dashboard"]:
            return self._dashboard(correlation_id)
        if parts == ["jobs"]:
            # Merged across the worker fleet: local jobs plus every
            # sibling's persisted snapshots from the shared store.
            return _computed(self.jobs.shared_jobs())
        if len(parts) == 2 and parts[0] == "jobs":
            snapshot = self.jobs.load_shared(parts[1])
            if snapshot is None:
                raise _HttpError(404, f"no such job {parts[1]!r}")
            return _computed(snapshot)
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
            return self._job_events(parts[1], query)
        raise _HttpError(404, f"no such endpoint {path!r}")

    def handle_delete(self, path: str) -> _Response:
        parts = [p for p in path.split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            snapshot = self.jobs.load_shared(parts[1])
            if snapshot is None:
                raise _HttpError(404, f"no such job {parts[1]!r}")
            cancelled = self.jobs.request_shared_cancel(parts[1])
            return _computed({"id": snapshot["id"], "cancelled": cancelled})
        raise _HttpError(404, f"no such endpoint {path!r}")

    # -- endpoints ------------------------------------------------------------

    def _info(self) -> _Response:
        return _computed(
            {
                "service": "repro-characterization",
                "instance": self.jobs.instance,
                "suite_size": len(self.config.workloads),
                "store_entries": len(self.store),
                "collection_key": self.config.collection.cache_key(),
                "endpoints": [
                    "/workloads",
                    "/metrics",
                    "/metrics/catalog",
                    "/stats",
                    "/fleet",
                    "/healthz",
                    "/readyz",
                    "/trace",
                    "/profile?seconds=N",
                    "/characterize/<name>",
                    "/suite/matrix",
                    "/subset?k=K",
                    "/subset?budget=SECONDS",
                    "/observations",
                    "/dashboard",
                    "/jobs",
                    "/jobs/<id>/events",
                ],
            }
        )

    def _workloads(self) -> _Response:
        return _computed(
            [
                {
                    "name": w.name,
                    "algorithm": w.algorithm,
                    "family": w.family.value,
                    "category": w.category.value,
                    "data_type": w.data_type.value,
                    "declared_size": w.declared_size,
                }
                for w in self.config.workloads
            ]
        )

    def _metric_catalog(self) -> _Response:
        return _computed(
            [
                {
                    "number": spec.number,
                    "name": spec.name,
                    "category": spec.category.value,
                    "kind": spec.kind.value,
                    "description": spec.description,
                }
                for spec in METRICS
            ]
        )

    def _runtime_metrics(self) -> _Response:
        """The *fleet's* runtime metrics in Prometheus text format.

        The serving worker snapshots its own registry to its shard
        first, then merges every live shard — so one scrape against any
        worker behind the shared socket reports the whole fleet
        (sibling workers, the supervisor, the collection pool), and the
        reported totals exactly equal the sum of the on-disk shards.

        No ETag: the body changes with every observation, and scrapers
        poll unconditionally anyway.
        """
        self.shards.write_now()
        text = render_merged(read_live_shards(self.store.root))
        return _Response(200, text.encode("utf-8"), content_type=_PROMETHEUS)

    def _fleet(self) -> _Response:
        """``/fleet``: per-process liveness and merged fleet totals."""
        self.shards.write_now()
        status = fleet_status(read_live_shards(self.store.root))
        ready, problems = self._readiness()
        status["health"] = {
            "instance": self.jobs.instance,
            "healthy": True,  # we are answering, by definition
            "ready": ready,
            "problems": problems,
        }
        return _Response(200, _dumps(status))

    # -- health probes ----------------------------------------------------

    def _healthz(self) -> _Response:
        """``/healthz``: pure liveness — this worker is answering."""
        return _Response(
            200,
            _dumps(
                {
                    "ok": True,
                    "instance": self.jobs.instance,
                    "pid": os.getpid(),
                }
            ),
        )

    def _readiness(self) -> tuple[bool, list[str]]:
        """Store reachable + our shard heartbeat fresh (the /readyz body)."""
        problems: list[str] = []
        try:
            if not self.store.root.is_dir():
                problems.append(f"store root {self.store.root} is missing")
        except OSError as exc:  # pragma: no cover - defensive
            problems.append(f"store root unreachable: {exc}")
        freshness = max(3.0 * self.shards.interval_s, 5.0)
        try:
            age = time.time() - self.shards.path.stat().st_mtime
            if age > freshness:
                problems.append(
                    f"own metric shard heartbeat is {age:.1f}s old "
                    f"(budget {freshness:.1f}s)"
                )
        except OSError:
            problems.append("own metric shard has not been written")
        return (not problems, problems)

    def _readyz(self) -> _Response:
        """``/readyz``: 200 when this worker can serve store-backed
        traffic, 503 (with the reasons) when it cannot."""
        ready, problems = self._readiness()
        payload = {
            "ready": ready,
            "instance": self.jobs.instance,
            "pid": os.getpid(),
            "problems": problems,
        }
        return _Response(200 if ready else 503, _dumps(payload))

    def _profile(self, query: dict[str, list[str]]) -> _Response:
        """``/profile?seconds=N``: an on-demand merged fleet CPU profile.

        Publishes a sampling window through the store (concurrent
        requests join the same window), lets every process's
        :class:`~repro.obs.prof.ProfileAgent` sample and spill, then
        merges the spills.  ``format=json`` (default) returns the merged
        profile document, ``format=collapsed`` flamegraph-ready text,
        ``format=flame`` the self-contained HTML flamegraph panel.
        """
        try:
            seconds = float(query.get("seconds", [str(DEFAULT_WINDOW_S)])[0])
            interval = float(
                query.get("interval", [str(DEFAULT_INTERVAL_MS)])[0]
            )
        except ValueError:
            raise _HttpError(
                400, "seconds and interval must be numbers"
            ) from None
        if not 0.2 <= seconds <= MAX_WINDOW_S:
            raise _HttpError(
                400, f"seconds must be in [0.2, {MAX_WINDOW_S:g}]"
            )
        mode = query.get("mode", ["wall"])[0]
        if mode not in ("wall", "cpu"):
            raise _HttpError(400, f"unknown profile mode {mode!r}")
        fmt = query.get("format", ["json"])[0]
        if fmt not in ("json", "collapsed", "flame"):
            raise _HttpError(400, f"unknown profile format {fmt!r}")
        request = request_profile(
            self.store.root, seconds=seconds, interval_ms=interval, mode=mode
        )
        merged = collect_fleet_profile(self.store.root, request)
        if fmt == "collapsed":
            text = collapsed_stacks(merged) + "\n"
            return _Response(
                200,
                text.encode("utf-8"),
                content_type="text/plain; charset=utf-8",
            )
        if fmt == "flame":
            from repro.analysis.dashboard import render_profile_page

            html = render_profile_page(merged)
            return _Response(
                200, html.encode("utf-8"), content_type=_HTML
            )
        return _Response(200, _dumps(merged))

    def _merged_trace(self) -> _Response:
        """``/trace``: every process's trace spill stitched into one
        Chrome Trace Event document (distinct pid lanes, rebased onto a
        common timeline — see :func:`repro.obs.fleet.merge_traces`)."""
        if self.tracer is not None:
            # Flush this worker's newest spans so the merge includes the
            # requests that led up to this one.
            self.shards.spill_trace()
        merged = merge_store_traces(self.store.root)
        return _Response(200, _dumps(merged))

    def _stats(self) -> _Response:
        """Runtime metrics plus store/job state as one JSON document."""
        jobs = [job.snapshot() for job in self.jobs.jobs()]
        return _Response(
            200,
            _dumps(
                {
                    "metrics": REGISTRY.snapshot(),
                    "store": {
                        "entries": len(self.store),
                        "bytes": self.store.total_bytes(),
                        "root": str(self.store.root),
                    },
                    "jobs": {
                        "total": len(jobs),
                        "live": sum(
                            1 for j in jobs
                            if j["state"] in ("queued", "running")
                        ),
                        "recent_events": [
                            event
                            for job in jobs[-5:]
                            for event in job["events"]
                        ][-50:],
                    },
                }
            ),
        )

    def _resolve(self, name: str) -> Workload:
        try:
            return workload_by_name(name)
        except WorkloadError:
            raise _HttpError(
                404,
                f"unknown workload {name!r}",
                {"suggestions": list(closest_workloads(name))},
            ) from None

    def _characterize(
        self, name: str, wait: bool, correlation_id: str | None = None
    ) -> _Response:
        workload = self._resolve(name)
        key = workload_store_key(self.config.collection, workload.name)
        etag = self.store.etag(key)
        if etag is not None:
            with self._lock:
                cached = self._char_cache.get(key)
            if cached is not None and cached[0] == etag:
                return cached[1]
        raw = self.store.get_raw(key, touch=False)
        if raw is None:
            if not wait:
                job = self.jobs.submit(
                    (workload.name,), correlation_id=correlation_id
                )
                return _computed(job.snapshot(), status=202)
            job = self._await_job((workload.name,), correlation_id)
            raw = self.store.get_raw(key, touch=False)
            if raw is None:
                raise _HttpError(
                    500, f"{job.id} finished but {key!r} is not in the store"
                )
        body, etag = raw
        response = _Response(200, body, etag=etag)
        with self._lock:
            self._char_cache[key] = (etag, response)
        return response

    def _ensure_suite(
        self, correlation_id: str | None = None
    ) -> tuple[dict, str]:
        """The suite entry + its ETag, collecting (single-flight) if cold."""
        key = suite_store_key(self.config.collection, self.config.workloads)
        etag = self.store.etag(key)
        if etag is not None:
            with self._lock:
                cached = self._suite_cache
            if cached is not None and cached[0] == etag:
                return cached[1], etag
        entry = self.store.get(key, touch=False)
        if entry is None:
            self._await_job(
                tuple(w.name for w in self.config.workloads), correlation_id
            )
            entry = self.store.get(key, touch=False)
            if entry is None:
                raise _HttpError(500, f"suite entry {key!r} missing after collection")
        etag = self.store.etag(key) or ""
        if etag:
            with self._lock:
                self._suite_cache = (etag, entry)
        return entry, etag

    def _await_job(
        self, names: tuple[str, ...], correlation_id: str | None = None
    ):
        try:
            job = self.jobs.collect(
                names,
                timeout=self.config.request_timeout_s,
                correlation_id=correlation_id,
            )
        except ServiceError as exc:
            raise _HttpError(504, str(exc)) from exc
        if job.state is JobState.FAILED:
            raise _HttpError(500, f"{job.id} failed: {job.error}")
        if job.state is JobState.CANCELLED:
            raise _HttpError(503, f"{job.id} was cancelled")
        return job

    def _job_events(
        self, job_id: str, query: dict[str, list[str]]
    ) -> _Response:
        """``/jobs/<id>/events``: the job's lifecycle as an SSE stream.

        Replays every recorded event from the start (so a stream opened
        after a fast job finished still sees submit → progress → done),
        then follows the live job until it reaches a terminal state or
        the ``timeout`` query parameter (seconds) elapses.

        Jobs owned by a *sibling* worker process stream too: their
        persisted snapshots are replayed and then tailed from the shared
        store, so any worker behind the shared socket can serve any
        job's event stream.
        """
        job = self.jobs.get(job_id)
        if job is None and self.jobs.load_shared(job_id) is None:
            raise _HttpError(404, f"no such job {job_id!r}")
        try:
            timeout = float(
                query.get("timeout", [str(self.config.request_timeout_s)])[0]
            )
        except ValueError:
            raise _HttpError(400, "timeout must be a number") from None

        def format_event(index: int, event: dict) -> bytes:
            payload = _dumps(event).decode("utf-8")
            return (
                f"id: {index}\n"
                f"event: {event['event']}\n"
                f"data: {payload}\n\n"
            ).encode("utf-8")

        def stream_local():
            deadline = time.monotonic() + timeout
            index = 0

            def drain():
                nonlocal index
                # Snapshot the list: note() only appends, so a slice is
                # always a consistent prefix.
                events = list(job.events)
                while index < len(events):
                    event = events[index]
                    index += 1
                    yield format_event(index, event)

            while True:
                yield from drain()
                if job._done.is_set():
                    yield from drain()  # the terminal note, if it raced
                    yield b"event: end-of-stream\ndata: {}\n\n"
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    yield b"event: stream-timeout\ndata: {}\n\n"
                    return
                job._done.wait(min(0.05, remaining))

        def stream_shared():
            # Sibling-owned job: tail its persisted snapshot.  The owner
            # rewrites the file atomically on every lifecycle event, so
            # each poll sees a consistent, append-only event prefix.
            deadline = time.monotonic() + timeout
            index = 0
            while True:
                snapshot = self.jobs.load_shared(job_id) or {}
                events = snapshot.get("events", [])
                while index < len(events):
                    event = events[index]
                    index += 1
                    yield format_event(index, event)
                if snapshot.get("state") in ("done", "failed", "cancelled"):
                    yield b"event: end-of-stream\ndata: {}\n\n"
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    yield b"event: stream-timeout\ndata: {}\n\n"
                    return
                time.sleep(min(0.05, remaining))

        stream = stream_local() if job is not None else stream_shared()
        return _Response(200, b"", content_type=_EVENT_STREAM, stream=stream)

    def _matrix(self, correlation_id: str | None = None) -> _Response:
        entry, etag = self._ensure_suite(correlation_id)
        with self._lock:
            cached = self._derived.get(("matrix", etag))
            if cached is None:
                cached = _Response(200, _dumps(entry["matrix"]), etag=etag)
                self._derived[("matrix", etag)] = cached
        return cached

    def _subset(
        self,
        query: dict[str, list[str]],
        correlation_id: str | None = None,
    ) -> _Response:
        if "budget" in query and "k" in query:
            raise _HttpError(
                400, "provide either k (cluster count) or budget (seconds), not both"
            )
        if "budget" in query:
            return self._subset_budgeted(query["budget"][0], correlation_id)
        k: int | None = None
        if "k" in query:
            try:
                k = int(query["k"][0])
            except ValueError:
                raise _HttpError(400, f"k must be an integer, got {query['k'][0]!r}")
        n = len(self.config.workloads)
        if k is not None and not 2 <= k <= n - 1:
            raise _HttpError(400, f"k must be in [2, {n - 1}] for {n} workloads")
        entry, etag = self._ensure_suite(correlation_id)
        cache_key = ("subset", etag, k)
        with self._lock:
            cached = self._derived.get(cache_key)
        if cached is not None:
            return cached

        import numpy as np

        from repro.core.dataset import WorkloadMetricMatrix

        matrix = WorkloadMetricMatrix(
            workloads=tuple(entry["matrix"]["workloads"]),
            values=np.array(entry["matrix"]["values"], dtype=float),
        )
        try:
            if k is None:
                result = subset_workloads(matrix, seed=self.config.subsetting_seed)
            else:
                result = subset_workloads(
                    matrix, seed=self.config.subsetting_seed, k_min=k, k_max=k
                )
        except ReproError as exc:
            raise _HttpError(400, f"subsetting failed: {exc}") from exc

        def reps(representatives) -> list[dict]:
            return [
                {
                    "workload": rep.workload,
                    "cluster_size": rep.cluster_size,
                    "members": list(rep.members),
                    "distance_to_center": rep.distance_to_center,
                }
                for rep in representatives
            ]

        response = _computed(
            {
                "k": result.clustering.k,
                "requested_k": k,
                "pca_kept": result.pca.n_kept,
                "retained_variance": result.pca.retained_variance,
                "representative_subset": list(result.representative_subset),
                "farthest": reps(result.farthest),
                "nearest": reps(result.nearest),
            }
        )
        with self._lock:
            self._derived[cache_key] = response
        return response

    def _workload_costs(self, entry: dict):
        """Per-workload simulated-runtime costs for the collected suite.

        Served from the persisted cost table when present; otherwise the
        stored characterizations are hydrated, costed and the table is
        persisted for the next request.  A workload whose per-workload
        store entry was evicted gets the median cost of its peers
        (source ``"median"``) — the selection pool must still span the
        whole matrix.
        """
        from repro.service.store import characterization_from_payload
        from repro.subset.cost import (
            WorkloadCost,
            estimate_costs,
            load_costs,
            persist_costs,
        )

        suite_key = suite_store_key(self.config.collection, self.config.workloads)
        names = list(entry["workloads"])
        cached = load_costs(self.store, suite_key)
        if cached is not None and sorted(c.workload for c in cached) == sorted(
            names
        ):
            return cached

        characterizations = []
        for name in names:
            payload = self.store.get(
                workload_store_key(self.config.collection, name), touch=False
            )
            if payload is not None:
                characterizations.append(characterization_from_payload(payload))
        if not characterizations:
            raise _HttpError(
                500, "no stored characterizations to derive subset costs from"
            )
        costs = list(estimate_costs(characterizations))
        known = {cost.workload for cost in costs}
        missing = [name for name in names if name not in known]
        if missing:
            seconds = sorted(cost.seconds for cost in costs)
            mid = len(seconds) // 2
            median = (
                seconds[mid]
                if len(seconds) % 2
                else 0.5 * (seconds[mid - 1] + seconds[mid])
            )
            costs.extend(
                WorkloadCost(
                    workload=name, seconds=median, source="median",
                    raw_units=median,
                )
                for name in missing
            )
        costs = tuple(costs)
        persist_costs(self.store, suite_key, costs)
        return costs

    def _subset_budgeted(
        self, raw_budget: str, correlation_id: str | None = None
    ) -> _Response:
        try:
            budget_s = float(raw_budget)
        except ValueError:
            raise _HttpError(
                400, f"budget must be a number of seconds, got {raw_budget!r}"
            ) from None
        if not math.isfinite(budget_s) or budget_s <= 0:
            raise _HttpError(
                400, f"budget must be a positive number of seconds, got {raw_budget!r}"
            )
        entry, etag = self._ensure_suite(correlation_id)
        cache_key = ("subset-budget", etag, budget_s)
        with self._lock:
            cached = self._derived.get(cache_key)
        if cached is not None:
            return cached

        import numpy as np

        from repro.core.pca import fit_pca
        from repro.errors import SubsetError
        from repro.subset.select import select_budgeted

        labels = tuple(entry["matrix"]["workloads"])
        values = np.array(entry["matrix"]["values"], dtype=float)
        costs = self._workload_costs(entry)
        try:
            points = fit_pca(values).scores
            selection = select_budgeted(points, labels, costs, budget_s)
        except SubsetError as exc:
            raise _HttpError(400, str(exc)) from exc
        except ReproError as exc:
            raise _HttpError(400, f"budgeted subsetting failed: {exc}") from exc

        by_name = {cost.workload: cost for cost in costs}
        body = selection.to_dict()
        body["cost_sources"] = {
            pick.workload: by_name[pick.workload].source
            for pick in selection.picks
        }
        response = _computed(body)
        with self._lock:
            self._derived[cache_key] = response
        return response

    def _observations(self, correlation_id: str | None = None) -> _Response:
        if tuple(w.name for w in self.config.workloads) != tuple(
            w.name for w in SUITE
        ):
            raise _HttpError(
                409, "observations need the full 32-workload suite configured"
            )
        _, etag = self._ensure_suite(correlation_id)
        cache_key = ("observations", etag)
        with self._lock:
            cached = self._derived.get(cache_key)
        if cached is not None:
            return cached

        from repro.analysis.experiment import ExperimentConfig, run_experiment
        from repro.analysis.observations import evaluate_observations

        # The suite is already in the memo/store; this only reruns the
        # statistics, not the engines.
        experiment = run_experiment(
            ExperimentConfig(
                collection=self.config.collection,
                subsetting_seed=self.config.subsetting_seed,
                cache_dir=str(self.store.root),
            )
        )
        observations = evaluate_observations(experiment)
        response = _computed(
            {
                "observations": [
                    {
                        "number": o.number,
                        "paper_claim": o.paper_claim,
                        "measured": o.measured,
                        "holds": o.holds,
                    }
                    for o in observations
                ],
                "holding": sum(1 for o in observations if o.holds),
            }
        )
        with self._lock:
            self._derived[cache_key] = response
        return response

    def _dashboard(self, correlation_id: str | None = None) -> _Response:
        """``/dashboard``: the suite as one self-contained HTML page."""
        import numpy as np

        from repro.analysis.dashboard import render_dashboard
        from repro.core.dataset import WorkloadMetricMatrix
        from repro.core.subsetting import subset_workloads
        from repro.service.store import characterization_from_payload

        entry, etag = self._ensure_suite(correlation_id)
        cache_key = ("dashboard", etag)
        with self._lock:
            cached = self._derived.get(cache_key)
        if cached is not None:
            return cached

        characterizations = []
        for name in entry["workloads"]:
            payload = self.store.get(
                workload_store_key(self.config.collection, name), touch=False
            )
            if payload is not None:
                characterizations.append(characterization_from_payload(payload))
        matrix = WorkloadMetricMatrix(
            workloads=tuple(entry["matrix"]["workloads"]),
            values=np.array(entry["matrix"]["values"], dtype=float),
        )
        subsetting = None
        try:
            subsetting = subset_workloads(
                matrix, seed=self.config.subsetting_seed
            )
        except ReproError:
            pass  # tiny suites can't cluster; the dashboard degrades
        budgeted = None
        try:
            from repro.core.pca import fit_pca
            from repro.subset.select import select_budgeted

            costs = self._workload_costs(entry)
            budgeted = select_budgeted(
                fit_pca(matrix.values).scores,
                matrix.workloads,
                costs,
                # Default operating point: half the pool's simulation cost.
                0.5 * sum(cost.seconds for cost in costs),
            )
        except (ReproError, _HttpError):
            pass  # cost-less stores degrade to the placeholder text
        html = render_dashboard(
            matrix,
            characterizations,
            subsetting=subsetting,
            title="repro characterization dashboard",
            budgeted=budgeted,
        )
        response = _Response(
            200,
            html.encode("utf-8"),
            etag=hashlib.sha256(html.encode("utf-8")).hexdigest()[:32],
            content_type=_HTML,
        )
        with self._lock:
            self._derived[cache_key] = response
        return response


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP plumbing: routing, ETag/304, error mapping."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"
    # TCP_NODELAY: a keep-alive client's next request must not wait out
    # Nagle + delayed-ACK (~40ms) because headers and body left in
    # separate segments.
    disable_nagle_algorithm = True

    @property
    def service(self) -> CharacterizationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, response: _Response) -> None:
        if response.stream is not None:
            # SSE path: no Content-Length, so HTTP/1.1 framing requires
            # Connection: close — the stream ends when the job does.
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Cache-Control", "no-store")
            self.send_header("Connection", "close")
            self.close_connection = True
            self.end_headers()
            for chunk in response.stream:
                self.wfile.write(chunk)
                self.wfile.flush()
            return
        etag_header = f'"{response.etag}"' if response.etag else None
        if etag_header and response.status == 200:
            conditional = self.headers.get("If-None-Match", "")
            candidates = {tag.strip() for tag in conditional.split(",")}
            if etag_header in candidates or response.etag in candidates:
                self.send_response(304)
                self.send_header("ETag", etag_header)
                self.send_header("Content-Length", "0")
                self.end_headers()
                return
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        if etag_header:
            self.send_header("ETag", etag_header)
        self.end_headers()
        self.wfile.write(response.body)

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        started = time.perf_counter()
        correlation_id = self.headers.get(CORRELATION_HEADER)
        segments = [p for p in split.path.split("/") if p]
        endpoint = f"/{segments[0]}" if segments else "/"
        span_args = {"method": method, "path": split.path}
        if correlation_id:
            span_args["correlation_id"] = correlation_id
        # Handler threads are spawned per connection: the service tracer
        # must be explicitly activated (ContextVars don't cross threads).
        with tracing(self.service.tracer), obs_span(
            f"http:{endpoint}", "http", **span_args
        ):
            try:
                if method == "GET":
                    response = self.service.handle_get(
                        split.path,
                        parse_qs(split.query),
                        correlation_id=correlation_id,
                    )
                else:
                    response = self.service.handle_delete(split.path)
            except _HttpError as exc:
                response = _Response(exc.status, _dumps(exc.payload))
            except ReproError as exc:
                response = _Response(400, _dumps({"error": str(exc)}))
            except Exception as exc:  # pragma: no cover - defensive
                _log.error(
                    "unhandled error serving request",
                    extra={"method": method, "path": split.path,
                           "error": f"{type(exc).__name__}: {exc}"},
                )
                response = _Response(
                    500, _dumps({"error": f"{type(exc).__name__}: {exc}"})
                )
        elapsed = time.perf_counter() - started
        _HTTP_REQUESTS.inc(endpoint=endpoint, status=str(response.status))
        _HTTP_SECONDS.observe(elapsed)
        _log.debug(
            "request served",
            extra={"method": method, "path": split.path,
                   "status": response.status,
                   "duration_ms": round(elapsed * 1e3, 3)},
        )
        try:
            self._send(response)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch("GET")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


def serve(
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build a ready-to-run threading server (``port=0`` picks a free one).

    The caller owns the lifecycle: ``server.serve_forever()`` to run,
    ``server.shutdown()`` + ``server.service.close()`` to stop.
    """
    service = CharacterizationService(config)
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server
