"""The characterization service: store, jobs, HTTP server, client.

Turns the reproduction into a long-running system:

- :mod:`repro.service.store` — a versioned, content-addressed result
  store that persists *full* per-workload characterizations (metrics,
  per-slave detail, the underlying run with its trace and checks), with
  atomic writes, a schema stamp and LRU bounding.
- :mod:`repro.service.jobs` — a thread-based job manager with
  single-flight deduplication: concurrent identical requests share one
  collection run, which fans workloads over the existing ``workers``
  process pool.
- :mod:`repro.service.server` — a stdlib-only ``ThreadingHTTPServer``
  JSON API (``/workloads``, ``/metrics``, ``/characterize/<name>``,
  ``/suite/matrix``, ``/subset``, ``/observations``, ``/jobs``) with
  ETag/304 support off the store's content hashes.
- :mod:`repro.service.client` — a small urllib client with transparent
  conditional-request caching.

Only the store is imported eagerly; the server/jobs/client layers are
exposed lazily so that :mod:`repro.cluster.collection` can depend on the
store without creating an import cycle.
"""

from __future__ import annotations

from repro.service.store import ResultStore, resolve_cache_dir

__all__ = [
    "ResultStore",
    "resolve_cache_dir",
    "JobManager",
    "JobState",
    "CharacterizationService",
    "ServiceConfig",
    "serve",
    "ServiceClient",
]


def __getattr__(name: str):
    if name in ("JobManager", "JobState"):
        from repro.service import jobs

        return getattr(jobs, name)
    if name in ("CharacterizationService", "ServiceConfig", "serve"):
        from repro.service import server

        return getattr(server, name)
    if name == "ServiceClient":
        from repro.service.client import ServiceClient

        return ServiceClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
