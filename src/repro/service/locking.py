"""Cross-process file locking for the shared store directory.

Everything that more than one *process* may mutate concurrently — the
result store's ``index.json``, the claim registry's records, the shared
run log — is serialized through a :class:`FileLock`: an advisory
``fcntl.flock`` on a dedicated lock file next to the protected data.

Why ``flock`` and not the lock file's mere existence:

- **Crash safety** — the kernel releases a flock when its holder dies,
  so a worker killed mid-write never wedges the store.  An
  existence-based lock needs staleness heuristics; flock needs none.
- **Blocking waits** — waiters sleep in the kernel instead of polling.

On the rare platform without :mod:`fcntl` (Windows), the class degrades
to an ``O_CREAT | O_EXCL`` spin lock with mtime-based staleness — the
same protocol the claim registry uses for its (longer-lived, content-
bearing) claim records.

Both layers compose with an in-process :class:`threading.RLock`:
``flock`` is per open-file-description, so two threads of one process
sharing the store instance must serialize *before* touching the file
lock (a second ``flock`` on the same fd would silently succeed).
"""

from __future__ import annotations

import errno
import os
import threading
import time
from pathlib import Path

try:  # pragma: no cover - exercised indirectly on every Linux test run
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.errors import StoreError

__all__ = ["FileLock"]

#: Fallback (no-fcntl) spin parameters: poll cadence and the age at
#: which an orphaned lock file is presumed dead and broken.
_SPIN_INTERVAL_S = 0.002
_STALE_FALLBACK_S = 30.0


class FileLock:
    """An advisory, reentrant, cross-process lock on one path.

    Reentrant *per instance* (guarded by an internal RLock + depth
    counter), so nested store operations in one thread do not deadlock,
    while distinct threads and distinct processes fully exclude each
    other.

    Usage::

        lock = FileLock(root / "index.lock")
        with lock:
            ... read-modify-write the protected files ...
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._thread_lock = threading.RLock()
        self._depth = 0
        self._fd: int | None = None

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self.release()

    # -- acquisition ----------------------------------------------------------

    def acquire(self, timeout: float | None = None) -> None:
        """Block until the lock is held (reentrant for this thread).

        Raises:
            StoreError: If ``timeout`` (seconds) elapses first.
        """
        if not self._thread_lock.acquire(
            timeout=-1 if timeout is None else timeout
        ):
            raise StoreError(f"timed out acquiring thread lock for {self.path}")
        if self._depth:  # reentrant: the process lock is already ours
            self._depth += 1
            return
        try:
            if fcntl is not None:
                self._acquire_flock(timeout)
            else:  # pragma: no cover - non-POSIX
                self._acquire_spin(timeout)
        except BaseException:
            self._thread_lock.release()
            raise
        self._depth = 1

    def release(self) -> None:
        if self._depth == 0:
            raise StoreError(f"release of unheld lock {self.path}")
        self._depth -= 1
        if self._depth == 0:
            try:
                if fcntl is not None:
                    self._release_flock()
                else:  # pragma: no cover - non-POSIX
                    self._release_spin()
            finally:
                self._thread_lock.release()
        else:
            self._thread_lock.release()

    def locked_by_me(self) -> bool:
        return self._depth > 0

    # -- flock backend --------------------------------------------------------

    def _acquire_flock(self, timeout: float | None) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            if timeout is None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            else:
                deadline = time.monotonic() + timeout
                while True:
                    try:
                        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except OSError as exc:
                        if exc.errno not in (errno.EACCES, errno.EAGAIN):
                            raise
                        if time.monotonic() >= deadline:
                            raise StoreError(
                                f"timed out acquiring {self.path} "
                                f"after {timeout}s"
                            ) from None
                        time.sleep(_SPIN_INTERVAL_S)
        except BaseException:
            os.close(fd)
            raise
        self._fd = fd

    def _release_flock(self) -> None:
        fd, self._fd = self._fd, None
        if fd is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    # -- O_EXCL fallback backend ----------------------------------------------

    def _acquire_spin(self, timeout: float | None) -> None:  # pragma: no cover
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                fd = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
                os.write(fd, str(os.getpid()).encode())
                self._fd = fd
                return
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                    if age > _STALE_FALLBACK_S:
                        self.path.unlink(missing_ok=True)
                        continue
                except OSError:
                    continue  # holder released between open and stat
                if deadline is not None and time.monotonic() >= deadline:
                    raise StoreError(
                        f"timed out acquiring {self.path} after {timeout}s"
                    ) from None
                time.sleep(_SPIN_INTERVAL_S)

    def _release_spin(self) -> None:  # pragma: no cover
        fd, self._fd = self._fd, None
        if fd is not None:
            os.close(fd)
        self.path.unlink(missing_ok=True)
