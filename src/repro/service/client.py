"""A small stdlib client for the characterization service.

Wraps :mod:`urllib.request` with JSON decoding and transparent
conditional requests: the client remembers each path's ETag and payload,
sends ``If-None-Match`` on revisits, and resolves a 304 from its cache —
so polling the service costs headers, not bodies.

    >>> client = ServiceClient("http://127.0.0.1:8321")
    >>> client.matrix()["workloads"][:2]
    ['H-Sort', 'H-WordCount']
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.parse
import urllib.request
from collections.abc import Iterator

from repro.errors import ServiceError

__all__ = ["ServiceClient", "CORRELATION_HEADER", "TERMINAL_JOB_STATES"]

#: Header carrying the client-chosen correlation id; the server attaches
#: its value to every span the request (and any job it spawns) records.
CORRELATION_HEADER = "X-Repro-Correlation-Id"

#: Job states after which a job's snapshot will never change again.
TERMINAL_JOB_STATES = frozenset({"done", "failed", "cancelled"})


def _service_error(message: str, status: int, payload: dict) -> ServiceError:
    """A :class:`ServiceError` carrying the server's full error context.

    The HTTP status and the decoded JSON error payload (including extras
    like ``suggestions``) ride on the exception as ``.status`` and
    ``.payload`` so callers can react programmatically instead of
    parsing the message.
    """
    error = ServiceError(message)
    error.status = status
    error.payload = dict(payload)
    return error


class ServiceClient:
    """JSON client with an ETag cache, one instance per base URL."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 600.0,
        correlation_id: str | None = None,
        jitter_seed: int | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Sent as X-Repro-Correlation-Id on every request when set, so
        #: server spans (and job spans) can be joined back to this client.
        self.correlation_id = correlation_id
        #: path -> (etag, decoded payload); hit on 304 responses.
        self._cache: dict[str, tuple[str, object]] = {}
        #: Backoff randomness for the polling fallback.  Seedable so
        #: tests can assert the exact interval sequence; unseeded
        #: clients each get their own stream, which is the point —
        #: a fleet of pollers must not fall into lockstep.
        self._jitter = random.Random(jitter_seed)

    # -- plumbing -------------------------------------------------------------

    def _request(self, path: str, method: str = "GET"):
        url = self.base_url + path
        request = urllib.request.Request(url, method=method)
        if self.correlation_id:
            request.add_header(CORRELATION_HEADER, self.correlation_id)
        cached = self._cache.get(path) if method == "GET" else None
        if cached is not None:
            request.add_header("If-None-Match", f'"{cached[0]}"')
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
                etag = (response.headers.get("ETag") or "").strip('"')
                content_type = response.headers.get("Content-Type", "")
                if not content_type.startswith("application/json"):
                    return body.decode("utf-8")
                payload = json.loads(body) if body else None
                if method == "GET" and etag:
                    self._cache[path] = (etag, payload)
                return payload
        except urllib.error.HTTPError as error:
            if error.code == 304 and cached is not None:
                return cached[1]
            payload: dict = {}
            try:
                decoded = json.loads(error.read())
                if isinstance(decoded, dict):
                    payload = decoded
            except (json.JSONDecodeError, AttributeError, ValueError):
                pass
            detail = payload.get("error") or error.reason
            extras = ", ".join(
                f"{key}={value!r}"
                for key, value in sorted(payload.items())
                if key != "error"
            )
            message = f"{method} {path} -> {error.code}: {detail}"
            if extras:
                message += f" ({extras})"
            raise _service_error(message, error.code, payload) from error
        except urllib.error.URLError as error:
            raise ServiceError(f"{method} {path}: {error.reason}") from error

    # -- endpoints ------------------------------------------------------------

    def info(self) -> dict:
        return self._request("/")

    def workloads(self) -> list[dict]:
        return self._request("/workloads")

    def metrics(self) -> list[dict]:
        """The 45 Table II metric specs (the characterization catalog)."""
        return self._request("/metrics/catalog")

    def runtime_metrics(self) -> str:
        """The service's runtime metrics as Prometheus exposition text."""
        return self._request("/metrics")

    def stats(self) -> dict:
        """Runtime metrics + store/job state as JSON."""
        return self._request("/stats")

    def fleet(self) -> dict:
        """Per-worker liveness and merged fleet totals (``/fleet``)."""
        return self._request("/fleet")

    def merged_trace(self) -> dict:
        """The fleet's merged multi-process Chrome trace (``/trace``)."""
        return self._request("/trace")

    def healthz(self) -> dict:
        """Liveness probe (``/healthz``): 200 whenever the worker is up."""
        return self._request("/healthz")

    def readyz(self) -> dict:
        """Readiness probe (``/readyz``).

        An alive-but-not-ready worker answers 503 with the same payload
        shape; that case is decoded and returned rather than raised, so
        callers branch on ``payload["ready"]`` — only transport failures
        (connection refused, timeout) raise :class:`ServiceError`.
        """
        try:
            return self._request("/readyz")
        except ServiceError as error:
            payload = getattr(error, "payload", None)
            if (
                getattr(error, "status", None) == 503
                and isinstance(payload, dict)
                and "ready" in payload
            ):
                return payload
            raise

    def profile(
        self,
        seconds: float | None = None,
        interval_ms: float | None = None,
        mode: str = "wall",
        fmt: str = "json",
    ) -> dict | str:
        """Capture a fleet-wide CPU profile (``/profile?seconds=N``).

        The serving worker opens (or joins) a sampling window across
        every fleet process and blocks until the spills are merged, so
        this call takes at least ``seconds``.  ``fmt="collapsed"``
        returns flamegraph-ready collapsed-stack text, ``fmt="flame"``
        the self-contained HTML panel; the default returns the merged
        profile document as a dict.
        """
        params: dict[str, str] = {}
        if seconds is not None:
            params["seconds"] = f"{seconds:g}"
        if interval_ms is not None:
            params["interval"] = f"{interval_ms:g}"
        if mode != "wall":
            params["mode"] = mode
        if fmt != "json":
            params["format"] = fmt
        query = f"?{urllib.parse.urlencode(params)}" if params else ""
        return self._request(f"/profile{query}")

    def characterize(self, name: str, wait: bool = True) -> dict:
        """One workload's full characterization (or a job snapshot if
        ``wait=False`` and the result is not cached yet)."""
        suffix = "" if wait else "?wait=0"
        return self._request(f"/characterize/{urllib.parse.quote(name)}{suffix}")

    def matrix(self) -> dict:
        return self._request("/suite/matrix")

    def subset(
        self, k: int | None = None, budget: float | None = None
    ) -> dict:
        """The representative subset — the paper's ``k`` clusters, or the
        budget-aware selection when ``budget`` (seconds of simulation
        time) is given instead.

        Raises:
            ServiceError: With ``.status == 400`` when both are given,
                or either is malformed (the server validates).
        """
        if k is not None and budget is not None:
            raise _service_error(
                "pass either k or budget, not both", 400, {}
            )
        if budget is not None:
            return self._request(
                f"/subset?budget={urllib.parse.quote(str(budget))}"
            )
        return self._request("/subset" if k is None else f"/subset?k={k}")

    def observations(self) -> dict:
        return self._request("/observations")

    def jobs(self) -> list[dict]:
        return self._request("/jobs")

    def job(self, job_id: str) -> dict:
        return self._request(f"/jobs/{urllib.parse.quote(job_id)}")

    def cancel_job(self, job_id: str) -> dict:
        return self._request(f"/jobs/{urllib.parse.quote(job_id)}", method="DELETE")

    def dashboard(self) -> str:
        """The self-contained HTML dashboard for the characterized suite."""
        return self._request("/dashboard")

    # -- live job streaming ---------------------------------------------------

    def job_events(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[dict]:
        """Stream a job's lifecycle events from ``/jobs/<id>/events``.

        Yields one dict per server-sent event: ``{"id": int | None,
        "event": str, "data": dict}``.  The stream replays the job's
        history from the first event, then follows it live until the
        server signals ``end-of-stream`` (job finished) or
        ``stream-timeout`` — both sentinels are yielded too, so callers
        can tell a finished job from a cut stream.

        Raises:
            ServiceError: If the endpoint is missing (older server) or
                the connection fails — :meth:`wait_for_job` catches this
                and falls back to polling.
        """
        path = f"/jobs/{urllib.parse.quote(job_id)}/events"
        if timeout is not None:
            path += f"?timeout={timeout:g}"
        url = self.base_url + path
        request = urllib.request.Request(url, method="GET")
        if self.correlation_id:
            request.add_header(CORRELATION_HEADER, self.correlation_id)
        read_timeout = (timeout or self.timeout) + 5.0
        try:
            with urllib.request.urlopen(request, timeout=read_timeout) as response:
                content_type = response.headers.get("Content-Type", "")
                if not content_type.startswith("text/event-stream"):
                    raise ServiceError(
                        f"GET {path}: expected an event stream, "
                        f"got {content_type or 'no content type'}"
                    )
                yield from _parse_sse(response)
        except urllib.error.HTTPError as error:
            raise _service_error(
                f"GET {path} -> {error.code}: {error.reason}",
                error.code,
                {},
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(f"GET {path}: {error.reason}") from error

    def wait_for_job(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_interval: float = 0.05,
    ) -> dict:
        """Block until a job reaches a terminal state; return its snapshot.

        Prefers the live ``/jobs/<id>/events`` stream (one connection,
        no polling); when that endpoint is unavailable — an older
        server, a proxy that buffers SSE — falls back to polling
        ``/jobs/<id>`` with exponential backoff starting at
        ``poll_interval`` and capping at 2 s.

        Args:
            job_id: The job to wait for.
            timeout: Overall deadline in seconds; expiry raises
                :class:`ServiceError` even if the job is still running.
            poll_interval: Initial sleep between polls on the fallback
                path (doubles each round).

        Returns:
            The job's final snapshot dict (``state`` is one of
            ``done`` / ``failed`` / ``cancelled``).

        Raises:
            ServiceError: On deadline expiry or an unknown job.
        """
        deadline = time.monotonic() + timeout
        try:
            for event in self.job_events(job_id, timeout=timeout):
                if event["event"] in ("end-of-stream", "stream-timeout"):
                    break
        except ServiceError:
            self._poll_until_terminal(job_id, deadline, poll_interval)
        snapshot = self.job(job_id)
        if snapshot.get("state") not in TERMINAL_JOB_STATES:
            raise ServiceError(
                f"job {job_id} still {snapshot.get('state')!r} "
                f"after {timeout:g}s"
            )
        return snapshot

    #: Backoff ceiling for the polling fallback, seconds.
    _POLL_CAP_S = 2.0

    def _next_poll_interval(self, base: float, previous: float) -> float:
        """Decorrelated-jitter backoff (AWS style): each interval is
        uniform over ``[base, 3 * previous]``, capped.

        Unlike deterministic doubling, a stampede of clients that all
        started polling in the same millisecond (job submitted by one,
        awaited by hundreds) spreads out instead of hammering the
        service in synchronized waves.
        """
        upper = max(base, min(self._POLL_CAP_S, previous * 3.0))
        return self._jitter.uniform(base, upper)

    def _poll_until_terminal(
        self, job_id: str, deadline: float, poll_interval: float
    ) -> None:
        """Fallback: poll the job snapshot with jittered backoff."""
        base = max(poll_interval, 1e-3)
        interval = base
        while True:
            snapshot = self.job(job_id)
            if snapshot.get("state") in TERMINAL_JOB_STATES:
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return  # wait_for_job raises on the final snapshot check
            time.sleep(min(interval, remaining))
            interval = self._next_poll_interval(base, interval)


def _parse_sse(response) -> Iterator[dict]:
    """Decode server-sent events from a byte stream, one dict per event."""
    event_id: int | None = None
    event_type = "message"
    data_lines: list[str] = []
    for raw in response:
        line = raw.decode("utf-8").rstrip("\r\n")
        if not line:  # blank line = dispatch
            if data_lines or event_type != "message":
                data = "\n".join(data_lines)
                try:
                    decoded = json.loads(data) if data else {}
                except json.JSONDecodeError:
                    decoded = {"raw": data}
                yield {"id": event_id, "event": event_type, "data": decoded}
            event_id, event_type, data_lines = None, "message", []
            continue
        if line.startswith(":"):
            continue  # comment / keep-alive
        field, _, value = line.partition(":")
        value = value.removeprefix(" ")
        if field == "id":
            try:
                event_id = int(value)
            except ValueError:
                event_id = None
        elif field == "event":
            event_type = value
        elif field == "data":
            data_lines.append(value)
