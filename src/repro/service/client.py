"""A small stdlib client for the characterization service.

Wraps :mod:`urllib.request` with JSON decoding and transparent
conditional requests: the client remembers each path's ETag and payload,
sends ``If-None-Match`` on revisits, and resolves a 304 from its cache —
so polling the service costs headers, not bodies.

    >>> client = ServiceClient("http://127.0.0.1:8321")
    >>> client.matrix()["workloads"][:2]
    ['H-Sort', 'H-WordCount']
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request

from repro.errors import ServiceError

__all__ = ["ServiceClient"]


def _service_error(message: str, status: int, payload: dict) -> ServiceError:
    """A :class:`ServiceError` carrying the server's full error context.

    The HTTP status and the decoded JSON error payload (including extras
    like ``suggestions``) ride on the exception as ``.status`` and
    ``.payload`` so callers can react programmatically instead of
    parsing the message.
    """
    error = ServiceError(message)
    error.status = status
    error.payload = dict(payload)
    return error


class ServiceClient:
    """JSON client with an ETag cache, one instance per base URL."""

    def __init__(self, base_url: str, timeout: float = 600.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: path -> (etag, decoded payload); hit on 304 responses.
        self._cache: dict[str, tuple[str, object]] = {}

    # -- plumbing -------------------------------------------------------------

    def _request(self, path: str, method: str = "GET"):
        url = self.base_url + path
        request = urllib.request.Request(url, method=method)
        cached = self._cache.get(path) if method == "GET" else None
        if cached is not None:
            request.add_header("If-None-Match", f'"{cached[0]}"')
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
                etag = (response.headers.get("ETag") or "").strip('"')
                content_type = response.headers.get("Content-Type", "")
                if not content_type.startswith("application/json"):
                    return body.decode("utf-8")
                payload = json.loads(body) if body else None
                if method == "GET" and etag:
                    self._cache[path] = (etag, payload)
                return payload
        except urllib.error.HTTPError as error:
            if error.code == 304 and cached is not None:
                return cached[1]
            payload: dict = {}
            try:
                decoded = json.loads(error.read())
                if isinstance(decoded, dict):
                    payload = decoded
            except (json.JSONDecodeError, AttributeError, ValueError):
                pass
            detail = payload.get("error") or error.reason
            extras = ", ".join(
                f"{key}={value!r}"
                for key, value in sorted(payload.items())
                if key != "error"
            )
            message = f"{method} {path} -> {error.code}: {detail}"
            if extras:
                message += f" ({extras})"
            raise _service_error(message, error.code, payload) from error
        except urllib.error.URLError as error:
            raise ServiceError(f"{method} {path}: {error.reason}") from error

    # -- endpoints ------------------------------------------------------------

    def info(self) -> dict:
        return self._request("/")

    def workloads(self) -> list[dict]:
        return self._request("/workloads")

    def metrics(self) -> list[dict]:
        """The 45 Table II metric specs (the characterization catalog)."""
        return self._request("/metrics/catalog")

    def runtime_metrics(self) -> str:
        """The service's runtime metrics as Prometheus exposition text."""
        return self._request("/metrics")

    def stats(self) -> dict:
        """Runtime metrics + store/job state as JSON."""
        return self._request("/stats")

    def characterize(self, name: str, wait: bool = True) -> dict:
        """One workload's full characterization (or a job snapshot if
        ``wait=False`` and the result is not cached yet)."""
        suffix = "" if wait else "?wait=0"
        return self._request(f"/characterize/{urllib.parse.quote(name)}{suffix}")

    def matrix(self) -> dict:
        return self._request("/suite/matrix")

    def subset(self, k: int | None = None) -> dict:
        return self._request("/subset" if k is None else f"/subset?k={k}")

    def observations(self) -> dict:
        return self._request("/observations")

    def jobs(self) -> list[dict]:
        return self._request("/jobs")

    def job(self, job_id: str) -> dict:
        return self._request(f"/jobs/{urllib.parse.quote(job_id)}")

    def cancel_job(self, job_id: str) -> dict:
        return self._request(f"/jobs/{urllib.parse.quote(job_id)}", method="DELETE")
