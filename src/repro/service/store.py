"""Persistent, content-addressed characterization store.

Every expensive artifact the cluster layer produces — a full
:class:`~repro.cluster.testbed.WorkloadCharacterization` or a whole
suite's metric matrix — is persisted here as one JSON object under a
deterministic key, so later processes (the HTTP service, the benchmark
harness, a fresh CLI invocation) reuse it instead of re-running engines
and simulators.

Layout of a store rooted at ``<root>``::

    <root>/index.json           schema stamp + per-entry LRU metadata
    <root>/objects/<key>.json   one canonical-JSON object per entry

Guarantees:

- **Atomic writes** — objects and the index are written to a temp file
  in the same directory and ``os.replace``\\ d into place, so a reader
  (or a concurrent writer in another process) never observes a torn
  file.
- **Cross-process index integrity** — every read-modify-write of the
  index (``put``/``adopt``/LRU touch/``remove``/eviction) happens under
  an advisory file lock (``<root>/index.lock``), so two processes
  sharing one store directory never lose each other's updates.  Pure
  reads stay lock-free: they consume the last atomically-replaced
  index, revalidated by a single ``stat`` call per request.
- **Content addressing** — every object's canonical JSON bytes are
  hashed (sha256); the hash is stored in the index and doubles as the
  HTTP ETag.  A hash mismatch on read is treated as corruption and the
  entry is dropped rather than served.
- **Schema versioning** — objects carry a ``schema`` stamp; entries
  written by an incompatible revision are ignored, never mis-parsed.
- **LRU bounding** — the index tracks a logical clock per entry; when
  ``max_entries`` (or ``max_bytes``) is exceeded the least recently
  used entries are evicted.

The store deliberately knows nothing about *what* the payloads mean.
Key naming and (de)serialization of characterizations live with their
owners (:mod:`repro.cluster.collection` and the helpers below).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.cluster.testbed import WorkloadCharacterization
from repro.errors import StoreError
from repro.service.locking import FileLock
from repro.obs.flight import DEFAULT_CAPACITY
from repro.obs.metrics import REGISTRY
from repro.obs.timeline import TimelineSeries
from repro.stacks.base import ExecutionTrace, PhaseKind, PhaseRecord, StackInfo
from repro.workloads.base import WorkloadRun

__all__ = [
    "SCHEMA_VERSION",
    "COMPATIBLE_SCHEMAS",
    "ResultStore",
    "resolve_cache_dir",
    "characterization_to_payload",
    "characterization_from_payload",
]

#: Bump when the on-disk object layout changes incompatibly; stale
#: entries are silently treated as cache misses, never mis-parsed.
#: v3: phase records carry a recovery ``tag``; characterizations carry
#: ``attempts`` and a ``faults`` tally.
#: v4: characterizations carry flight-recorder ``events``.
#: v5: characterizations carry an optional ``timeline`` series and the
#: flight ring's ``events_capacity``.  Purely additive — every v4 entry
#: remains readable (see :data:`COMPATIBLE_SCHEMAS`), hydrating with no
#: timeline and the historical default capacity.
SCHEMA_VERSION = 5

#: Schema stamps this revision can still read.  New writes always carry
#: :data:`SCHEMA_VERSION`; v4 objects hydrate without re-running
#: workloads because v5 only *added* optional fields.
COMPATIBLE_SCHEMAS = frozenset({4, SCHEMA_VERSION})

_STORE_HITS = REGISTRY.counter(
    "repro_store_hits_total", "Result-store reads that found a valid entry"
)
_STORE_MISSES = REGISTRY.counter(
    "repro_store_misses_total",
    "Result-store reads that missed (absent, torn, or stale entry)",
)
_STORE_PUTS = REGISTRY.counter(
    "repro_store_puts_total", "Objects written to the result store"
)
_STORE_EVICTIONS = REGISTRY.counter(
    "repro_store_evictions_total", "Entries evicted by the store's LRU bound"
)
_STORE_ENTRIES = REGISTRY.gauge(
    "repro_store_entries", "Entries currently indexed by the result store"
)
_STORE_BYTES = REGISTRY.gauge(
    "repro_store_bytes", "Total object bytes currently indexed by the store"
)

#: Environment variable redirecting all artifact writes (store, legacy
#: collection cache, benchmark session cache) to one directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_KEY_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def resolve_cache_dir(explicit: str | Path | None = None) -> Path | None:
    """The artifact directory to use: explicit argument, else ``REPRO_CACHE_DIR``.

    Returns ``None`` when neither is set — callers then skip persistence
    entirely, preserving the historical default of no disk writes.
    """
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(CACHE_DIR_ENV)
    return Path(env) if env else None


def _canonical_dumps(payload: dict) -> bytes:
    """Deterministic JSON bytes — the unit of content addressing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _atomic_write(path: Path, data: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultStore:
    """A versioned, LRU-bounded, content-addressed result store.

    Safe for concurrent use by threads *and* processes sharing one
    directory: all index mutation is serialized through an advisory
    file lock (held only for the microseconds of one read-modify-write),
    and the index itself is consulted through a ``stat``-revalidated
    cache, so lock-free read paths cost one syscall rather than a JSON
    parse per request.
    """

    def __init__(
        self,
        root: str | Path,
        max_entries: int = 256,
        max_bytes: int | None = None,
    ) -> None:
        if max_entries < 1:
            raise StoreError("max_entries must be at least 1")
        self.root = Path(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._objects = self.root / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._index_path = self.root / "index.json"
        #: Serializes index read-modify-writes across processes.  Held
        #: around every mutation; never around object-payload I/O of
        #: already-indexed entries.
        self._index_lock = FileLock(self.root / "index.lock")
        #: Parsed-index cache: ``(stat_key, index)``.  The cached dict is
        #: read-only by convention — mutators always re-read from disk
        #: under the index lock.
        self._cached: tuple[tuple, dict] | None = None

    # -- index ----------------------------------------------------------------

    def _stat_key(self) -> tuple | None:
        """Identity of the current index file: ``(inode, size, mtime_ns)``.

        ``os.replace`` installs a fresh inode on every write, so any
        sibling-process update changes this key even within one mtime
        granule.
        """
        try:
            stat = os.stat(self._index_path)
        except OSError:
            return None
        return (stat.st_ino, stat.st_size, stat.st_mtime_ns)

    def _parse_index(self) -> dict:
        try:
            index = json.loads(self._index_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return {"schema": SCHEMA_VERSION, "clock": 0, "entries": {}}
        if index.get("schema") not in COMPATIBLE_SCHEMAS:
            # An incompatible revision wrote here: start fresh rather
            # than guess at old entries' meaning.
            return {"schema": SCHEMA_VERSION, "clock": 0, "entries": {}}
        # Compatible older stamp (e.g. v4): adopt the current version so
        # subsequent index writes are stamped with what we write.
        index["schema"] = SCHEMA_VERSION
        return index

    def _read_index(self) -> dict:
        """A fresh, mutable parse of the on-disk index.

        Callers that intend to write back MUST hold :attr:`_index_lock`
        across the read *and* the write — re-reading inside the lock is
        what makes concurrent processes merge instead of clobber.
        """
        index = self._parse_index()
        return index

    def _read_index_cached(self) -> dict:
        """The current index for read-only use (one ``stat`` when warm).

        The returned dict must not be mutated: it is shared across
        threads until a sibling (or this process) replaces the file.
        """
        key = self._stat_key()
        with self._lock:
            cached = self._cached
            if cached is not None and cached[0] == key:
                return cached[1]
        index = self._parse_index()
        with self._lock:
            self._cached = (key, index)
        return index

    def _write_index(self, index: dict) -> None:
        _atomic_write(self._index_path, json.dumps(index, sort_keys=True).encode())
        with self._lock:
            self._cached = (self._stat_key(), index)
        entries = index["entries"]
        _STORE_ENTRIES.set(len(entries))
        _STORE_BYTES.set(sum(e["bytes"] for e in entries.values()))

    def _object_path(self, key: str) -> Path:
        if not key or not set(key) <= _KEY_SAFE:
            raise StoreError(f"invalid store key {key!r}")
        return self._objects / f"{key}.json"

    # -- public API -----------------------------------------------------------

    def put(self, key: str, payload: dict) -> str:
        """Persist ``payload`` under ``key``; returns its content hash.

        The payload is stamped with the schema version, written
        atomically, indexed, and old entries are evicted LRU if the
        store exceeds its bounds.
        """
        stamped = dict(payload)
        stamped["schema"] = SCHEMA_VERSION
        data = _canonical_dumps(stamped)
        digest = _content_hash(data)
        _STORE_PUTS.inc()
        with self._index_lock:
            _atomic_write(self._object_path(key), data)
            index = self._read_index()
            index["clock"] += 1
            index["entries"][key] = {
                "hash": digest,
                "bytes": len(data),
                "last_used": index["clock"],
            }
            self._evict(index, keep=key)
            self._write_index(index)
        return digest

    def put_object(self, key: str, payload: dict) -> tuple[str, int]:
        """Write ``key``'s object file only — no index mutation.

        The worker-side half of a two-phase put: a pool worker persists
        its (possibly large) payload straight to disk and ships the
        parent just ``(key, digest, nbytes)``; the parent — the single
        index writer — then :meth:`adopt`\\ s the entry.  Keeping all
        index mutation in one process means concurrent workers never
        race last-writer-wins on ``index.json``.

        Returns:
            ``(digest, nbytes)`` of the canonical bytes written.
        """
        stamped = dict(payload)
        stamped["schema"] = SCHEMA_VERSION
        data = _canonical_dumps(stamped)
        digest = _content_hash(data)
        _STORE_PUTS.inc()
        _atomic_write(self._object_path(key), data)
        return digest, len(data)

    def adopt(self, key: str, digest: str, nbytes: int) -> None:
        """Index an object written elsewhere via :meth:`put_object`.

        Raises:
            StoreError: If the object file is absent or its content hash
                does not match ``digest`` (a torn or missing write must
                fail loudly here, not surface later as a silent miss).
        """
        with self._index_lock:
            try:
                data = self._object_path(key).read_bytes()
            except FileNotFoundError:
                raise StoreError(f"adopt: no object file for key {key!r}")
            if _content_hash(data) != digest:
                raise StoreError(f"adopt: content hash mismatch for key {key!r}")
            index = self._read_index()
            index["clock"] += 1
            index["entries"][key] = {
                "hash": digest,
                "bytes": nbytes,
                "last_used": index["clock"],
            }
            self._evict(index, keep=key)
            self._write_index(index)

    def get_raw(self, key: str, touch: bool = True) -> tuple[bytes, str] | None:
        """The stored bytes and content hash for ``key``, or ``None``.

        Verifies the content hash; a mismatch (torn or tampered object)
        drops the entry and reads as a miss.  A blob a sibling process
        evicted between our index read and the blob read is likewise a
        miss (its stale index entry is dropped), never an exception.
        ``touch=False`` skips the LRU bookkeeping write — used on
        request-serving hot paths, which then run entirely lock-free.
        """
        if touch:
            with self._index_lock:
                index = self._read_index()
                entry = index["entries"].get(key)
                if entry is None:
                    _STORE_MISSES.inc()
                    return None
                try:
                    data = self._object_path(key).read_bytes()
                except FileNotFoundError:
                    del index["entries"][key]
                    self._write_index(index)
                    _STORE_MISSES.inc()
                    return None
                if _content_hash(data) != entry["hash"]:
                    self._drop(index, key)
                    _STORE_MISSES.inc()
                    return None
                index["clock"] += 1
                entry["last_used"] = index["clock"]
                self._write_index(index)
            _STORE_HITS.inc()
            return data, entry["hash"]
        index = self._read_index_cached()
        entry = index["entries"].get(key)
        if entry is None:
            _STORE_MISSES.inc()
            return None
        try:
            data = self._object_path(key).read_bytes()
        except FileNotFoundError:
            # A sibling evicted the blob after writing the index we
            # read.  Drop the stale entry (under the lock, against a
            # fresh index — never resurrecting the sibling's state).
            self._drop_stale(key, entry["hash"])
            _STORE_MISSES.inc()
            return None
        if _content_hash(data) != entry["hash"]:
            self._drop_stale(key, entry["hash"])
            _STORE_MISSES.inc()
            return None
        _STORE_HITS.inc()
        return data, entry["hash"]

    def get(self, key: str, touch: bool = True) -> dict | None:
        """The decoded payload for ``key``, or ``None`` on any miss.

        Objects stamped with an incompatible schema version read as
        misses; compatible older stamps (v4) decode normally.
        """
        raw = self.get_raw(key, touch=touch)
        if raw is None:
            return None
        payload = json.loads(raw[0].decode("utf-8"))
        if payload.get("schema") not in COMPATIBLE_SCHEMAS:
            _STORE_MISSES.inc()
            return None
        return payload

    def etag(self, key: str) -> str | None:
        """The content hash of ``key``'s entry (the HTTP ETag), if present.

        Lock-free: one ``stat`` plus a dict lookup when the index is
        unchanged since the last read — cheap enough for per-request
        revalidation on serving hot paths.
        """
        entry = self._read_index_cached()["entries"].get(key)
        return entry["hash"] if entry else None

    def keys(self) -> tuple[str, ...]:
        return tuple(self._read_index_cached()["entries"])

    def remove(self, key: str) -> bool:
        """Delete ``key``'s entry; returns whether it existed."""
        with self._index_lock:
            index = self._read_index()
            if key not in index["entries"]:
                return False
            self._drop(index, key)
        return True

    def total_bytes(self) -> int:
        entries = self._read_index_cached()["entries"]
        return sum(e["bytes"] for e in entries.values())

    def __len__(self) -> int:
        return len(self.keys())

    # -- internals ------------------------------------------------------------

    def _drop(self, index: dict, key: str) -> None:
        """Remove ``key`` from a freshly-read index (lock held by caller)."""
        del index["entries"][key]
        self._write_index(index)
        try:
            self._object_path(key).unlink()
        except OSError:
            pass

    def _drop_stale(self, key: str, expected_hash: str) -> None:
        """Drop ``key``'s index entry if it still carries ``expected_hash``.

        Used by lock-free read paths that discovered a vanished or
        corrupt blob: the index is re-read *under the lock* so a
        concurrent sibling update (including a fresh re-put of the same
        key) is never clobbered or resurrected.
        """
        with self._index_lock:
            index = self._read_index()
            entry = index["entries"].get(key)
            if entry is None or entry["hash"] != expected_hash:
                return  # a sibling already dropped or replaced it
            self._drop(index, key)

    def _evict(self, index: dict, keep: str) -> None:
        """Evict least-recently-used entries until within bounds."""

        def over_budget() -> bool:
            entries = index["entries"]
            if len(entries) > self.max_entries:
                return True
            if self.max_bytes is not None:
                return sum(e["bytes"] for e in entries.values()) > self.max_bytes
            return False

        while over_budget():
            victims = [k for k in index["entries"] if k != keep]
            if not victims:
                return
            victim = min(victims, key=lambda k: index["entries"][k]["last_used"])
            del index["entries"][victim]
            _STORE_EVICTIONS.inc()
            try:
                self._object_path(victim).unlink()
            except OSError:
                pass


# -- characterization (de)serialization ---------------------------------------
#
# A stored characterization is *complete*: metrics, per-slave detail and
# the underlying run (trace records, stack facts, correctness checks),
# so cache hits hydrate objects indistinguishable from a fresh
# collection — the historical "details are not cached" gap is closed.


def characterization_to_payload(char: WorkloadCharacterization) -> dict:
    """A JSON-safe dict capturing the characterization in full."""
    trace = char.run.trace
    stack = trace.stack
    return {
        "kind": "characterization",
        "name": char.name,
        "attempts": char.attempts,
        "faults": char.faults,
        "events": [dict(event) for event in char.events],
        "events_capacity": char.events_capacity,
        "timeline": (
            char.timeline.to_payload() if char.timeline is not None else None
        ),
        "metrics": {k: float(v) for k, v in char.metrics.items()},
        "per_slave": [
            {k: float(v) for k, v in slave.items()} for slave in char.per_slave
        ],
        "run": {
            "output_records": char.run.output_records,
            "checks": {k: float(v) for k, v in char.run.checks.items()},
            "trace": {
                "workload": trace.workload,
                "stack": {
                    "name": stack.name,
                    "source_bytes": stack.source_bytes,
                    "hot_code_bytes": stack.hot_code_bytes,
                    "tasks_share_process": stack.tasks_share_process,
                    "jvm_uops_factor": stack.jvm_uops_factor,
                    "kernel_io_weight": stack.kernel_io_weight,
                },
                "records": [
                    {
                        "kind": record.kind.value,
                        "name": record.name,
                        "worker": record.worker,
                        "records_in": record.records_in,
                        "bytes_in": record.bytes_in,
                        "records_out": record.records_out,
                        "bytes_out": record.bytes_out,
                        "details": {
                            k: float(v) for k, v in record.details.items()
                        },
                        "tag": record.tag,
                    }
                    for record in trace.records
                ],
            },
        },
    }


def characterization_from_payload(payload: dict) -> WorkloadCharacterization:
    """Rebuild the full characterization written by
    :func:`characterization_to_payload`.

    Raises:
        StoreError: If the payload is not a characterization object.
    """
    if payload.get("kind") != "characterization":
        raise StoreError(
            f"expected a characterization payload, got kind={payload.get('kind')!r}"
        )
    run = payload["run"]
    traced = run["trace"]
    trace = ExecutionTrace(
        stack=StackInfo(**traced["stack"]), workload=traced["workload"]
    )
    for record in traced["records"]:
        trace.add(
            PhaseRecord(
                kind=PhaseKind(record["kind"]),
                name=record["name"],
                worker=record["worker"],
                records_in=record["records_in"],
                bytes_in=record["bytes_in"],
                records_out=record["records_out"],
                bytes_out=record["bytes_out"],
                details=dict(record["details"]),
                tag=record.get("tag", ""),
            )
        )
    metrics = {k: float(v) for k, v in payload["metrics"].items()}
    per_slave = tuple(
        {k: float(v) for k, v in slave.items()} for slave in payload["per_slave"]
    )
    if not all(np.isfinite(list(metrics.values()))):
        raise StoreError(f"{payload['name']}: non-finite metrics in stored payload")
    return WorkloadCharacterization(
        name=payload["name"],
        metrics=metrics,
        per_slave=per_slave,
        run=WorkloadRun(
            trace=trace,
            output_records=run["output_records"],
            checks=dict(run["checks"]),
        ),
        attempts=int(payload.get("attempts", 1)),
        faults=payload.get("faults"),
        events=tuple(dict(event) for event in payload.get("events", ())),
        # v4 entries predate both fields: hydrate with the historical
        # default capacity and no timeline (never a re-run).
        events_capacity=int(payload.get("events_capacity", DEFAULT_CAPACITY)),
        timeline=(
            TimelineSeries.from_payload(payload["timeline"])
            if payload.get("timeline") is not None
            else None
        ),
    )
