"""Thread-based collection jobs with single-flight deduplication.

The job manager is the only component that *computes* on behalf of the
HTTP service: every endpoint that may need a collection submits a job
and waits (or polls).  Concurrent identical requests — same
:meth:`CollectionConfig.cache_key` and workload-set digest — share one
job, which runs one collection fanned over the existing ``workers``
process pool and lands one set of store entries; every waiter then
serves the same bytes.  This is what keeps a stampede of cold
``/characterize`` requests from launching N engine runs.

Job lifecycle::

    queued ──▶ running ──▶ done
       │          │  └────▶ failed
       └──────────┴───────▶ cancelled

Cancellation is cooperative: the collection checks the job's cancel
event between workloads, so an in-flight workload finishes but no new
one starts.

Cross-process behaviour (the pre-fork service plane): job ids embed a
per-manager instance token so ids never collide across workers; every
lifecycle event persists the job's snapshot to ``<store root>/jobs/``
(atomic writes), so any sibling worker can serve ``/jobs/<id>`` and
replay ``/jobs/<id>/events`` for a job it does not own; and before a
job *collects* it must win the key's cross-process claim
(:mod:`repro.service.claims`) — losers wait for the winner and hydrate
its stored result, so two workers never run the same characterization.
"""

from __future__ import annotations

import enum
import json
import os
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.collection import (
    CollectionConfig,
    characterize_suite,
    collection_runs,
    suite_store_key,
)
from repro.errors import CollectionCancelled, ServiceError
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Tracer, span as obs_span, tracing
from repro.service.claims import ClaimRegistry
from repro.service.store import ResultStore, _atomic_write
from repro.workloads.base import Workload
from repro.workloads.suite import workload_by_name

__all__ = ["JobState", "Job", "JobManager"]

_log = get_logger("repro.service.jobs")

_JOBS_SUBMITTED = REGISTRY.counter(
    "repro_jobs_submitted_total", "Collection jobs created by the manager"
)
_JOBS_DEDUPED = REGISTRY.counter(
    "repro_jobs_deduplicated_total",
    "Submissions that attached to a live identical job (single-flight)",
)
_JOBS_COMPLETED = REGISTRY.counter(
    "repro_jobs_completed_total",
    "Jobs reaching a terminal state, by final state",
    ("state",),
)
# Each worker owns its live jobs outright, so the fleet-wide value is
# the sum of the per-process values (see repro.obs.fleet).
_JOBS_LIVE = REGISTRY.gauge(
    "repro_jobs_live", "Jobs currently queued or running", aggregation="sum"
)
_JOB_SECONDS = REGISTRY.histogram(
    "repro_job_duration_seconds",
    "Wall time from job creation to its terminal state",
)


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

#: States from which a job can still make progress (single-flight window).
_LIVE = (JobState.QUEUED, JobState.RUNNING)


def _fault_tally(characterizations) -> dict | None:
    """Aggregate the per-workload fault/recovery stats of one collection.

    Returns ``None`` when no workload ran under a fault plan (the
    fault-free service configuration), so the job snapshot stays clean.
    """
    tallies = [c.faults for c in characterizations if c.faults is not None]
    if not tallies:
        return None
    injected: dict[str, int] = {}
    for tally in tallies:
        for kind, count in tally.get("injected", {}).items():
            injected[kind] = injected.get(kind, 0) + count
    return {
        "injected": injected,
        "total_injected": sum(injected.values()),
        "task_retries": sum(t.get("task_retries", 0) for t in tallies),
        "speculative_tasks": sum(t.get("speculative_tasks", 0) for t in tallies),
        "rescheduled_tasks": sum(t.get("rescheduled_tasks", 0) for t in tallies),
        "lost_nodes": sorted(
            {node for t in tallies for node in t.get("lost_nodes", ())}
        ),
        "backoff_s": float(sum(t.get("backoff_s", 0.0) for t in tallies)),
        "workload_attempts": int(
            sum(c.attempts for c in characterizations)
        ),
    }


@dataclass
class Job:
    """One collection request and its observable state.

    All mutation happens under the manager's lock; readers get
    consistent snapshots through :meth:`snapshot`.
    """

    id: str
    key: str
    workloads: tuple[str, ...]
    state: JobState = JobState.QUEUED
    done_workloads: int = 0
    total_workloads: int = 0
    #: Collection attempts this job has made (1 on a clean first pass;
    #: climbs when the manager retries a failed collection with backoff).
    attempts: int = 0
    #: Aggregate fault/recovery tally across the collected workloads when
    #: the collection ran under a fault plan, else ``None``.
    faults: dict | None = None
    error: str | None = None
    etag: str | None = None
    created_s: float = field(default_factory=time.time)
    finished_s: float | None = None
    #: Lifecycle flight log: state transitions and retries, in order,
    #: each ``{"t_s": <unix time>, "event": ..., **detail}``.
    events: list = field(default_factory=list)
    #: Client correlation ids attached to this job (the submitter's plus
    #: any that joined through single-flight deduplication) — propagated
    #: into the job's trace span for client→server→job correlation.
    correlations: list = field(default_factory=list)
    _done: threading.Event = field(default_factory=threading.Event, repr=False)
    _cancel: threading.Event = field(default_factory=threading.Event, repr=False)
    #: Set by the manager: persists the snapshot for sibling workers
    #: (and polls their cancel markers) after every lifecycle event.
    _on_note: object = field(default=None, repr=False)

    def note(self, event: str, **detail) -> None:
        """Append one lifecycle event (caller holds the manager lock or
        is the single worker thread driving this job)."""
        self.events.append({"t_s": round(time.time(), 3), "event": event, **detail})
        if self._on_note is not None:
            self._on_note(self)

    def snapshot(self) -> dict:
        """A JSON-safe view of the job (what ``/jobs/<id>`` serves)."""
        return {
            "id": self.id,
            "key": self.key,
            "workloads": list(self.workloads),
            "state": self.state.value,
            "progress": {
                "done": self.done_workloads,
                "total": self.total_workloads,
            },
            "attempts": self.attempts,
            "faults": self.faults,
            "error": self.error,
            "etag": self.etag,
            "created_s": self.created_s,
            "finished_s": self.finished_s,
            "correlations": list(self.correlations),
            "events": [dict(event) for event in self.events],
        }

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)


class JobManager:
    """Runs collections on worker threads, deduplicating identical requests.

    Args:
        store: The persistent result store jobs write into.
        config: Collection parameters every job uses (the service's
            measurement protocol).
        workers: Process fan-out *within* one collection (passed through
            to :func:`characterize_suite`).
        max_concurrent_jobs: Distinct jobs allowed to collect at once;
            further jobs queue.
        max_attempts: Collection attempts per job before it is declared
            failed (retries back off exponentially between attempts).
        retry_backoff_s: Backoff before the first retry; doubles per
            further attempt.  Cancellation interrupts the wait.
        tracer: Optional service tracer; each job's run is recorded as a
            ``job:<id>`` span carrying the attached correlation ids.
            Explicitly activated on the worker thread — ContextVars do
            not cross thread boundaries on their own.
        instance: Short token embedded in every job id so ids from
            sibling worker processes never collide (default: pid plus
            random suffix).
        claims: Cross-process single-flight registry; ``None`` builds
            one rooted at the store (pass ``claims=False``-like behavior
            by sharing a registry explicitly in tests).
        claim_ttl_s: TTL of collection claims (crashed claimants are
            taken over after this long without a refresh).
    """

    def __init__(
        self,
        store: ResultStore,
        config: CollectionConfig | None = None,
        workers: int = 1,
        max_concurrent_jobs: int = 2,
        max_attempts: int = 3,
        retry_backoff_s: float = 0.05,
        tracer: Tracer | None = None,
        instance: str | None = None,
        claims: ClaimRegistry | None = None,
        claim_ttl_s: float = 900.0,
    ) -> None:
        if max_attempts < 1:
            raise ServiceError("max_attempts must be at least 1")
        self.store = store
        self.config = config or CollectionConfig()
        self.workers = workers
        self.max_attempts = max_attempts
        self.retry_backoff_s = retry_backoff_s
        self.tracer = tracer
        self.instance = instance or f"{os.getpid():x}-{uuid.uuid4().hex[:4]}"
        self.claims = claims or ClaimRegistry(store.root, ttl_s=claim_ttl_s)
        #: Shared snapshot directory: any sibling worker sharing the
        #: store can serve (and follow) this manager's jobs from here.
        self.shared_dir = Path(store.root) / "jobs"
        self.shared_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, Job] = {}
        self._counter = 0
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrent_jobs, thread_name_prefix="repro-job"
        )

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        workload_names: tuple[str, ...],
        correlation_id: str | None = None,
    ) -> Job:
        """Request a collection of ``workload_names`` (single-flight).

        If a live job for the same key exists, it is returned instead of
        creating a second one — the caller shares its result (a
        ``correlation_id`` still attaches, so the joining client's id is
        visible on the shared job and its span).

        Raises:
            ServiceError: If ``workload_names`` is empty or contains an
                unknown label.
        """
        if not workload_names:
            raise ServiceError("a job needs at least one workload")
        try:
            workloads: tuple[Workload, ...] = tuple(
                workload_by_name(name) for name in workload_names
            )
        except Exception as exc:
            raise ServiceError(str(exc)) from exc
        key = suite_store_key(self.config, workloads)
        with self._lock:
            live = self._by_key.get(key)
            if live is not None and live.state in _LIVE:
                _JOBS_DEDUPED.inc()
                if correlation_id and correlation_id not in live.correlations:
                    live.correlations.append(correlation_id)
                    live.note("correlation-attached", correlation=correlation_id)
                _log.debug(
                    "submission joined live job",
                    extra={"job": live.id, "key": key},
                )
                return live
            self._counter += 1
            job = Job(
                id=f"job-{self.instance}-{self._counter:06d}",
                key=key,
                workloads=tuple(w.name for w in workloads),
                total_workloads=len(workloads),
            )
            job._on_note = self._persist_snapshot
            if correlation_id:
                job.correlations.append(correlation_id)
                job.note("queued", correlation=correlation_id)
            else:
                job.note("queued")
            self._jobs[job.id] = job
            self._by_key[key] = job
        _JOBS_SUBMITTED.inc()
        _JOBS_LIVE.inc()
        _log.info(
            "job submitted",
            extra={"job": job.id, "workloads": len(workloads), "key": key},
        )
        self._executor.submit(self._run, job, workloads)
        return job

    def collect(
        self,
        workload_names: tuple[str, ...],
        timeout: float | None = None,
        correlation_id: str | None = None,
    ) -> Job:
        """Submit and block until the job is terminal.

        Raises:
            ServiceError: If the job does not finish within ``timeout``.
        """
        job = self.submit(workload_names, correlation_id=correlation_id)
        if not job.wait(timeout):
            raise ServiceError(f"{job.id}: timed out after {timeout}s")
        return job

    # -- queries --------------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> tuple[Job, ...]:
        with self._lock:
            return tuple(self._jobs.values())

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; returns whether the job was still live."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state not in _LIVE:
                return False
            job._cancel.set()
        return True

    # -- shared snapshots (cross-worker job visibility) ------------------------

    def _snapshot_path(self, job_id: str) -> Path:
        return self.shared_dir / f"{job_id}.json"

    def _cancel_marker(self, job_id: str) -> Path:
        return self.shared_dir / f"{job_id}.cancel"

    def _persist_snapshot(self, job: Job) -> None:
        """Write the job's snapshot for sibling workers (atomic), and
        honor any cancel marker a sibling left for it."""
        try:
            _atomic_write(
                self._snapshot_path(job.id),
                json.dumps(job.snapshot(), sort_keys=True).encode("utf-8"),
            )
        except OSError:  # pragma: no cover - snapshot loss is non-fatal
            _log.warning("failed to persist job snapshot", extra={"job": job.id})
        if job.state in _LIVE and self._cancel_marker(job.id).exists():
            job._cancel.set()

    def load_shared(self, job_id: str) -> dict | None:
        """A job snapshot persisted by this or a *sibling* worker.

        Local jobs answer from memory (authoritative); everything else
        reads the shared snapshot directory.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is not None:
            return job.snapshot()
        try:
            return json.loads(self._snapshot_path(job_id).read_text())
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None

    def shared_jobs(self) -> list[dict]:
        """Every snapshot in the shared directory (all workers' jobs),
        with this manager's in-memory state overriding its own files."""
        snapshots: dict[str, dict] = {}
        try:
            paths = sorted(self.shared_dir.glob("job-*.json"))
        except OSError:  # pragma: no cover - defensive
            paths = []
        for path in paths:
            try:
                snapshot = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                continue  # torn write or vanished file: skip, not fail
            if isinstance(snapshot, dict) and "id" in snapshot:
                snapshots[snapshot["id"]] = snapshot
        with self._lock:
            for job in self._jobs.values():
                snapshots[job.id] = job.snapshot()
        ordered = sorted(
            snapshots.values(), key=lambda s: (s.get("created_s", 0.0), s["id"])
        )
        return ordered

    def request_shared_cancel(self, job_id: str) -> bool:
        """Ask the (possibly sibling) owner of ``job_id`` to cancel.

        Local live jobs cancel immediately; for a sibling's job a cancel
        marker is left next to its snapshot — the owner polls it on its
        next lifecycle event (i.e. between workloads, matching the
        cooperative-cancel contract).  Returns whether the job was still
        live when asked.
        """
        if self.cancel(job_id):
            return True
        snapshot = self.load_shared(job_id)
        if snapshot is None or snapshot.get("state") not in (
            JobState.QUEUED.value,
            JobState.RUNNING.value,
        ):
            return False
        try:
            self._cancel_marker(job_id).touch()
        except OSError:  # pragma: no cover - defensive
            return False
        return True

    def shutdown(self) -> None:
        """Cancel live jobs and stop the worker threads."""
        with self._lock:
            for job in self._jobs.values():
                if job.state in _LIVE:
                    job._cancel.set()
        self._executor.shutdown(wait=True, cancel_futures=True)

    # -- worker ---------------------------------------------------------------

    def _run(self, job: Job, workloads: tuple[Workload, ...]) -> None:
        # ContextVars do not propagate into executor threads: the
        # service tracer must be explicitly activated here so the job's
        # span (and everything the collection records) lands in it.
        try:
            with tracing(self.tracer), obs_span(
                f"job:{job.id}", "job",
                workloads=len(workloads),
                correlations=list(job.correlations),
            ):
                self._run_traced(job, workloads)
        finally:
            # Release waiters only once the job span above has closed:
            # a blocked characterize response must never beat the job's
            # own trace event into the flight recorder.
            job._done.set()

    def _claim_or_wait(self, job: Job):
        """Win ``job.key``'s cross-process claim, or wait the winner out.

        Returns ``(claim, proceed)``: ``claim`` is held (and must be
        released) when we won; ``proceed`` is ``False`` only when the
        job was cancelled while waiting.  When a sibling finishes the
        key meanwhile, we return ``(None, True)`` — the collection call
        then hydrates the sibling's stored result instead of running.
        """
        waited = False
        while True:
            claim = self.claims.acquire(job.key)
            if claim is not None:
                return claim, True
            if job._cancel.is_set():
                return None, False
            if not waited:
                holder = self.claims.holder(job.key) or {}
                job.note(
                    "awaiting-sibling",
                    holder_pid=holder.get("pid"),
                    holder_host=holder.get("host"),
                )
                _log.info(
                    "waiting on sibling's claim",
                    extra={"job": job.id, "key": job.key,
                           "holder_pid": holder.get("pid")},
                )
                waited = True
            self.claims.wait(job.key, timeout=1.0, cancel=job._cancel)
            if job._cancel.is_set():
                return None, False
            if self.store.etag(job.key) is not None:
                # The sibling landed the result: no claim needed, the
                # collection below is a pure store hydration.
                return None, True

    def _run_traced(self, job: Job, workloads: tuple[Workload, ...]) -> None:
        with self._lock:
            if job._cancel.is_set():
                self._finish(job, JobState.CANCELLED)
                return
            job.state = JobState.RUNNING
            job.note("running")

        claim, proceed = self._claim_or_wait(job)
        if not proceed:
            with self._lock:
                self._finish(job, JobState.CANCELLED)
            return

        def progress(done: int, total: int) -> None:
            job.done_workloads = done
            job.total_workloads = total
            job.note("progress", done=done, total=total)
            if claim is not None:
                # Long collections push the claim's TTL window forward so
                # siblings don't mistake slow progress for a crash.
                self.claims.refresh(claim)

        def on_workload(characterization) -> None:
            detail: dict = {"workload": characterization.name}
            if characterization.timeline is not None:
                timeline = characterization.timeline
                detail["timeline"] = {
                    "samples": len(timeline),
                    "duration_ms": timeline.duration_ms,
                    "ramp_up_ms": round(timeline.ramp_up_ms, 3),
                    "rates": timeline.steady_state_rates(),
                }
            job.note("workload-done", **detail)

        try:
            while True:
                job.attempts += 1
                runs_before = collection_runs()
                try:
                    result = characterize_suite(
                        workloads,
                        self.config,
                        cache_dir=self.store.root,
                        workers=self.workers,
                        progress=progress,
                        cancel=job._cancel,
                        on_workload=on_workload,
                        # First correlation wins the pool-worker spans:
                        # it joins client -> job -> pool lanes end-to-end
                        # in the merged fleet trace.
                        correlation_id=(
                            job.correlations[0] if job.correlations else None
                        ),
                    )
                except CollectionCancelled:
                    with self._lock:
                        self._finish(job, JobState.CANCELLED)
                    return
                except Exception as exc:  # a failed job must never kill its thread
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.note("attempt-failed", attempt=job.attempts, error=job.error)
                    if job.attempts >= self.max_attempts:
                        _log.error(
                            "job failed",
                            extra={"job": job.id, "attempts": job.attempts,
                                   "error": job.error},
                        )
                        with self._lock:
                            self._finish(job, JobState.FAILED)
                        return
                    # Exponential backoff, interruptible by cancellation.
                    backoff = self.retry_backoff_s * 2 ** (job.attempts - 1)
                    _log.warning(
                        "job attempt failed, retrying",
                        extra={"job": job.id, "attempt": job.attempts,
                               "backoff_s": backoff, "error": job.error},
                    )
                    job.note("retrying", attempt=job.attempts, backoff_s=backoff)
                    if job._cancel.wait(backoff):
                        with self._lock:
                            self._finish(job, JobState.CANCELLED)
                        return
                else:
                    if collection_runs() > runs_before:
                        # This process actually ran engines (not a memo or
                        # store hydration): journal it so duplicate
                        # characterizations across the fleet are visible.
                        self.claims.record_run(job.key)
                    with self._lock:
                        job.done_workloads = job.total_workloads
                        if not any(e["event"] == "progress" for e in job.events):
                            # Memo/store hit: the collection skipped the
                            # per-workload callbacks, but every job stream
                            # still delivers submit → progress → done.
                            job.note(
                                "progress",
                                done=job.total_workloads,
                                total=job.total_workloads,
                            )
                        job.error = None
                        job.etag = self.store.etag(job.key)
                        job.faults = _fault_tally(result.characterizations)
                        self._finish(job, JobState.DONE)
                    return
        finally:
            if claim is not None:
                self.claims.release(claim)

    def _finish(self, job: Job, state: JobState) -> None:
        """Terminal transition (caller holds the lock)."""
        job.state = state
        job.finished_s = time.time()
        job.note(state.value)
        _JOBS_COMPLETED.inc(state=state.value)
        _JOBS_LIVE.dec()
        _JOB_SECONDS.observe(job.finished_s - job.created_s)
        _log.info(
            "job finished",
            extra={"job": job.id, "state": state.value,
                   "duration_s": round(job.finished_s - job.created_s, 3)},
        )
        if self._by_key.get(job.key) is job:
            # Drop the single-flight registration: the next identical
            # request hits the memo/store fast path (or retries a
            # failure) instead of attaching to a dead job.
            del self._by_key[job.key]
        # NB: job._done is deliberately NOT set here — _run() signals it
        # after the job's tracer span exits, so waiters observe the span.
