"""Pre-fork multi-worker supervisor for the characterization service.

``repro serve --workers N`` runs N independent server *processes*
behind one listening socket: the parent binds and listens, then forks;
each child wraps the inherited socket in its own
:class:`~http.server.ThreadingHTTPServer` and accepts from it directly.
The kernel load-balances ``accept(2)`` across the children, so the plane
scales horizontally without a userspace proxy.  Where the platform
offers ``SO_REUSEPORT`` the parent sets it too — harmless for the
inherited-socket scheme, and it lets an operator attach extra external
workers to the same address later.

The workers share *nothing in memory*.  All coordination happens
through the on-disk :class:`~repro.service.store.ResultStore` (flock-
serialized index), the :class:`~repro.service.claims.ClaimRegistry`
(cross-process single-flight for collections), and the shared job
snapshots the :class:`~repro.service.jobs.JobManager` persists — which
is exactly what makes a crashed worker harmless: the supervisor reaps
it, breaks nothing, and forks a replacement that picks the same state
back up from disk.

Lifecycle::

    sup = Supervisor(config, host="127.0.0.1", port=0, workers=4)
    host, port = sup.start()        # bind + listen + fork N workers
    sup.run_forever()               # reap/restart loop until SIGTERM
    # or, embedded (tests):
    sup.shutdown()                  # SIGTERM children, reap, close

The supervisor process itself never instantiates the service: forking a
process that already owns thread pools or open stores is how fork-
safety bugs are made.  Children build everything fresh after the fork.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from http.server import ThreadingHTTPServer

from repro.errors import ServiceError
from repro.obs.fleet import ShardWriter
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.prof import ProfileAgent, arm as arm_profiling
from repro.service.server import CharacterizationService, ServiceConfig, _Handler
from repro.service.store import resolve_cache_dir

__all__ = ["Supervisor", "worker_main"]

_log = get_logger("repro.service.supervisor")

_WORKER_RESTARTS = REGISTRY.counter(
    "repro_worker_restarts_total",
    "Service worker processes restarted after an unexpected exit",
)

#: Listen backlog for the shared socket: deep enough that a closed-loop
#: bench with hundreds of clients never sees connection resets.
_BACKLOG = 512

#: Reap cadence.  WNOHANG polling (not ``waitpid(-1)``) so an embedded
#: supervisor — e.g. under pytest — never reaps unrelated children.
_REAP_INTERVAL_S = 0.05


def _bind_listen_socket(host: str, port: int) -> socket.socket:
    """Bind the shared listening socket the workers will inherit."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if hasattr(socket, "SO_REUSEPORT"):
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            except OSError:  # pragma: no cover - kernel without support
                pass
        sock.bind((host, port))
        sock.listen(_BACKLOG)
    except BaseException:
        sock.close()
        raise
    return sock


def worker_main(
    sock: socket.socket,
    config: ServiceConfig | None = None,
    verbose: bool = False,
) -> None:
    """Run one service worker over an inherited listening socket.

    Builds the full service stack *after* the fork (store, job manager,
    thread pool — nothing crosses the fork), then accepts from ``sock``
    until SIGTERM/SIGINT.  Never returns: exits the process.
    """
    # The fork copied the supervisor's registry values (its restart
    # counter, anything imports bumped); this worker's shard must report
    # only what *it* did, or the fleet merge would multiply-count.
    REGISTRY.reset_values()
    service = CharacterizationService(config)
    server = ThreadingHTTPServer(
        sock.getsockname()[:2], _Handler, bind_and_activate=False
    )
    # Swap the server's own (unbound) socket for the inherited one.
    server.socket.close()
    server.socket = sock
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]

    def _stop(signum: int, _frame) -> None:
        # serve_forever() runs on this (main) thread; shutdown() must
        # come from another or the handler deadlocks on itself.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    _log.info(
        "worker accepting",
        extra={"pid": os.getpid(), "instance": service.jobs.instance},
    )
    code = 0
    try:
        server.serve_forever(poll_interval=0.1)
    except Exception:  # pragma: no cover - defensive
        code = 1
    finally:
        try:
            service.close()
            server.server_close()
            # os._exit below skips atexit, so the collection pool's
            # own cleanup hook never fires — reap its worker processes
            # explicitly or they outlive the fleet.
            from repro.cluster.pool import shutdown_pools

            shutdown_pools()
        finally:
            # _exit, not sys.exit: never unwind into the parent's stack
            # (CLI, pytest) from a forked child.
            os._exit(code)


class Supervisor:
    """Parent of a pre-fork worker fleet sharing one listen socket.

    Args:
        config: Service configuration every worker runs with.
        host: Bind address.
        port: TCP port (0 picks a free one; read it back from
            :meth:`start`'s return value).
        workers: Number of server processes to keep alive.
        verbose: Per-request logging in the workers.
        max_restarts: Unexpected-exit restarts tolerated before the
            supervisor gives up (guards against crash loops).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        verbose: bool = False,
        max_restarts: int = 16,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            raise ServiceError(
                "pre-fork serving needs os.fork(); use --workers 1 here"
            )
        self.config = config
        self.workers = workers
        self.verbose = verbose
        self.max_restarts = max_restarts
        self.restarts = 0
        self._requested = (host, port)
        self._sock: socket.socket | None = None
        self._pids: set[int] = set()
        self._stopping = threading.Event()
        self._shards: ShardWriter | None = None
        self._profile_agent: ProfileAgent | None = None
        self.host = host
        self.port = port

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind the shared socket and fork the worker fleet."""
        host, port = self._requested
        self._sock = _bind_listen_socket(host, port)
        self.host, self.port = self._sock.getsockname()[:2]
        for _ in range(self.workers):
            self._spawn()
        # The supervisor has no HTTP endpoint of its own; its shard in
        # the shared store is the only way its counters (worker
        # restarts) reach a /metrics scrape.  Created *after* the forks
        # above so no child inherits it.  Without a shared store there
        # is nowhere fleet-visible to publish — skip.
        store_root = resolve_cache_dir(
            self.config.cache_dir if self.config is not None else None
        )
        if store_root is not None:
            self._shards = ShardWriter(
                store_root, instance=f"sup-{os.getpid():x}", role="supervisor"
            ).start()
            # Answer fleet profile windows too: the supervisor is part
            # of the fleet the flamegraph should account for.  Arm the
            # sampling signals while this is still the main thread.
            arm_profiling()
            self._profile_agent = ProfileAgent(
                store_root,
                instance=f"sup-{os.getpid():x}",
                role="supervisor",
            ).start()
        _log.info(
            "supervisor started",
            extra={"port": self.port, "workers": self.workers,
                   "pids": sorted(self._pids)},
        )
        return self.host, self.port

    def _spawn(self) -> int:
        assert self._sock is not None
        pid = os.fork()
        if pid == 0:
            # Child: drop the parent's bookkeeping and serve.
            self._pids = set()
            try:
                worker_main(self._sock, self.config, self.verbose)
            finally:  # pragma: no cover - worker_main never returns
                os._exit(1)
        self._pids.add(pid)
        return pid

    def _reap(self) -> list[tuple[int, int]]:
        """Collect exited workers without blocking; returns (pid, status)."""
        exited = []
        for pid in list(self._pids):
            try:
                done, status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:  # pragma: no cover - reaped elsewhere
                done, status = pid, 0
            if done == pid:
                self._pids.discard(pid)
                exited.append((pid, status))
        return exited

    def tick(self) -> None:
        """One supervision step: reap dead workers, fork replacements."""
        for pid, status in self._reap():
            if self._stopping.is_set():
                continue
            self.restarts += 1
            _WORKER_RESTARTS.inc()
            if self._shards is not None:
                # Publish immediately: the very next /metrics scrape
                # (any worker) must already show this restart.
                self._shards.write_now()
            _log.warning(
                "worker died; restarting",
                extra={"pid": pid, "status": status,
                       "restarts": self.restarts},
            )
            if self.restarts > self.max_restarts:
                raise ServiceError(
                    f"service workers crash-looping "
                    f"({self.restarts} restarts); giving up"
                )
            self._spawn()

    def run_forever(self) -> None:
        """Supervise until :meth:`shutdown` (or SIGTERM via the CLI)."""
        while not self._stopping.is_set():
            self.tick()
            self._stopping.wait(_REAP_INTERVAL_S)
        self._finish()

    def request_stop(self) -> None:
        """Signal-handler-safe: begin shutdown without blocking."""
        self._stopping.set()
        for pid in list(self._pids):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop the fleet: SIGTERM, grace period, SIGKILL stragglers."""
        self.request_stop()
        self._finish(timeout)

    def _finish(self, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + timeout
        while self._pids and time.monotonic() < deadline:
            self._reap()
            if self._pids:
                time.sleep(_REAP_INTERVAL_S)
        for pid in list(self._pids):  # pragma: no cover - hung worker
            _log.warning("killing unresponsive worker", extra={"pid": pid})
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass
            self._pids.discard(pid)
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        if self._profile_agent is not None:
            self._profile_agent.close()
            self._profile_agent = None
        if self._shards is not None:
            self._shards.close()
            self._shards = None

    def __enter__(self) -> "Supervisor":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
