"""Cross-process single-flight via on-disk claim records.

The in-process :class:`~repro.service.jobs.JobManager` already
deduplicates identical collection requests; claim records extend that
guarantee across *processes* sharing one store directory (the pre-fork
service workers).  Before running a collection, a worker must hold the
key's claim:

``<store root>/claims/<key>.claim``
    One JSON record — owner token, pid, host, claim time, TTL — created
    with ``O_CREAT | O_EXCL`` so exactly one process wins.  Losers wait
    for the claim to clear and then hydrate the winner's result from
    the store instead of re-running engines.

``<store root>/claims/runs.log``
    Append-only journal of *actual* (non-hydrated) collection runs, one
    JSON line per run.  A key appearing twice is a duplicate
    characterization — the thing this module exists to prevent — and
    increments ``repro_duplicate_collections_total``.  The service
    benchmark asserts the log stays duplicate-free under many-client,
    many-worker load.

Staleness: a claim whose TTL has expired, or whose owning pid is dead
on this host, is *broken* (removed under the registry's file lock) so a
crashed claimant never wedges the fleet.  Live claimants running long
collections call :meth:`ClaimRegistry.refresh` from their progress
callback to push the TTL window forward.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.service.locking import FileLock

__all__ = ["Claim", "ClaimRegistry"]

_log = get_logger("repro.service.claims")

_CLAIMS_ACQUIRED = REGISTRY.counter(
    "repro_claims_acquired_total",
    "Cross-process collection claims successfully acquired",
)
_CLAIMS_WAITED = REGISTRY.counter(
    "repro_claims_waited_total",
    "Claim acquisitions that found a live sibling claim and waited",
)
_CLAIMS_BROKEN = REGISTRY.counter(
    "repro_claims_broken_total",
    "Stale claims (expired TTL or dead owner) broken by a taker-over",
)
_RUNS_RECORDED = REGISTRY.counter(
    "repro_collections_run_total",
    "Actual (non-hydrated) collections recorded in the shared run log",
)
_DUPLICATE_RUNS = REGISTRY.counter(
    "repro_duplicate_collections_total",
    "Collections that ran for a key the shared run log had already seen",
)


@dataclass(frozen=True)
class Claim:
    """A held claim: proof this process may run ``key``'s collection."""

    key: str
    token: str
    path: Path
    acquired_s: float


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness of a pid on this host."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, other user
        return True
    except OSError:  # pragma: no cover - defensive
        return True
    return True


class ClaimRegistry:
    """Claim records + run log under one shared store root.

    Args:
        root: The store directory the claims guard (claims live in a
            ``claims/`` subdirectory of it).
        ttl_s: Seconds a claim stays valid without a refresh; a claim
            older than this is presumed crashed and may be broken.
    """

    def __init__(self, root: str | Path, ttl_s: float = 900.0) -> None:
        self.root = Path(root)
        self.ttl_s = float(ttl_s)
        self._dir = self.root / "claims"
        self._dir.mkdir(parents=True, exist_ok=True)
        self._lock = FileLock(self._dir / "claims.lock")
        self._runs_log = self._dir / "runs.log"
        self._host = socket.gethostname()
        self._thread_lock = threading.Lock()

    def _path(self, key: str) -> Path:
        return self._dir / f"{key}.claim"

    def _load(self, path: Path) -> dict | None:
        try:
            record = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        return record if isinstance(record, dict) else None

    def _is_stale(self, record: dict) -> bool:
        ttl = float(record.get("ttl_s", self.ttl_s))
        age = time.time() - float(record.get("claimed_s", 0.0))
        if age > ttl:
            return True
        pid = record.get("pid")
        if (
            record.get("host") == self._host
            and isinstance(pid, int)
            and not _pid_alive(pid)
        ):
            return True
        return False

    # -- claiming -------------------------------------------------------------

    def acquire(self, key: str) -> Claim | None:
        """Try to claim ``key``; ``None`` means a live sibling holds it.

        A stale claim (expired or dead owner) is broken and the acquire
        retried, so one crashed worker costs one TTL at most — not a
        permanently wedged key.
        """
        token = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        path = self._path(key)
        for _attempt in range(8):
            now = time.time()
            record = {
                "key": key,
                "token": token,
                "pid": os.getpid(),
                "host": self._host,
                "claimed_s": now,
                "ttl_s": self.ttl_s,
            }
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                holder = self._load(path)
                if holder is not None and not self._is_stale(holder):
                    return None
                with self._lock:
                    # Re-check under the lock: only one process breaks it.
                    holder = self._load(path)
                    if holder is None:
                        continue  # released meanwhile; retry the O_EXCL
                    if not self._is_stale(holder):
                        return None
                    path.unlink(missing_ok=True)
                    _CLAIMS_BROKEN.inc()
                    _log.warning(
                        "broke stale claim",
                        extra={"key": key, "stale_pid": holder.get("pid")},
                    )
                continue
            try:
                os.write(fd, json.dumps(record, sort_keys=True).encode())
            finally:
                os.close(fd)
            _CLAIMS_ACQUIRED.inc()
            return Claim(key=key, token=token, path=path, acquired_s=now)
        return None  # pragma: no cover - pathological churn

    def refresh(self, claim: Claim) -> None:
        """Push the claim's TTL window forward (long collections call
        this from their progress feed)."""
        with self._lock:
            record = self._load(claim.path)
            if record is None or record.get("token") != claim.token:
                return  # broken by a sibling; nothing left to refresh
            record["claimed_s"] = time.time()
            tmp = claim.path.with_suffix(".claim.tmp")
            tmp.write_text(json.dumps(record, sort_keys=True))
            os.replace(tmp, claim.path)

    def release(self, claim: Claim) -> None:
        """Drop the claim if we still own it (token-verified)."""
        with self._lock:
            record = self._load(claim.path)
            if record is not None and record.get("token") == claim.token:
                claim.path.unlink(missing_ok=True)

    def holder(self, key: str) -> dict | None:
        """The live claim record for ``key``, or ``None``."""
        record = self._load(self._path(key))
        if record is None or self._is_stale(record):
            return None
        return record

    def wait(
        self,
        key: str,
        timeout: float,
        poll_s: float = 0.05,
        cancel: threading.Event | None = None,
    ) -> bool:
        """Block until ``key`` has no live claim (returns ``True``) or
        ``timeout``/``cancel`` interrupts the wait (``False``).

        A claim that goes stale while we wait is broken here — the
        waiter is exactly the process that should take over a crashed
        claimant's work.
        """
        _CLAIMS_WAITED.inc()
        deadline = time.monotonic() + timeout
        while True:
            record = self._load(self._path(key))
            if record is None:
                return True
            if self._is_stale(record):
                with self._lock:
                    again = self._load(self._path(key))
                    if again is not None and self._is_stale(again):
                        self._path(key).unlink(missing_ok=True)
                        _CLAIMS_BROKEN.inc()
                return True
            if cancel is not None and cancel.is_set():
                return False
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            if cancel is not None:
                cancel.wait(min(poll_s, remaining))
            else:
                time.sleep(min(poll_s, remaining))

    # -- run accounting -------------------------------------------------------

    def record_run(self, key: str) -> bool:
        """Journal one actual collection run; returns ``False`` (and
        bumps the duplicate counter) if ``key`` had already run."""
        with self._thread_lock, self._lock:
            duplicate = any(run["key"] == key for run in self.runs())
            line = json.dumps(
                {
                    "key": key,
                    "pid": os.getpid(),
                    "host": self._host,
                    "t_s": round(time.time(), 3),
                },
                sort_keys=True,
            )
            with open(self._runs_log, "a+", encoding="utf-8") as handle:
                # A writer that crashed mid-line leaves a torn tail with
                # no newline; appending straight after it would fuse the
                # two records into one unparseable line.  Terminate the
                # orphan first so this record survives on its own line.
                handle.seek(0, os.SEEK_END)
                if handle.tell() > 0:
                    handle.seek(handle.tell() - 1)
                    if handle.read(1) != "\n":
                        handle.write("\n")
                handle.write(line + "\n")
        _RUNS_RECORDED.inc()
        if duplicate:
            _DUPLICATE_RUNS.inc()
            _log.warning("duplicate collection run", extra={"key": key})
        return not duplicate

    def runs(self) -> list[dict]:
        """Every journaled run, in append order."""
        try:
            text = self._runs_log.read_text()
        except FileNotFoundError:
            return []
        runs = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of a crashed writer
            if isinstance(record, dict) and "key" in record:
                runs.append(record)
        return runs

    def duplicate_runs(self) -> dict[str, int]:
        """Keys that ran more than once, mapped to their run counts."""
        counts: dict[str, int] = {}
        for run in self.runs():
            counts[run["key"]] = counts.get(run["key"], 0) + 1
        return {key: count for key, count in counts.items() if count > 1}
