"""repro — reproduction of "Characterizing and Subsetting Big Data Workloads".

A full-stack reproduction of Jia et al., IISWC 2014: the 32-workload
BigDataBench subset really executes on miniature Hadoop / Spark / Hive /
Shark engines, a simulated Westmere cluster collects the paper's 45
microarchitectural metrics through a perf-like PMU layer, and the paper's
statistical pipeline (PCA with Kaiser's criterion, single-linkage
hierarchical clustering, K-means with BIC model selection, representative
selection) reproduces every figure and table of the evaluation.

Quick start::

    from repro import run_experiment, FAST_CONFIG
    experiment = run_experiment(FAST_CONFIG)
    print(experiment.render())
"""

from repro.analysis import FAST_CONFIG, Experiment, ExperimentConfig, run_experiment
from repro.cluster import (
    CollectionConfig,
    Cluster,
    MeasurementConfig,
    characterize_suite,
)
from repro.core import (
    SelectionPolicy,
    SubsettingResult,
    WorkloadMetricMatrix,
    subset_workloads,
)
from repro.errors import ReproError
from repro.service.client import ServiceClient
from repro.service.store import ResultStore
from repro.workloads import SUITE, RunContext, Workload, workload_by_name

__version__ = "1.1.0"

__all__ = [
    "FAST_CONFIG",
    "Experiment",
    "ExperimentConfig",
    "run_experiment",
    "CollectionConfig",
    "Cluster",
    "MeasurementConfig",
    "characterize_suite",
    "SelectionPolicy",
    "SubsettingResult",
    "WorkloadMetricMatrix",
    "subset_workloads",
    "ReproError",
    "ResultStore",
    "ServiceClient",
    "SUITE",
    "RunContext",
    "Workload",
    "workload_by_name",
    "__version__",
]
