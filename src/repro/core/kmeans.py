"""K-means clustering (Section III-E), implemented from scratch.

Lloyd's algorithm with k-means++ seeding and multiple restarts, fully
deterministic given the seed.  Used by the subsetting pipeline to group
the 32 workloads in PC space; the best ``K`` is chosen by the BIC
(:mod:`repro.core.bic`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError

__all__ = ["KMeansResult", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """A fitted K-means clustering.

    Attributes:
        labels: Cluster index per point.
        centers: ``(k, d)`` centroid matrix.
        inertia: Sum of squared distances to assigned centroids.
        iterations: Lloyd iterations of the winning restart.
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        return self.centers.shape[0]

    def cluster_members(self) -> list[np.ndarray]:
        """Point indices per cluster (ascending cluster index)."""
        return [np.flatnonzero(self.labels == i) for i in range(self.k)]


def _kmeanspp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared distance."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]), dtype=float)
    first = int(rng.integers(0, n))
    centers[0] = points[first]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    for j in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # Every point coincides with an already-chosen center; the
            # squared-distance distribution is degenerate.  Seed the
            # remaining slots with *distinct* points (repeating a single
            # point here guaranteed duplicate centroids and permanently
            # empty clusters downstream).
            remaining = k - j
            indices = rng.choice(n, size=remaining, replace=remaining > n)
            centers[j:] = points[indices]
            break
        probs = closest_sq / total
        choice = int(rng.choice(n, p=probs))
        centers[j] = points[choice]
        dist_sq = np.sum((points - centers[j]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centers


def _lloyd(
    points: np.ndarray,
    centers: np.ndarray,
    max_iter: int,
) -> tuple[np.ndarray, np.ndarray, float, int]:
    """Lloyd iterations until assignment fixpoint or ``max_iter``.

    A cluster that loses all its members is reseeded to the point
    farthest from its assigned centroid (rather than keeping its stale
    centroid, which could never win points back and surfaced downstream
    as empty-cluster failures), and iteration continues.
    """
    k = centers.shape[0]
    labels = np.full(points.shape[0], -1)
    for iteration in range(1, max_iter + 1):
        distances = np.sum(
            (points[:, None, :] - centers[None, :, :]) ** 2, axis=2
        )
        new_labels = np.argmin(distances, axis=1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        empty = [j for j in range(k) if not np.any(labels == j)]
        for j in range(k):
            members = points[labels == j]
            if len(members):
                centers[j] = members.mean(axis=0)
        if empty:
            residual = np.sum((points - centers[labels]) ** 2, axis=1)
            for j in empty:
                farthest = int(np.argmax(residual))
                centers[j] = points[farthest]
                residual[farthest] = -1.0
    # Recompute the assignment against the *final* centers: on a
    # max_iter exit the last center update happened after the labels
    # were drawn, so labels/centers/inertia must be reconciled here to
    # stay mutually consistent.
    distances = np.sum((points[:, None, :] - centers[None, :, :]) ** 2, axis=2)
    labels = np.argmin(distances, axis=1)
    inertia = float(
        np.take_along_axis(distances, labels[:, None], axis=1).sum()
    )
    return labels, centers, inertia, iteration


def kmeans(
    points: np.ndarray,
    k: int,
    seed: int = 0,
    n_init: int = 10,
    max_iter: int = 200,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` groups (best of ``n_init`` restarts).

    Raises:
        AnalysisError: If ``k`` is not in ``[1, n_points]`` or inputs are
            malformed.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise AnalysisError(f"expected a 2-D matrix, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise AnalysisError(f"k={k} outside [1, {n}]")
    if n_init <= 0 or max_iter <= 0:
        raise AnalysisError("n_init and max_iter must be positive")

    rng = np.random.default_rng(seed)
    best: KMeansResult | None = None
    for _restart in range(n_init):
        centers = _kmeanspp_init(points, k, rng)
        labels, centers, inertia, iterations = _lloyd(points, centers.copy(), max_iter)
        if best is None or inertia < best.inertia:
            best = KMeansResult(
                labels=labels, centers=centers, inertia=inertia, iterations=iterations
            )
    assert best is not None
    return best
