"""The paper's contribution: PCA + clustering characterization/subsetting."""

from repro.core.bic import BicSelection, bic_score, choose_k
from repro.core.dataset import WorkloadMetricMatrix
from repro.core.dendrogram import Dendrogram
from repro.core.kiviat import KiviatDiagram, kiviat_diagrams
from repro.core.kmeans import KMeansResult, kmeans
from repro.core.linkage import Linkage, Merge, hierarchical_clustering, pairwise_distances
from repro.core.pca import PcaResult, fit_pca
from repro.core.preprocess import ZScore, zscore
from repro.core.representatives import (
    ClusterRepresentative,
    SelectionPolicy,
    select_representatives,
)
from repro.core.subsetting import SubsettingResult, subset_workloads

__all__ = [
    "BicSelection",
    "bic_score",
    "choose_k",
    "WorkloadMetricMatrix",
    "Dendrogram",
    "KiviatDiagram",
    "kiviat_diagrams",
    "KMeansResult",
    "kmeans",
    "Linkage",
    "Merge",
    "hierarchical_clustering",
    "pairwise_distances",
    "PcaResult",
    "fit_pca",
    "ZScore",
    "zscore",
    "ClusterRepresentative",
    "SelectionPolicy",
    "select_representatives",
    "SubsettingResult",
    "subset_workloads",
]
