"""The workload × metric matrix the statistical pipeline operates on.

The paper's data set ``D`` is a 32×45 matrix: one row per workload, one
column per Table II metric.  :class:`WorkloadMetricMatrix` carries the
matrix together with its row labels (workload names) and column labels
(metric names, always in catalog order) and knows how to serialise
itself, so expensive characterizations can be cached and shared between
the test suite and the benchmark harness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import AnalysisError
from repro.metrics.catalog import METRIC_NAMES

__all__ = ["WorkloadMetricMatrix"]


@dataclass(frozen=True)
class WorkloadMetricMatrix:
    """Rows = workloads, columns = the 45 Table II metrics.

    Attributes:
        workloads: Row labels (e.g. ``("H-Sort", "S-Sort", ...)``).
        values: ``(n_workloads, 45)`` float matrix in catalog column order.
    """

    workloads: tuple[str, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 2:
            raise AnalysisError(f"expected a 2-D matrix, got shape {values.shape}")
        if values.shape[0] != len(self.workloads):
            raise AnalysisError(
                f"{len(self.workloads)} workload labels but {values.shape[0]} rows"
            )
        if values.shape[1] != len(METRIC_NAMES):
            raise AnalysisError(
                f"expected {len(METRIC_NAMES)} metric columns, got {values.shape[1]}"
            )
        if not np.all(np.isfinite(values)):
            raise AnalysisError("metric matrix contains non-finite values")
        object.__setattr__(self, "values", values)

    @property
    def metric_names(self) -> tuple[str, ...]:
        return METRIC_NAMES

    @classmethod
    def from_rows(cls, rows: dict[str, dict[str, float]]) -> "WorkloadMetricMatrix":
        """Build from ``{workload: {metric: value}}`` mappings."""
        workloads = tuple(rows)
        values = np.array(
            [[rows[w][m] for m in METRIC_NAMES] for w in workloads], dtype=float
        )
        return cls(workloads=workloads, values=values)

    def row(self, workload: str) -> dict[str, float]:
        """One workload's metrics as a mapping.

        Raises:
            AnalysisError: If the workload is not in the matrix.
        """
        if workload not in self.workloads:
            raise AnalysisError(f"unknown workload {workload!r}")
        index = self.workloads.index(workload)
        return {name: float(self.values[index, i]) for i, name in enumerate(METRIC_NAMES)}

    def column(self, metric: str) -> np.ndarray:
        """One metric across all workloads.

        Raises:
            AnalysisError: If the metric is not a catalog metric.
        """
        if metric not in METRIC_NAMES:
            raise AnalysisError(f"unknown metric {metric!r}")
        return self.values[:, METRIC_NAMES.index(metric)].copy()

    def select(self, workloads: tuple[str, ...]) -> "WorkloadMetricMatrix":
        """Submatrix with the given workload rows (in the given order)."""
        indices = [self.workloads.index(w) for w in workloads]
        return WorkloadMetricMatrix(
            workloads=tuple(workloads), values=self.values[indices]
        )

    # -- persistence ----------------------------------------------------------

    def to_csv(self) -> str:
        """The matrix as CSV text (header row + one row per workload)."""
        header = "workload," + ",".join(METRIC_NAMES)
        lines = [header]
        for i, workload in enumerate(self.workloads):
            values = ",".join(f"{v:.6g}" for v in self.values[i])
            lines.append(f"{workload},{values}")
        return "\n".join(lines) + "\n"

    def save(self, path: str | Path) -> None:
        """Write the matrix as JSON."""
        payload = {
            "workloads": list(self.workloads),
            "metrics": list(METRIC_NAMES),
            "values": self.values.tolist(),
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "WorkloadMetricMatrix":
        """Read a matrix written by :meth:`save`.

        Raises:
            AnalysisError: If the stored metric columns don't match the
                current catalog (stale cache).
        """
        payload = json.loads(Path(path).read_text())
        if tuple(payload["metrics"]) != METRIC_NAMES:
            raise AnalysisError(f"{path}: stale cache (metric catalog changed)")
        return cls(
            workloads=tuple(payload["workloads"]),
            values=np.array(payload["values"], dtype=float),
        )
