"""Representative-workload selection (Section VI-B).

"The representative for each cluster can be chosen by two approaches, as
mentioned by Eeckhout et al.: the first is to choose the workload that is
as close as possible to the center of the cluster it belongs to.  The
other is to select an extreme workload situated at the boundary of each
cluster."  The paper evaluates both and prefers the second, because its
subset is more diverse (larger maximal linkage distance) and keeps the
singleton-like outliers (S-PageRank, S-Kmeans, S-Grep, H-Kmeans).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.kmeans import KMeansResult
from repro.errors import AnalysisError

__all__ = ["SelectionPolicy", "ClusterRepresentative", "select_representatives"]


class SelectionPolicy(enum.Enum):
    """The two Table V selection approaches."""

    NEAREST_TO_CENTER = "nearest-to-cluster-center"
    FARTHEST_FROM_CENTER = "farthest-from-cluster-center"


@dataclass(frozen=True)
class ClusterRepresentative:
    """One cluster's chosen representative.

    Attributes:
        workload: The chosen workload label.
        cluster_index: K-means cluster index.
        cluster_size: Number of workloads it represents (Table V shows
            these in parentheses).
        members: All workload labels in the cluster.
        distance_to_center: Euclidean distance of the chosen workload to
            its centroid.
    """

    workload: str
    cluster_index: int
    cluster_size: int
    members: tuple[str, ...]
    distance_to_center: float


def select_representatives(
    points: np.ndarray,
    labels: tuple[str, ...],
    clustering: KMeansResult,
    policy: SelectionPolicy,
) -> tuple[ClusterRepresentative, ...]:
    """Pick one representative per cluster under ``policy``.

    Clusters are returned largest-first (the Table V presentation order);
    ties break deterministically by label.

    Raises:
        AnalysisError: On shape/label mismatches or an empty cluster.
    """
    points = np.asarray(points, dtype=float)
    if points.shape[0] != len(labels):
        raise AnalysisError("points/labels size mismatch")
    if clustering.labels.shape[0] != len(labels):
        raise AnalysisError("clustering does not match the labelled points")

    representatives: list[ClusterRepresentative] = []
    for cluster_index in range(clustering.k):
        member_indices = np.flatnonzero(clustering.labels == cluster_index)
        if len(member_indices) == 0:
            raise AnalysisError(f"cluster {cluster_index} is empty")
        center = clustering.centers[cluster_index]
        distances = np.sqrt(
            np.sum((points[member_indices] - center) ** 2, axis=1)
        )
        # Both policies tie-break on the workload name in the SAME
        # direction (lexically smallest), so equidistant members resolve
        # identically across runs and platforms.  Taking the last entry
        # of one ascending sort would invert the tie direction for the
        # farthest policy.
        sign = 1.0 if policy is SelectionPolicy.NEAREST_TO_CENTER else -1.0
        pick = min(
            range(len(member_indices)),
            key=lambda i: (sign * distances[i], labels[member_indices[i]]),
        )
        chosen = member_indices[pick]
        representatives.append(
            ClusterRepresentative(
                workload=labels[chosen],
                cluster_index=cluster_index,
                cluster_size=len(member_indices),
                members=tuple(sorted(labels[i] for i in member_indices)),
                distance_to_center=float(distances[pick]),
            )
        )
    representatives.sort(key=lambda rep: (-rep.cluster_size, rep.workload))
    return tuple(representatives)
