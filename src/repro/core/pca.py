"""Principal Component Analysis with Kaiser's criterion (Section III-C).

Implemented from first principles: eigendecomposition of the correlation
matrix of the z-scored metric matrix.  "We use Kaiser's Criterion to
choose the number of principal components: only the top few PCs, which
have eigenvalues greater than or equal to one, are kept."

The paper reports eight retained PCs covering 91.12 % of the variance;
our reproduction's retained-PC count and coverage are asserted against
the same Kaiser rule in the test suite and reported in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.preprocess import ZScore, zscore
from repro.errors import AnalysisError

__all__ = ["PcaResult", "fit_pca"]


@dataclass(frozen=True)
class PcaResult:
    """A fitted PCA.

    Attributes:
        eigenvalues: All eigenvalues, descending.
        components: ``(n_features, n_features)`` matrix; column ``j`` is
            the j-th unit-length principal direction.
        scores: ``(n_samples, n_kept)`` projections of the *fitting* data
            onto the retained PCs.
        n_kept: Number of PCs retained by Kaiser's criterion.
        transform: The z-score transform fitted on the input data.
    """

    eigenvalues: np.ndarray
    components: np.ndarray
    scores: np.ndarray
    n_kept: int
    transform: ZScore

    @property
    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total variance carried by each PC (descending)."""
        total = self.eigenvalues.sum()
        if total <= 0:
            return np.zeros_like(self.eigenvalues)
        return self.eigenvalues / total

    @property
    def retained_variance(self) -> float:
        """Variance fraction covered by the retained PCs (paper: 91.12 %)."""
        return float(self.explained_variance_ratio[: self.n_kept].sum())

    def loadings(self, n_components: int | None = None) -> np.ndarray:
        """Factor loadings: component vectors scaled by sqrt(eigenvalue).

        The paper's Figure 4 plots these weights: ``PC1 = -0.18*ILP +
        0.23*L2_MISS + ...``.  Returns an ``(n_features, k)`` matrix.

        Raises:
            AnalysisError: If more components are requested than exist.
        """
        k = n_components or self.n_kept
        if k > self.components.shape[1]:
            raise AnalysisError(
                f"requested {k} components, only {self.components.shape[1]} exist"
            )
        scale = np.sqrt(np.maximum(self.eigenvalues[:k], 0.0))
        return self.components[:, :k] * scale

    def project(self, matrix: np.ndarray, n_components: int | None = None) -> np.ndarray:
        """Project new rows (in original metric units) onto the PCs."""
        k = n_components or self.n_kept
        normalized = self.transform.transform(np.asarray(matrix, dtype=float))
        return normalized @ self.components[:, :k]


def fit_pca(matrix: np.ndarray, kaiser_threshold: float = 1.0) -> PcaResult:
    """Fit a PCA on ``matrix`` (rows = workloads, columns = metrics).

    The data is z-scored first, so the decomposed matrix is the
    correlation matrix and Kaiser's eigenvalue-1 threshold has its usual
    meaning (a PC must carry at least one original metric's worth of
    variance).

    Args:
        matrix: ``(n_samples, n_features)`` raw metric matrix.
        kaiser_threshold: Eigenvalue cut-off (1.0 in the paper).

    Raises:
        AnalysisError: On malformed input.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise AnalysisError(f"expected a 2-D matrix, got shape {matrix.shape}")
    n_samples, n_features = matrix.shape
    if n_samples < 3:
        raise AnalysisError("PCA needs at least three samples")

    normalized, transform = zscore(matrix)
    covariance = (normalized.T @ normalized) / n_samples
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = np.maximum(eigenvalues[order], 0.0)
    eigenvectors = eigenvectors[:, order]

    # Deterministic sign convention: the largest-magnitude weight of each
    # component is positive.
    for j in range(eigenvectors.shape[1]):
        pivot = np.argmax(np.abs(eigenvectors[:, j]))
        if eigenvectors[pivot, j] < 0:
            eigenvectors[:, j] = -eigenvectors[:, j]

    n_kept = int(np.sum(eigenvalues >= kaiser_threshold))
    n_kept = max(1, min(n_kept, n_features))
    scores = normalized @ eigenvectors[:, :n_kept]
    return PcaResult(
        eigenvalues=eigenvalues,
        components=eigenvectors,
        scores=scores,
        n_kept=n_kept,
        transform=transform,
    )
