"""Bayesian Information Criterion for choosing K (Section VI-A).

Implements the exact formulation the paper takes from Pelleg & Moore's
X-means (Equations 1-3):

.. math::

    BIC(D, K) = l(D|K) - \\frac{p_j}{2} \\log R

with :math:`p_j = K + dK` free parameters, the log-likelihood

.. math::

    l(D|K) = \\sum_{i=1}^{K} \\Big( -\\frac{R_i}{2}\\log(2\\pi)
        - \\frac{R_i d}{2}\\log(\\sigma^2)
        - \\frac{R_i - K}{2} + R_i \\log R_i - R_i \\log R \\Big)

and the pooled variance estimate

.. math::

    \\sigma^2 = \\frac{1}{R-K} \\sum_i (x_i - \\mu_{(i)})^2 .

"The larger the BIC scores, the higher the probability that the
clustering is a good fit to the data"; the subsetting pipeline runs
K-means for a range of K and keeps the K with the highest BIC (the paper
lands on K = 7 for its 32×8 matrix).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.kmeans import KMeansResult, kmeans
from repro.errors import AnalysisError

__all__ = ["bic_score", "BicSelection", "choose_k"]

_MIN_VARIANCE = 1e-12


def bic_score(points: np.ndarray, result: KMeansResult) -> float:
    """BIC of a fitted K-means clustering over ``points`` (Eqs. 1-3).

    Raises:
        AnalysisError: If the clustering leaves no degrees of freedom
            (``R <= K``) or shapes mismatch.
    """
    points = np.asarray(points, dtype=float)
    n, d = points.shape
    k = result.k
    if result.labels.shape[0] != n:
        raise AnalysisError("labels/points size mismatch")
    if n <= k:
        raise AnalysisError(f"BIC undefined for R={n} <= K={k}")

    # Eq. 3: pooled within-cluster variance.
    residual_sq = float(
        np.sum((points - result.centers[result.labels]) ** 2)
    )
    sigma_sq = max(residual_sq / (n - k), _MIN_VARIANCE)

    # Eq. 2: log-likelihood, summed over clusters.
    log_likelihood = 0.0
    for i in range(k):
        r_i = int(np.sum(result.labels == i))
        if r_i == 0:
            continue
        log_likelihood += (
            -0.5 * r_i * math.log(2.0 * math.pi)
            - 0.5 * r_i * d * math.log(sigma_sq)
            - 0.5 * (r_i - k)
            + r_i * math.log(r_i)
            - r_i * math.log(n)
        )

    # Eq. 1: penalised score with p_j = K + d*K free parameters.
    free_parameters = k + d * k
    return log_likelihood - 0.5 * free_parameters * math.log(n)


@dataclass(frozen=True)
class BicSelection:
    """Result of a BIC sweep over candidate K values.

    Attributes:
        best_k: The K with the highest BIC.
        scores: ``{k: bic}`` for every candidate.
        clusterings: ``{k: KMeansResult}`` for every candidate.
    """

    best_k: int
    scores: dict[int, float]
    clusterings: dict[int, KMeansResult]

    @property
    def best(self) -> KMeansResult:
        return self.clusterings[self.best_k]


def choose_k(
    points: np.ndarray,
    k_min: int = 2,
    k_max: int | None = None,
    seed: int = 0,
    n_init: int = 10,
) -> BicSelection:
    """Run K-means for each K in ``[k_min, k_max]`` and pick by BIC.

    Args:
        points: ``(n, d)`` data (the paper's 32×8 PC-score matrix).
        k_min: Smallest K tried.
        k_max: Largest K tried (default ``n - 1``, the largest for which
            the BIC is defined).
        seed: Seed shared by all K-means runs.
        n_init: Restarts per K.

    Raises:
        AnalysisError: On an empty or invalid candidate range.
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    k_max = k_max if k_max is not None else n - 1
    if not 1 <= k_min <= k_max <= n - 1:
        raise AnalysisError(f"invalid K range [{k_min}, {k_max}] for {n} points")

    scores: dict[int, float] = {}
    clusterings: dict[int, KMeansResult] = {}
    for k in range(k_min, k_max + 1):
        result = kmeans(points, k, seed=seed, n_init=n_init)
        clusterings[k] = result
        scores[k] = bic_score(points, result)
    best_k = max(scores, key=lambda k: (scores[k], -k))
    return BicSelection(best_k=best_k, scores=scores, clusterings=clusterings)
