"""The end-to-end subsetting pipeline (the paper's primary contribution).

Ties the statistical machinery together exactly as Sections III, V and VI
describe:

1. z-score the 32×45 metric matrix;
2. PCA, keeping the Kaiser PCs (the paper keeps 8, covering 91.12 %);
3. single-linkage hierarchical clustering on the PC scores (Figure 1);
4. K-means over a range of K, choosing K by the BIC (Table IV; K = 7);
5. one representative per cluster under both selection policies
   (Table V), with the farthest-from-centroid subset recommended.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bic import BicSelection, choose_k
from repro.core.dataset import WorkloadMetricMatrix
from repro.core.dendrogram import Dendrogram
from repro.core.kiviat import KiviatDiagram, kiviat_diagrams
from repro.core.kmeans import KMeansResult
from repro.core.linkage import Linkage, hierarchical_clustering
from repro.core.pca import PcaResult, fit_pca
from repro.core.representatives import (
    ClusterRepresentative,
    SelectionPolicy,
    select_representatives,
)

__all__ = ["SubsettingResult", "subset_workloads"]


@dataclass(frozen=True)
class SubsettingResult:
    """Everything the paper's analysis produces for one suite.

    Attributes:
        matrix: The input workload × metric matrix.
        pca: Fitted PCA (Kaiser PCs retained).
        dendrogram: Single-linkage dendrogram over the PC scores (Fig. 1).
        bic: The BIC sweep and its chosen K (Table IV).
        nearest: Representatives by nearest-to-centroid (Table V, row 1).
        farthest: Representatives by farthest-from-centroid (Table V,
            row 2 — the recommended subset).
        kiviat: Figure 6 diagrams of the recommended subset.
    """

    matrix: WorkloadMetricMatrix
    pca: PcaResult
    dendrogram: Dendrogram
    bic: BicSelection
    nearest: tuple[ClusterRepresentative, ...]
    farthest: tuple[ClusterRepresentative, ...]
    kiviat: tuple[KiviatDiagram, ...]

    @property
    def clustering(self) -> KMeansResult:
        """The K-means clustering at the BIC-chosen K."""
        return self.bic.best

    @property
    def representative_subset(self) -> tuple[str, ...]:
        """The recommended benchmark subset (farthest-from-centroid)."""
        return tuple(rep.workload for rep in self.farthest)

    def max_linkage_distance(self, policy: SelectionPolicy) -> float:
        """Table V's diversity measure for either selection policy."""
        reps = (
            self.nearest
            if policy is SelectionPolicy.NEAREST_TO_CENTER
            else self.farthest
        )
        return self.dendrogram.max_cophenetic_distance(
            tuple(rep.workload for rep in reps)
        )


def subset_workloads(
    matrix: WorkloadMetricMatrix,
    seed: int = 0,
    k_min: int = 5,
    k_max: int | None = None,
    linkage: Linkage = Linkage.SINGLE,
) -> SubsettingResult:
    """Run the full characterization-and-subsetting pipeline.

    Args:
        matrix: Workload × metric matrix (e.g. the 32×45 suite data).
        seed: Seed for the K-means restarts.
        k_min: Smallest candidate K for the BIC sweep (default 5: a
            benchmark subset of a 32-workload suite needs at least a
            handful of representatives to be useful, and the Pelleg-Moore
            BIC is noisy at the extremes of the K range).
        k_max: Largest candidate K (default: min(12, n-1); the paper's
            plausible range for a 32-workload suite).
        linkage: Hierarchical-clustering linkage (the paper uses single).
    """
    pca = fit_pca(matrix.values)
    scores = pca.scores

    merges = hierarchical_clustering(scores, linkage=linkage)
    dendrogram = Dendrogram(labels=matrix.workloads, merges=tuple(merges))

    n = scores.shape[0]
    k_max = k_max if k_max is not None else min(12, n - 1)
    bic = choose_k(scores, k_min=k_min, k_max=k_max, seed=seed)

    nearest = select_representatives(
        scores, matrix.workloads, bic.best, SelectionPolicy.NEAREST_TO_CENTER
    )
    farthest = select_representatives(
        scores, matrix.workloads, bic.best, SelectionPolicy.FARTHEST_FROM_CENTER
    )
    kiviat = kiviat_diagrams(
        scores, matrix.workloads, tuple(rep.workload for rep in farthest)
    )
    return SubsettingResult(
        matrix=matrix,
        pca=pca,
        dendrogram=dendrogram,
        bic=bic,
        nearest=nearest,
        farthest=farthest,
        kiviat=kiviat,
    )
