"""Dendrogram model and rendering (the structure behind Figure 1).

Wraps the merge sequence from :mod:`repro.core.linkage` with labels and
the query operations the paper's similarity analysis needs: cutting at a
distance (the vertical line "close to 5.6" that yields seven clusters),
cophenetic distances between named workloads (e.g. H-Sort/S-Sort join at
3.19), and the set of first-iteration merges (80 % of which are
same-stack pairs — Observation 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.linkage import Merge
from repro.errors import AnalysisError

__all__ = ["Dendrogram"]


@dataclass(frozen=True)
class Dendrogram:
    """A labelled merge tree.

    Attributes:
        labels: Leaf labels; leaf ``i`` has cluster id ``i``.
        merges: The ``n-1`` agglomeration steps, in merge order.
    """

    labels: tuple[str, ...]
    merges: tuple[Merge, ...]

    def __post_init__(self) -> None:
        n = len(self.labels)
        if len(self.merges) != n - 1:
            raise AnalysisError(
                f"{n} leaves require {n - 1} merges, got {len(self.merges)}"
            )

    @property
    def n_leaves(self) -> int:
        return len(self.labels)

    # -- membership helpers ---------------------------------------------------

    def _leaf_sets(self) -> dict[int, frozenset[int]]:
        """Cluster id -> leaf indices, for every id ever created."""
        n = self.n_leaves
        sets: dict[int, frozenset[int]] = {i: frozenset([i]) for i in range(n)}
        for index, merge in enumerate(self.merges):
            sets[n + index] = sets[merge.left] | sets[merge.right]
        return sets

    def cut(self, distance: float) -> list[set[str]]:
        """Clusters obtained by applying all merges at ≤ ``distance``.

        This is the paper's "draw a vertical line" operation on Figure 1.
        """
        n = self.n_leaves
        sets = self._leaf_sets()
        active: dict[int, frozenset[int]] = {i: sets[i] for i in range(n)}
        for index, merge in enumerate(self.merges):
            if merge.distance <= distance:
                del active[merge.left], active[merge.right]
                active[n + index] = sets[n + index]
        return [
            {self.labels[i] for i in leaf_set} for leaf_set in active.values()
        ]

    def cut_to_k(self, k: int) -> list[set[str]]:
        """Clusters after merging down to exactly ``k`` clusters.

        Raises:
            AnalysisError: If ``k`` is outside ``[1, n_leaves]``.
        """
        n = self.n_leaves
        if not 1 <= k <= n:
            raise AnalysisError(f"k={k} outside [1, {n}]")
        sets = self._leaf_sets()
        active: dict[int, frozenset[int]] = {i: sets[i] for i in range(n)}
        for index, merge in enumerate(self.merges):
            if len(active) <= k:
                break
            del active[merge.left], active[merge.right]
            active[n + index] = sets[n + index]
        return [{self.labels[i] for i in leaf_set} for leaf_set in active.values()]

    def cophenetic_distance(self, a: str, b: str) -> float:
        """Linkage distance at which workloads ``a`` and ``b`` first join.

        Raises:
            AnalysisError: On unknown labels or ``a == b``.
        """
        if a == b:
            raise AnalysisError("cophenetic distance needs two distinct labels")
        try:
            ia, ib = self.labels.index(a), self.labels.index(b)
        except ValueError as exc:
            raise AnalysisError(f"unknown label in ({a!r}, {b!r})") from exc
        n = self.n_leaves
        sets = self._leaf_sets()
        for index, merge in enumerate(self.merges):
            merged = sets[n + index]
            if ia in merged and ib in merged:
                left, right = sets[merge.left], sets[merge.right]
                if (ia in left) != (ib in left):
                    return merge.distance
        raise AnalysisError("labels never merge (corrupt dendrogram)")

    def first_iteration_merges(self) -> list[tuple[str, str, float]]:
        """Leaf-leaf merges: the paper's "first clustering iteration".

        Observation 1 counts how many of these pair two same-stack
        workloads (80 % in the paper).
        """
        n = self.n_leaves
        return [
            (self.labels[m.left], self.labels[m.right], m.distance)
            for m in self.merges
            if m.left < n and m.right < n
        ]

    def max_cophenetic_distance(self, subset: tuple[str, ...]) -> float:
        """Largest pairwise cophenetic distance within ``subset``.

        Table V's "maximal linkage distance among representative
        workloads".
        """
        best = 0.0
        for i, a in enumerate(subset):
            for b in subset[i + 1 :]:
                best = max(best, self.cophenetic_distance(a, b))
        return best

    # -- rendering --------------------------------------------------------------

    def leaf_order(self) -> list[str]:
        """Display order of leaves (depth-first over the final merge)."""
        n = self.n_leaves

        def walk(cluster_id: int) -> list[int]:
            if cluster_id < n:
                return [cluster_id]
            merge = self.merges[cluster_id - n]
            return walk(merge.left) + walk(merge.right)

        root = n + len(self.merges) - 1
        return [self.labels[i] for i in walk(root)]

    def to_newick(self) -> str:
        """Export the tree in Newick format (for external dendrogram tools).

        Branch lengths are the half-linkage-distance increments between a
        node and its parent merge, the usual ultrametric convention.
        """
        n = self.n_leaves

        def height(cluster_id: int) -> float:
            if cluster_id < n:
                return 0.0
            return self.merges[cluster_id - n].distance / 2.0

        def walk(cluster_id: int, parent_height: float) -> str:
            length = max(0.0, parent_height - height(cluster_id))
            if cluster_id < n:
                return f"{self.labels[cluster_id]}:{length:.6g}"
            merge = self.merges[cluster_id - n]
            own = height(cluster_id)
            left = walk(merge.left, own)
            right = walk(merge.right, own)
            return f"({left},{right}):{length:.6g}"

        root = n + len(self.merges) - 1
        return walk(root, height(root)) + ";"

    def render(self) -> str:
        """ASCII dendrogram (Figure 1 analogue), linkage distances shown."""
        n = self.n_leaves

        def walk(cluster_id: int, prefix: str, tail: bool) -> list[str]:
            connector = "└─ " if tail else "├─ "
            child_prefix = prefix + ("   " if tail else "│  ")
            if cluster_id < n:
                return [prefix + connector + self.labels[cluster_id]]
            merge = self.merges[cluster_id - n]
            lines = [prefix + connector + f"({merge.distance:.2f})"]
            lines += walk(merge.left, child_prefix, tail=False)
            lines += walk(merge.right, child_prefix, tail=True)
            return lines

        root = n + len(self.merges) - 1
        merge = self.merges[root - n]
        lines = [f"({merge.distance:.2f})"]
        lines += walk(merge.left, "", tail=False)
        lines += walk(merge.right, "", tail=True)
        return "\n".join(lines)
