"""Kiviat (radar) diagram data for representative workloads (Figure 6).

The paper shows one Kiviat diagram per chosen representative, with the
eight retained principal components as axes, to illustrate "that the
representative workloads are diverse and that different workloads are
dominated by different principal components".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError

__all__ = ["KiviatDiagram", "kiviat_diagrams"]


@dataclass(frozen=True)
class KiviatDiagram:
    """One workload's radar data over the retained PCs.

    Attributes:
        workload: Workload label.
        axes: Axis names (``PC1`` .. ``PCk``).
        values: The workload's score on each axis.
    """

    workload: str
    axes: tuple[str, ...]
    values: tuple[float, ...]

    @property
    def dominant_axis(self) -> str:
        """The axis with the largest absolute score."""
        index = max(range(len(self.values)), key=lambda i: abs(self.values[i]))
        return self.axes[index]

    def polygon(self) -> list[tuple[float, float]]:
        """Cartesian vertices of the radar polygon (|score| as radius)."""
        n = len(self.axes)
        return [
            (
                abs(self.values[i]) * math.cos(2.0 * math.pi * i / n),
                abs(self.values[i]) * math.sin(2.0 * math.pi * i / n),
            )
            for i in range(n)
        ]

    def render(self) -> str:
        """Text rendering: one bar per PC axis, sign-annotated."""
        peak = max(abs(v) for v in self.values) or 1.0
        lines = [f"{self.workload}:"]
        for axis, value in zip(self.axes, self.values):
            width = int(round(abs(value) / peak * 30))
            lines.append(f"  {axis:>4} {value:+7.2f} |{'#' * width}")
        return "\n".join(lines)


def kiviat_diagrams(
    scores: np.ndarray,
    labels: tuple[str, ...],
    workloads: tuple[str, ...],
) -> tuple[KiviatDiagram, ...]:
    """Build the Figure 6 diagrams for ``workloads``.

    Args:
        scores: ``(n, k)`` PC-score matrix of the full suite.
        labels: Row labels of ``scores``.
        workloads: The representatives to chart.

    Raises:
        AnalysisError: On unknown workloads or shape mismatch.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.shape[0] != len(labels):
        raise AnalysisError("scores/labels size mismatch")
    axes = tuple(f"PC{i + 1}" for i in range(scores.shape[1]))
    diagrams = []
    for workload in workloads:
        if workload not in labels:
            raise AnalysisError(f"unknown workload {workload!r}")
        row = scores[labels.index(workload)]
        diagrams.append(
            KiviatDiagram(
                workload=workload,
                axes=axes,
                values=tuple(float(v) for v in row),
            )
        )
    return tuple(diagrams)
