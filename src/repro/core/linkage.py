"""Agglomerative hierarchical clustering (Section III-D).

"Hierarchical clustering connects objects to form groups based on their
distance.  In the beginning, each element is in a cluster of its own.  At
each successive step, the two clusters separated by the shortest distance
are combined." — implemented from scratch with Euclidean distance and the
paper's *single* linkage ("the linkage distance between two clusters is
made by a single element pair, namely those two elements, one in each
cluster, that are closest to each other"), plus complete and average
linkage for comparison studies.

The output follows the conventional stepwise-merge encoding (as in
scipy's ``Z`` matrix): merge ``i`` creates cluster ``n + i`` from two
existing cluster ids at a recorded linkage distance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError

__all__ = ["Linkage", "Merge", "pairwise_distances", "hierarchical_clustering"]


class Linkage(enum.Enum):
    """Inter-cluster distance definitions."""

    SINGLE = "single"  # the paper's choice
    COMPLETE = "complete"
    AVERAGE = "average"


@dataclass(frozen=True)
class Merge:
    """One agglomeration step.

    Attributes:
        left: Id of one merged cluster (leaf ids are ``0..n-1``; merge
            ``i`` creates id ``n + i``).
        right: Id of the other merged cluster.
        distance: Linkage distance between the two clusters.
        size: Number of leaves in the new cluster.
    """

    left: int
    right: int
    distance: float
    size: int


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix.

    Raises:
        AnalysisError: If ``points`` is not 2-D.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise AnalysisError(f"expected a 2-D matrix, got shape {points.shape}")
    squared = np.sum(points**2, axis=1)
    gram = points @ points.T
    dist_sq = np.maximum(squared[:, None] + squared[None, :] - 2.0 * gram, 0.0)
    return np.sqrt(dist_sq)


def hierarchical_clustering(
    points: np.ndarray,
    linkage: Linkage = Linkage.SINGLE,
) -> list[Merge]:
    """Cluster ``points`` agglomeratively; returns the n-1 merges in order.

    Deterministic: ties are broken by the smaller pair of cluster ids.

    Raises:
        AnalysisError: If fewer than two points are given.
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    if n < 2:
        raise AnalysisError("hierarchical clustering needs at least two points")

    base = pairwise_distances(points)
    # Active clusters: id -> set of leaf indices.
    members: dict[int, frozenset[int]] = {i: frozenset([i]) for i in range(n)}
    # Current inter-cluster distances, keyed by sorted id pair.
    dist: dict[tuple[int, int], float] = {
        (i, j): float(base[i, j]) for i in range(n) for j in range(i + 1, n)
    }

    def cluster_distance(a: frozenset[int], b: frozenset[int]) -> float:
        block = base[np.ix_(sorted(a), sorted(b))]
        if linkage is Linkage.SINGLE:
            return float(block.min())
        if linkage is Linkage.COMPLETE:
            return float(block.max())
        return float(block.mean())

    merges: list[Merge] = []
    next_id = n
    for _step in range(n - 1):
        (left, right), best = min(dist.items(), key=lambda kv: (kv[1], kv[0]))
        merged = members[left] | members[right]
        merges.append(Merge(left=left, right=right, distance=best, size=len(merged)))
        del members[left], members[right]
        dist = {
            pair: value
            for pair, value in dist.items()
            if left not in pair and right not in pair
        }
        for other, other_members in members.items():
            pair = (other, next_id) if other < next_id else (next_id, other)
            dist[pair] = cluster_distance(merged, other_members)
        members[next_id] = merged
        next_id += 1
    return merges
