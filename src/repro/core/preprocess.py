"""Metric normalization (Section III-C).

"We first normalize metric values to a Gaussian distribution with mean
equal to zero and standard deviation equal to one (to isolate the effects
of the varying ranges of each dimension)."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError

__all__ = ["ZScore", "zscore"]


@dataclass(frozen=True)
class ZScore:
    """A fitted z-score transform.

    Attributes:
        means: Per-column means of the fitting data.
        stds: Per-column standard deviations (1.0 where degenerate).
        constant_columns: Boolean mask of zero-variance columns (these are
            mapped to 0 — they carry no discriminating information).
    """

    means: np.ndarray
    stds: np.ndarray
    constant_columns: np.ndarray

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Apply the fitted transform to ``matrix``.

        Zero-variance columns of the fitting data map to exactly 0 for
        *any* input — including held-out rows whose value differs from
        the fitted mean — since the fitted distribution carries no scale
        to express such a deviation.

        Raises:
            AnalysisError: On a column-count mismatch.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self.means.shape[0]:
            raise AnalysisError(
                f"expected {self.means.shape[0]} columns, got shape {matrix.shape}"
            )
        result = (matrix - self.means) / self.stds
        result[:, self.constant_columns] = 0.0
        return result


def zscore(matrix: np.ndarray, ddof: int = 0) -> tuple[np.ndarray, ZScore]:
    """Normalize columns to zero mean, unit standard deviation.

    Columns with zero variance are centred and left at zero rather than
    producing NaNs.

    Returns:
        ``(normalized, transform)``.

    Raises:
        AnalysisError: If ``matrix`` is not 2-D or has fewer than 2 rows.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise AnalysisError(f"expected a 2-D matrix, got shape {matrix.shape}")
    if matrix.shape[0] < 2:
        raise AnalysisError("need at least two rows to normalize")
    means = matrix.mean(axis=0)
    stds = matrix.std(axis=0, ddof=ddof)
    constant = stds == 0.0
    safe_stds = np.where(constant, 1.0, stds)
    transform = ZScore(means=means, stds=safe_stds, constant_columns=constant)
    return transform.transform(matrix), transform
