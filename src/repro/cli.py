"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro list                 # the 32 workloads with metadata
    python -m repro run S-PageRank       # execute one workload, show checks
    python -m repro characterize H-Sort  # one workload's 45 metrics
    python -m repro trace H-WordCount --out trace.json  # Chrome trace
    python -m repro experiment -o out/   # full reproduction + report bundle
    python -m repro observations         # score Observations 1-9
    python -m repro subset --budget 120  # budget-aware representative subset
    python -m repro serve --port 8321    # HTTP characterization service

All subcommands accept ``--scale`` and ``--seed``; the global
``--log-level`` / ``--log-json`` flags turn on structured logging.
Unknown workload labels exit with code 2 and closest-match suggestions.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading

from repro.analysis.experiment import ExperimentConfig, run_experiment
from repro.analysis.report import write_report
from repro.cluster import (
    Cluster,
    CollectionConfig,
    MeasurementConfig,
)
from repro.errors import ConfigurationError, WorkloadError
from repro.faults import FaultInjector, fault_injection, parse_fault_spec
from repro.metrics import METRICS
from repro.obs.log import configure_logging, get_logger
from repro.workloads import SUITE, RunContext, workload_by_name
from repro.workloads.suite import closest_workloads

__all__ = ["main"]

#: Exit code for user errors (bad workload name), distinct from workload
#: self-check failures (1).
EXIT_USAGE = 2


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.5, help="input scale factor")
    parser.add_argument("--seed", type=int, default=42, help="master seed")


def _measurement(args: argparse.Namespace) -> MeasurementConfig:
    return MeasurementConfig(
        slaves_measured=args.slaves,
        active_cores=args.cores,
        ops_per_core=args.ops,
    )


def _add_measurement(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--slaves", type=int, default=1, help="slaves to measure")
    parser.add_argument("--cores", type=int, default=3, help="active cores per slave")
    parser.add_argument("--ops", type=int, default=4000, help="sampled ops per core")
    parser.add_argument(
        "--flight-capacity",
        type=int,
        default=None,
        metavar="N",
        help="flight-recorder ring size per characterization (default 256; "
        "purely observational — does not change any metric)",
    )


def _add_timeline(parser: argparse.ArgumentParser, default_on: bool = False) -> None:
    if default_on:
        parser.add_argument(
            "--no-timeline",
            dest="timeline",
            action="store_false",
            help="disable time-resolved sampling (on by default here)",
        )
    else:
        parser.add_argument(
            "--timeline",
            action="store_true",
            help="collect a time-resolved sample series alongside the "
            "45-metric characterization (purely observational)",
        )
    parser.add_argument(
        "--timeline-interval",
        type=float,
        default=10.0,
        metavar="MS",
        help="minimum milliseconds between run samples (default 10)",
    )
    parser.add_argument(
        "--ramp-up-fraction",
        type=float,
        default=0.3,
        metavar="F",
        help="leading fraction of the run treated as ramp-up and excluded "
        "from steady-state rates (default 0.3)",
    )


def _timeline(args: argparse.Namespace):
    """A :class:`TimelineConfig` from args, or ``None`` when sampling is off."""
    if not getattr(args, "timeline", False):
        return None
    from repro.obs.timeline import TimelineConfig

    return TimelineConfig(
        interval_ms=args.timeline_interval,
        ramp_up_fraction=args.ramp_up_fraction,
    )


def _add_faults(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject faults while running, e.g. "
        "'crash=0.05,straggler=0.1,hdfs=0.02,node-loss=0.01,attempts=4' "
        "(recovery keeps the metrics identical to a fault-free run)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for fault decisions (default: the plan spec's seed)",
    )


def _fault_plan(args: argparse.Namespace):
    """The parsed fault plan, ``None`` if no ``--faults``, or an exit code."""
    if not getattr(args, "faults", None):
        return None
    try:
        return parse_fault_spec(args.faults, seed=args.fault_seed)
    except ConfigurationError as error:
        print(f"repro: bad --faults spec: {error}", file=sys.stderr)
        return EXIT_USAGE


def _cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'name':18s} {'category':22s} {'data type':16s} {'problem size'}")
    print("-" * 76)
    for workload in SUITE:
        print(
            f"{workload.name:18s} {workload.category.value:22s} "
            f"{workload.data_type.value:16s} {workload.declared_size}"
        )
    return 0


def _resolve_workload(label: str):
    """The named workload, or ``None`` after a friendly stderr message."""
    try:
        return workload_by_name(label)
    except WorkloadError:
        print(f"repro: unknown workload {label!r}", file=sys.stderr)
        suggestions = closest_workloads(label)
        if suggestions:
            print(f"did you mean: {', '.join(suggestions)}?", file=sys.stderr)
        print("(run `python -m repro list` to see all 32 workloads)", file=sys.stderr)
        return None


def _cmd_run(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args.workload)
    if workload is None:
        return EXIT_USAGE
    plan = _fault_plan(args)
    if isinstance(plan, int):
        return plan
    injector = (
        FaultInjector(plan, scope=(workload.name, None))
        if plan is not None and plan.any_faults()
        else None
    )
    with fault_injection(injector):
        run = workload.run(RunContext(scale=args.scale, seed=args.seed))
    print(f"{workload.name}: {run.output_records} output records, "
          f"{len(run.trace.records)} phase records")
    if injector is not None:
        stats = injector.stats
        print(f"  faults injected: {stats.to_dict()['injected']} "
              f"(retries={stats.task_retries}, "
              f"speculative={stats.speculative_tasks}, "
              f"backoff={stats.backoff_s:.2f}s)")
    for name, value in run.checks.items():
        print(f"  check {name} = {value}")
    failed = [n for n, v in run.checks.items() if v == 0.0]
    return 1 if failed else 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args.workload)
    if workload is None:
        return EXIT_USAGE
    plan = _fault_plan(args)
    if isinstance(plan, int):
        return plan
    cluster = Cluster()
    characterization = cluster.characterize_workload(
        workload,
        RunContext(scale=args.scale, seed=args.seed),
        _measurement(args),
        faults=plan,
        timeline=_timeline(args),
        flight_capacity=args.flight_capacity,
    )
    if characterization.faults is not None:
        print(f"fault tally: {characterization.faults}")
    if characterization.timeline is not None:
        series = characterization.timeline
        rates = series.steady_state_rates()
        print(f"timeline: {len(series)} samples over "
              f"{series.duration_ms:.1f} ms (ramp-up {series.ramp_up_ms:.1f} ms, "
              f"steady state {rates['records_per_s']:,.0f} records/s)")
    print(f"{workload.name} — 45 Table II metrics "
          f"(mean over {len(characterization.per_slave)} slave(s)):")
    for spec in METRICS:
        print(f"  {spec.number:>2} {spec.name:16s} "
              f"{characterization.metrics[spec.name]:12.4f}")
    return 0


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for suite collection (1 = serial; any "
        "value yields a bit-identical matrix)",
    )


def _collection(args: argparse.Namespace):
    """A :class:`CollectionConfig` from args, or an exit code on bad input."""
    plan = _fault_plan(args)
    if isinstance(plan, int):
        return plan
    return CollectionConfig(
        scale=args.scale,
        seed=args.seed,
        measurement=_measurement(args),
        # serve repurposes --workers for server processes; its
        # per-collection fan-out arrives as --collection-workers.
        workers=getattr(args, "collection_workers", None) or args.workers,
        faults=plan,
        timeline=_timeline(args),
        flight_capacity=getattr(args, "flight_capacity", None),
    )


def _cmd_observations(args: argparse.Namespace) -> int:
    from repro.analysis.observations import evaluate_observations

    collection = _collection(args)
    if isinstance(collection, int):
        return collection
    experiment = run_experiment(ExperimentConfig(collection=collection))
    observations = evaluate_observations(experiment)
    for observation in observations:
        print(observation.render())
        print()
    holding = sum(1 for o in observations if o.holds)
    print(f"{holding}/9 observations hold")
    return 0 if holding >= 8 else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    collection = _collection(args)
    if isinstance(collection, int):
        return collection
    experiment = run_experiment(ExperimentConfig(collection=collection))
    if args.out:
        out = write_report(experiment, args.out)
        print(f"report bundle written to {out}/")
    else:
        print(experiment.render())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.flight import FlightRecorder, flight_recording
    from repro.obs.trace import Tracer, tracing

    if args.merge is not None:
        return _merge_traces(args)
    if args.workload is None:
        print(
            "repro: trace needs a workload label (or --merge STORE_DIR)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    workload = _resolve_workload(args.workload)
    if workload is None:
        return EXIT_USAGE
    plan = _fault_plan(args)
    if isinstance(plan, int):
        return plan
    tracer = Tracer()
    recorder = FlightRecorder()
    cluster = Cluster()
    with tracing(tracer), flight_recording(recorder):
        characterization = cluster.characterize_workload(
            workload,
            RunContext(scale=args.scale, seed=args.seed),
            _measurement(args),
            faults=plan,
        )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(tracer.to_chrome(), handle)
    print(f"{workload.name}: {len(tracer)} spans -> {args.out} "
          "(load in chrome://tracing or https://ui.perfetto.dev)")
    print(f"flight recorder captured {len(characterization.events)} events")
    print(f"{'span':40s} {'count':>6s} {'total ms':>10s}")
    print("-" * 58)
    for entry in tracer.summary(top=args.top):
        print(f"{entry['name']:40s} {entry['count']:>6d} "
              f"{entry['total_us'] / 1e3:>10.2f}")
    return 0


def _merge_traces(args: argparse.Namespace) -> int:
    """``repro trace --merge STORE_DIR``: stitch the fleet's spills."""
    from repro.obs.fleet import load_trace_spills, merge_traces, traces_dir

    documents = load_trace_spills(args.merge)
    if not documents:
        print(
            f"repro: no trace spills under {traces_dir(args.merge)} "
            "(run the service with tracing on, or drive some jobs first)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    merged = merge_traces(documents)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(merged, handle)
    pids = merged["otherData"]["pids"]
    events = [e for e in merged["traceEvents"] if e.get("ph") != "M"]
    print(
        f"merged {len(documents)} process trace(s): {len(events)} events "
        f"across {len(pids)} pid lane(s) -> {args.out} "
        "(load in https://ui.perfetto.dev)"
    )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    """``repro status``: the fleet's live workers and merged totals."""
    if args.store is not None:
        from repro.obs.fleet import fleet_status, read_live_shards

        status = fleet_status(read_live_shards(args.store))
    else:
        from repro.errors import ServiceError
        from repro.service.client import ServiceClient

        try:
            status = ServiceClient(args.url, timeout=args.timeout).fleet()
        except ServiceError as error:
            print(f"repro: {error}", file=sys.stderr)
            return 1
    if not status["workers"]:
        # Every shard stale (or none ever written) is an outage even
        # when some process still answers HTTP: report it as one.
        print(
            "repro: fleet has no live members — every metric shard is "
            "stale or missing (is the service running?)",
            file=sys.stderr,
        )
        return 1
    totals = status["totals"]
    print(f"{'instance':28s} {'role':10s} {'pid':>7s} {'up s':>8s} "
          f"{'beat s':>7s} {'jobs':>5s} {'reqs':>7s}")
    print("-" * 78)
    for worker in status["workers"]:
        print(
            f"{worker['instance'][:28]:28s} {worker['role']:10s} "
            f"{worker['pid']:>7d} {worker['uptime_s']:>8.1f} "
            f"{worker['heartbeat_age_s']:>7.2f} "
            f"{int(worker['jobs_live']):>5d} "
            f"{int(worker['requests_total']):>7d}"
        )
    quantiles = totals["request_seconds"]
    print(
        f"\n{totals['processes']} live processes "
        f"({totals['servers']} servers), "
        f"{int(totals['restarts_total'])} restarts, "
        f"{int(totals['jobs_live'])} live jobs"
    )
    print(
        f"{int(totals['requests_total'])} requests "
        f"({totals['requests_per_s']:.2f}/s), latency "
        f"p50={quantiles['p50'] * 1e3:.1f}ms "
        f"p95={quantiles['p95'] * 1e3:.1f}ms "
        f"p99={quantiles['p99'] * 1e3:.1f}ms"
    )
    health = status.get("health")
    if health:
        line = (
            f"serving worker {health.get('instance')}: "
            f"{'ready' if health.get('ready') else 'NOT READY'}"
        )
        problems = health.get("problems") or []
        if problems:
            line += " (" + "; ".join(problems) + ")"
        print(line)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile``: capture a merged fleet CPU profile window."""
    from repro.obs.prof import attribution, collapsed_stacks, span_totals

    if args.store is not None:
        from repro.obs.prof import collect_fleet_profile, request_profile

        request = request_profile(
            args.store,
            seconds=args.seconds,
            interval_ms=args.interval,
            mode=args.mode,
        )
        doc = collect_fleet_profile(args.store, request)
    else:
        from repro.errors import ServiceError
        from repro.service.client import ServiceClient

        client = ServiceClient(args.url, timeout=args.seconds + 30.0)
        try:
            doc = client.profile(
                seconds=args.seconds,
                interval_ms=args.interval,
                mode=args.mode,
            )
        except ServiceError as error:
            print(f"repro: {error}", file=sys.stderr)
            return 1
    processes = doc.get("processes", [])
    if not doc.get("samples"):
        print(
            "repro: the profile window captured no samples — no fleet "
            "process answered (check `repro status`, or pass --store "
            "for an offline fleet)",
            file=sys.stderr,
        )
        return 1
    stats = attribution(doc)
    roles: dict[str, int] = {}
    for process in processes:
        role = str(process.get("role", "?"))
        roles[role] = roles.get(role, 0) + 1
    role_list = ", ".join(
        f"{count} {role}" for role, count in sorted(roles.items())
    )
    print(
        f"{doc['samples']} samples over {doc.get('duration_s', 0.0):.2f}s "
        f"({doc.get('mode', 'wall')} clock, "
        f"{doc.get('interval_ms', 0.0):g}ms interval) "
        f"from {len(processes)} process(es): {role_list or 'n/a'}"
    )
    print(
        f"span attribution: {stats['fraction']:.1%} of busy samples "
        f"({stats['attributed']} attributed, {stats['untracked']} "
        f"untracked, {stats['idle']} idle)"
    )
    print(f"\n{'span path':58s} {'samples':>8s} {'share':>7s}")
    print("-" * 75)
    for entry in span_totals(doc, top=args.top):
        print(
            f"{entry['path'][:58]:58s} {entry['samples']:>8d} "
            f"{entry['fraction']:>6.1%}"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        print(f"\nprofile document -> {args.out}")
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as handle:
            handle.write(collapsed_stacks(doc) + "\n")
        print(f"collapsed stacks -> {args.collapsed} "
              "(feed to flamegraph.pl or speedscope)")
    if args.flame:
        from repro.analysis.dashboard import render_profile_page

        with open(args.flame, "w", encoding="utf-8") as handle:
            handle.write(render_profile_page(doc))
        print(f"flamegraph -> {args.flame} "
              "(self-contained HTML, no scripts)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.dashboard import render_dashboard
    from repro.cluster.collection import characterize_suite
    from repro.core.subsetting import subset_workloads
    from repro.errors import ReproError

    collection = _collection(args)
    if isinstance(collection, int):
        return collection
    workloads = SUITE[: args.limit] if args.limit else SUITE
    result = characterize_suite(
        workloads,
        collection,
        progress=lambda done, total: print(
            f"  characterized {done}/{total}", file=sys.stderr
        ),
    )
    try:
        subsetting = subset_workloads(result.matrix, seed=args.seed)
    except ReproError as error:
        print(f"repro: subsetting skipped: {error}", file=sys.stderr)
        subsetting = None
    budgeted = None
    try:
        from repro.core.pca import fit_pca
        from repro.subset import estimate_costs, select_budgeted

        costs = estimate_costs(result.characterizations)
        budget = args.budget
        if budget is None:
            # Default operating point: half the pool's simulation cost.
            budget = 0.5 * sum(cost.seconds for cost in costs)
        budgeted = select_budgeted(
            fit_pca(result.matrix.values).scores,
            result.matrix.workloads,
            costs,
            budget,
        )
    except ReproError as error:
        print(f"repro: budget panel skipped: {error}", file=sys.stderr)
    profile_doc = None
    if args.profile:
        try:
            with open(args.profile, encoding="utf-8") as handle:
                profile_doc = json.load(handle)
        except (OSError, ValueError) as error:
            print(
                f"repro: profile panel skipped: cannot read "
                f"{args.profile}: {error}",
                file=sys.stderr,
            )
    html_doc = render_dashboard(
        result.matrix,
        result.characterizations,
        subsetting=subsetting,
        title=f"repro characterization dashboard ({len(workloads)} workloads)",
        budgeted=budgeted,
        profile=profile_doc,
    )
    with open(args.html, "w", encoding="utf-8") as handle:
        handle.write(html_doc)
    with_timelines = sum(
        1 for c in result.characterizations if c.timeline is not None
    )
    print(f"dashboard written to {args.html} "
          f"({len(html_doc)} bytes, {with_timelines} timelines, "
          "self-contained — no scripts, no external assets)")
    return 0


def _cmd_subset(args: argparse.Namespace) -> int:
    from repro.cluster.collection import characterize_suite
    from repro.core.pca import fit_pca
    from repro.core.subsetting import subset_workloads
    from repro.errors import ReproError, SubsetError
    from repro.subset import estimate_costs, select_budgeted

    import math

    if args.budget is not None and (
        not math.isfinite(args.budget) or args.budget <= 0
    ):
        print(
            f"repro: --budget must be a positive number of seconds, "
            f"got {args.budget!r}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    collection = _collection(args)
    if isinstance(collection, int):
        return collection
    workloads = SUITE[: args.limit] if args.limit else SUITE
    result = characterize_suite(
        workloads,
        collection,
        progress=lambda done, total: print(
            f"  characterized {done}/{total}", file=sys.stderr
        ),
    )

    if args.budget is not None:
        try:
            costs = estimate_costs(result.characterizations)
            points = fit_pca(result.matrix.values).scores
            selection = select_budgeted(
                points, result.matrix.workloads, costs, args.budget
            )
        except SubsetError as error:
            print(f"repro: {error}", file=sys.stderr)
            return EXIT_USAGE
        by_name = {cost.workload: cost for cost in costs}
        measured = sum(1 for cost in costs if cost.measured)
        print(
            f"budget {selection.budget_s:g}s over {selection.n_pool} workloads "
            f"(pool cost {selection.total_pool_cost_s:.2f}s, "
            f"{measured} measured costs)"
        )
        print(f"{'#':>2s} {'workload':18s} {'cost s':>9s} {'source':>9s} "
              f"{'cum cost s':>11s} {'cum coverage':>13s}")
        print("-" * 68)
        for position, pick in enumerate(selection.picks, start=1):
            print(
                f"{position:>2d} {pick.workload:18s} {pick.cost_s:>9.3f} "
                f"{by_name[pick.workload].source:>9s} "
                f"{pick.cumulative_cost_s:>11.3f} "
                f"{pick.cumulative_coverage:>13.4f}"
            )
        print(
            f"selected {len(selection.picks)}/{selection.n_pool} workloads, "
            f"coverage {selection.coverage:.4f}, "
            f"cost {selection.cost_s:.2f}s of {selection.budget_s:g}s"
        )
        return 0

    n = len(workloads)
    if args.k is not None and not 2 <= args.k <= n - 1:
        print(
            f"repro: --k must be in [2, {n - 1}] for {n} workloads",
            file=sys.stderr,
        )
        return EXIT_USAGE
    try:
        if args.k is None:
            subsetting = subset_workloads(result.matrix, seed=args.seed)
        else:
            subsetting = subset_workloads(
                result.matrix, seed=args.seed, k_min=args.k, k_max=args.k
            )
    except ReproError as error:
        print(f"repro: subsetting failed: {error}", file=sys.stderr)
        return EXIT_USAGE
    print(f"K = {subsetting.clustering.k} clusters "
          f"(BIC-chosen, {subsetting.pca.n_kept} PCs)")
    print(f"{'workload':18s} {'cluster size':>12s} {'dist to center':>15s}")
    print("-" * 48)
    for rep in subsetting.farthest:
        print(
            f"{rep.workload:18s} {rep.cluster_size:>12d} "
            f"{rep.distance_to_center:>15.4f}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import ServiceConfig, serve

    log = get_logger("repro.cli.serve")
    collection = _collection(args)
    if isinstance(collection, int):
        return collection
    if args.workers > 1:
        from repro.service.store import resolve_cache_dir

        if resolve_cache_dir(args.cache_dir) is None:
            print(
                "repro: serve --workers > 1 needs --cache-dir (or "
                "$REPRO_CACHE_DIR): the store is the workers' shared state",
                file=sys.stderr,
            )
            return EXIT_USAGE
    config = ServiceConfig(
        collection=collection,
        cache_dir=args.cache_dir,
        workers=args.collection_workers,
    )
    if args.workers > 1:
        return _serve_prefork(args, config, log)
    server = serve(config, host=args.host, port=args.port, verbose=args.verbose)
    host, port = server.server_address[:2]
    print(f"repro characterization service on http://{host}:{port}")
    print(f"store: {server.service.store.root}")
    print(
        "endpoints: /workloads /metrics /metrics/catalog /stats "
        "/characterize/<name> /suite/matrix /subset?k=K|budget=S "
        "/observations /jobs"
    )

    def _request_shutdown(signum: int, _frame) -> None:
        # serve_forever() runs in this (main) thread, so shutdown() must
        # come from another thread or the handler deadlocks.
        log.info("shutdown signal received", extra={"signal": signum})
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGINT, _request_shutdown)
        signal.signal(signal.SIGTERM, _request_shutdown)
    except ValueError:  # pragma: no cover - only off the main thread
        pass  # signals are main-thread-only; fall back to KeyboardInterrupt
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        print("\nshutting down")
        server.shutdown()
        server.server_close()
        server.service.close()
        log.info("service stopped", extra={"port": port})
    return 0


def _serve_prefork(args: argparse.Namespace, config, log) -> int:
    """``repro serve --workers N``: N pre-fork server processes."""
    from repro.service.store import resolve_cache_dir
    from repro.service.supervisor import Supervisor

    try:
        supervisor = Supervisor(
            config,
            host=args.host,
            port=args.port,
            workers=args.workers,
            verbose=args.verbose,
        )
        host, port = supervisor.start()
    except ReproError as error:
        print(f"repro: {error}", file=sys.stderr)
        return EXIT_USAGE
    print(
        f"repro characterization service on http://{host}:{port} "
        f"({args.workers} workers)"
    )
    print(f"store: {resolve_cache_dir(args.cache_dir)}")

    def _request_shutdown(signum: int, _frame) -> None:
        log.info("shutdown signal received", extra={"signal": signum})
        supervisor.request_stop()

    try:
        signal.signal(signal.SIGINT, _request_shutdown)
        signal.signal(signal.SIGTERM, _request_shutdown)
    except ValueError:  # pragma: no cover - only off the main thread
        pass
    try:
        supervisor.run_forever()
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    except ReproError as error:
        print(f"repro: {error}", file=sys.stderr)
        supervisor.shutdown()
        return 1
    finally:
        print("\nshutting down")
        supervisor.shutdown()
        log.info("service stopped", extra={"port": port})
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Characterizing and Subsetting Big Data "
        "Workloads' (IISWC 2014)",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error", "critical"),
        help="enable structured logging to stderr at this level",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as one JSON object per line instead of key=value",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the 32 Table I workloads")

    run_parser = subparsers.add_parser("run", help="execute one workload")
    run_parser.add_argument("workload", help="workload label, e.g. S-PageRank")
    _add_common(run_parser)
    _add_faults(run_parser)

    char_parser = subparsers.add_parser(
        "characterize", help="collect one workload's 45 metrics"
    )
    char_parser.add_argument("workload", help="workload label, e.g. H-Sort")
    _add_common(char_parser)
    _add_measurement(char_parser)
    _add_faults(char_parser)
    _add_timeline(char_parser)

    trace_parser = subparsers.add_parser(
        "trace",
        help="characterize one workload under the tracer, export Chrome "
        "trace (or --merge a fleet's per-process spills)",
        description="Run one workload's full characterization with tracing "
        "and the flight recorder on, write the spans as Chrome Trace Event "
        "Format JSON (chrome://tracing / Perfetto), and print a span summary. "
        "With --merge STORE_DIR, instead stitch every per-process trace "
        "spill under the store's telemetry directory into one multi-pid "
        "trace with labelled process lanes.",
    )
    trace_parser.add_argument(
        "workload", nargs="?", default=None,
        help="workload label, e.g. H-WordCount (omit with --merge)",
    )
    trace_parser.add_argument(
        "--merge", default=None, metavar="STORE_DIR",
        help="merge the fleet's per-process trace spills from this store "
        "directory instead of running a workload",
    )
    trace_parser.add_argument(
        "--out", default="trace.json", help="output trace file (Chrome JSON)"
    )
    trace_parser.add_argument(
        "--top", type=int, default=10, help="span-summary rows to print"
    )
    _add_common(trace_parser)
    _add_measurement(trace_parser)
    _add_faults(trace_parser)

    exp_parser = subparsers.add_parser(
        "experiment", help="reproduce every figure and table"
    )
    _add_common(exp_parser)
    _add_measurement(exp_parser)
    _add_workers(exp_parser)
    _add_faults(exp_parser)
    exp_parser.add_argument(
        "-o", "--out", default=None, help="write a report bundle to this directory"
    )

    obs_parser = subparsers.add_parser(
        "observations", help="score the paper's Observations 1-9"
    )
    _add_common(obs_parser)
    _add_measurement(obs_parser)
    _add_workers(obs_parser)
    _add_faults(obs_parser)

    report_parser = subparsers.add_parser(
        "report",
        help="render the suite as a self-contained HTML dashboard",
        description="Characterize the suite (timeline sampling on by "
        "default) and write ONE self-contained HTML file — inline SVG "
        "timelines, the suite z-score heatmap, and Figure-6 Kiviat "
        "diagrams; no scripts, no external assets.",
    )
    _add_common(report_parser)
    _add_measurement(report_parser)
    _add_workers(report_parser)
    _add_faults(report_parser)
    _add_timeline(report_parser, default_on=True)
    report_parser.add_argument(
        "--html", default="report.html", help="output HTML path"
    )
    report_parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="characterize only the first N suite workloads (default: all 32)",
    )
    report_parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="operating point for the coverage-vs-budget panel "
        "(default: half the pool's simulation cost)",
    )
    report_parser.add_argument(
        "--profile",
        default=None,
        metavar="PROFILE_JSON",
        help="embed this merged fleet profile (from `repro profile "
        "--out`) as a flamegraph panel",
    )

    subset_parser = subparsers.add_parser(
        "subset",
        help="pick a representative subset (paper's k clusters, or "
        "budget-aware with --budget)",
        description="Characterize the suite, then pick representatives: "
        "by K-means clusters (the paper's Table V path, --k) or by "
        "greedy submodular coverage per unit simulated-runtime cost "
        "under a --budget in seconds.  With --timeline (on by default) "
        "costs come from measured run durations.",
    )
    _add_common(subset_parser)
    _add_measurement(subset_parser)
    _add_workers(subset_parser)
    _add_faults(subset_parser)
    _add_timeline(subset_parser, default_on=True)
    subset_group = subset_parser.add_mutually_exclusive_group()
    subset_group.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="simulation-time budget; selects workloads maximizing "
        "PC-space coverage per unit cost",
    )
    subset_group.add_argument(
        "--k",
        type=int,
        default=None,
        help="force this many K-means clusters (default: BIC-chosen)",
    )
    subset_parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="characterize only the first N suite workloads (default: all 32)",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the HTTP characterization service",
        description="Run the HTTP characterization service: a persistent "
        "store + single-flight job manager behind a stdlib JSON API "
        "(/workloads, /metrics, /characterize/<name>, /suite/matrix, "
        "/subset, /observations, /jobs).",
    )
    _add_common(serve_parser)
    _add_measurement(serve_parser)
    _add_faults(serve_parser)
    _add_timeline(serve_parser)
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="server processes sharing the listen socket (pre-fork; "
        ">1 needs a shared --cache-dir)",
    )
    serve_parser.add_argument(
        "--collection-workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes *within* one collection (1 = serial; any "
        "value yields a bit-identical matrix)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8321, help="TCP port (0 picks a free one)"
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-store directory (default: $REPRO_CACHE_DIR or a temp dir)",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log every request"
    )

    status_parser = subparsers.add_parser(
        "status",
        help="show the serving fleet's live workers and merged totals",
        description="Report per-worker liveness, restart counts, live "
        "jobs, request rates and latency quantiles for a running fleet — "
        "from GET /fleet of a live service, or directly from the metric "
        "shards in a store directory with --store.",
    )
    status_parser.add_argument(
        "--url", default="http://127.0.0.1:8321",
        help="service base URL (default: %(default)s)",
    )
    status_parser.add_argument(
        "--store", default=None, metavar="STORE_DIR",
        help="read the fleet's metric shards from this store directory "
        "instead of asking a live service",
    )
    status_parser.add_argument(
        "--timeout", type=float, default=10.0,
        help="HTTP timeout in seconds (default: %(default)s)",
    )

    profile_parser = subparsers.add_parser(
        "profile",
        help="capture a fleet-wide CPU profile with span attribution",
        description="Open a sampling window across every fleet process "
        "(servers, supervisor, pool workers), merge the per-pid spills "
        "and print the hottest span paths.  Talks to a live service's "
        "GET /profile by default; with --store it publishes the window "
        "through the store directory directly, so any fleet whose "
        "agents watch that store answers even without HTTP.",
    )
    profile_parser.add_argument(
        "--url", default="http://127.0.0.1:8321",
        help="service base URL (default: %(default)s)",
    )
    profile_parser.add_argument(
        "--store", default=None, metavar="STORE_DIR",
        help="coordinate the window through this store directory "
        "instead of a live service URL",
    )
    profile_parser.add_argument(
        "--seconds", type=float, default=3.0,
        help="sampling window length (default: %(default)s)",
    )
    profile_parser.add_argument(
        "--interval", type=float, default=5.0, metavar="MS",
        help="sampling period in milliseconds (default: %(default)s)",
    )
    profile_parser.add_argument(
        "--mode", choices=("wall", "cpu"), default="wall",
        help="wall samples elapsed time (parked threads show as idle); "
        "cpu samples on-CPU time only (default: %(default)s)",
    )
    profile_parser.add_argument(
        "--top", type=int, default=12, metavar="N",
        help="span paths to print (default: %(default)s)",
    )
    profile_parser.add_argument(
        "--out", default=None, metavar="PROFILE_JSON",
        help="also write the merged profile document as JSON",
    )
    profile_parser.add_argument(
        "--collapsed", default=None, metavar="PATH",
        help="also write collapsed-stack text (flamegraph.pl/speedscope)",
    )
    profile_parser.add_argument(
        "--flame", default=None, metavar="HTML",
        help="also write a self-contained flamegraph HTML page",
    )

    args = parser.parse_args(argv)
    if args.log_level is not None or args.log_json:
        # Only touch logging when asked: tests capture stdout/stderr and
        # the default CLI output stays exactly as before.
        configure_logging(
            level=args.log_level or "info", json_format=args.log_json
        )
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "characterize": _cmd_characterize,
        "trace": _cmd_trace,
        "experiment": _cmd_experiment,
        "observations": _cmd_observations,
        "report": _cmd_report,
        "subset": _cmd_subset,
        "serve": _cmd_serve,
        "status": _cmd_status,
        "profile": _cmd_profile,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
