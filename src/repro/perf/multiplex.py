"""Counter multiplexing.

The paper needs 46 raw events but each core only has four programmable
counters, so perf time-multiplexes event groups across the run and scales
the observed counts by ``total_time / enabled_time`` ("Although Perf can
multiplex the PMCs, we run each workload multiple times to obtain more
accurate values" — Section IV-C).

We model a run as ``num_slices`` equal time slices.  Ground-truth event
totals are spread across slices with a small seeded log-normal jitter
(workloads are not perfectly phase-stationary), each event group is
scheduled round-robin onto slices, and a group's estimate is its observed
sum scaled by ``num_slices / slices_assigned``.  The estimate is unbiased
but noisy — exactly the error source the repeated-run protocol in
:mod:`repro.perf.profiler` averages away.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProfilingError

__all__ = ["group_events", "MultiplexedObservation", "multiplex_counts"]


def group_events(event_names: list[str], counters: int) -> list[list[str]]:
    """Pack events into groups of at most ``counters`` events.

    Raises:
        ProfilingError: If ``counters`` is not positive.
    """
    if counters <= 0:
        raise ProfilingError("counters per group must be positive")
    return [event_names[i : i + counters] for i in range(0, len(event_names), counters)]


@dataclass(frozen=True)
class MultiplexedObservation:
    """Result of one multiplexed observation of a run.

    Attributes:
        estimates: Scaled per-event count estimates.
        enabled_fraction: Per-event fraction of run time the event's group
            was actually counting (perf reports this as
            ``enabled/running``).
    """

    estimates: dict[str, float]
    enabled_fraction: dict[str, float]


def multiplex_counts(
    true_counts: dict[str, float],
    groups: list[list[str]],
    rng: np.random.Generator,
    num_slices: int = 64,
    jitter: float = 0.08,
) -> MultiplexedObservation:
    """Observe ``true_counts`` through round-robin multiplexed groups.

    Args:
        true_counts: Ground-truth event totals for the whole run.
        groups: Event groups (each fits in the programmable counters).
        rng: Seeded generator for the per-slice jitter.
        num_slices: Number of scheduling slices in the run.
        jitter: Log-normal sigma of per-slice intensity variation.

    Raises:
        ProfilingError: If there are more groups than slices (a group
            would never be scheduled).
    """
    n_groups = len(groups)
    if n_groups == 0:
        return MultiplexedObservation({}, {})
    if n_groups > num_slices:
        raise ProfilingError(
            f"{n_groups} groups cannot be multiplexed over {num_slices} slices"
        )

    # Per-slice intensity profile, shared by all events of the run.
    weights = rng.lognormal(mean=0.0, sigma=jitter, size=num_slices)
    weights = weights / weights.sum()

    estimates: dict[str, float] = {}
    enabled_fraction: dict[str, float] = {}
    for group_index, group in enumerate(groups):
        assigned = [s for s in range(num_slices) if s % n_groups == group_index]
        observed_weight = float(sum(weights[s] for s in assigned))
        expected_weight = len(assigned) / num_slices
        # A group observes only its slices; perf's linear scaling assumes
        # the run is stationary, so the estimate is off by the ratio of
        # the weight its slices really carried to the weight scaling
        # assumes — unbiased across schedules, noisy within one.
        bias = observed_weight / expected_weight if expected_weight else 1.0
        for event_name in group:
            estimates[event_name] = true_counts.get(event_name, 0.0) * bias
            enabled_fraction[event_name] = expected_weight
    return MultiplexedObservation(estimates=estimates, enabled_fraction=enabled_fraction)
