"""Perf-like profiler facade.

Reproduces the paper's data-collection protocol (Section IV-C):

* the 46 raw events are packed into groups that fit the four
  programmable counters (fixed-counter events ride along for free);
* one "run" observes the ground-truth event totals through a multiplexed
  schedule, yielding noisy scaled estimates;
* each workload is run **multiple times** and the estimates averaged
  ("we run each workload multiple times to obtain more accurate values");
* the result is a complete raw-count mapping ready for
  :func:`repro.metrics.derivation.derive_metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ProfilingError
from repro.metrics.derivation import REQUIRED_EVENTS
from repro.metrics.events import EVENT_NAMES, EventDomain
from repro.perf.multiplex import group_events, multiplex_counts
from repro.perf.pmu import Pmu, PmuConfig

__all__ = ["PerfProfiler", "ProfileResult"]


@dataclass(frozen=True)
class ProfileResult:
    """Averaged event estimates for one workload on one node.

    Attributes:
        counts: Per-event mean estimate across repeats.
        repeats: Number of repeated runs averaged.
        relative_spread: Per-event coefficient of variation across the
            repeats (empty when ``repeats == 1``); exposed so callers can
            check that the repeat protocol converged.
    """

    counts: dict[str, float]
    repeats: int
    relative_spread: dict[str, float] = field(default_factory=dict)


class PerfProfiler:
    """Collects raw event counts the way the paper's perf setup does."""

    def __init__(
        self,
        events: tuple[str, ...] = REQUIRED_EVENTS,
        pmu_config: PmuConfig | None = None,
        num_slices: int = 64,
        jitter: float = 0.08,
    ) -> None:
        unknown = [name for name in events if name not in EVENT_NAMES]
        if unknown:
            raise ProfilingError(f"unknown events requested: {unknown}")
        self.pmu_config = pmu_config or PmuConfig()
        self.events = tuple(events)
        self.num_slices = num_slices
        self.jitter = jitter
        self._fixed = tuple(
            name for name in events if EVENT_NAMES[name].domain is EventDomain.FIXED
        )
        multiplexed = [
            name for name in events if EVENT_NAMES[name].domain is not EventDomain.FIXED
        ]
        self.groups = group_events(multiplexed, self.pmu_config.programmable_counters)

    def observe_once(
        self, true_counts: dict[str, float], rng: np.random.Generator
    ) -> dict[str, float]:
        """One multiplexed observation (a single perf run)."""
        observation = multiplex_counts(
            true_counts,
            self.groups,
            rng,
            num_slices=self.num_slices,
            jitter=self.jitter,
        )
        counts = dict(observation.estimates)
        # Fixed counters observe the whole run exactly: model them through
        # an actual Pmu instance so the counter path is exercised.
        pmu = Pmu(self.pmu_config)
        pmu.observe(true_counts)
        for name in self._fixed:
            counts[name] = pmu.read_fixed(name)
        return counts

    def profile(
        self,
        true_counts: dict[str, float],
        rng: np.random.Generator,
        repeats: int = 3,
    ) -> ProfileResult:
        """Observe ``true_counts`` over ``repeats`` runs and average.

        Raises:
            ProfilingError: If ``repeats`` is not positive.
        """
        if repeats <= 0:
            raise ProfilingError("repeats must be positive")
        runs = [self.observe_once(true_counts, rng) for _ in range(repeats)]
        names = set().union(*(run.keys() for run in runs))
        means: dict[str, float] = {}
        spread: dict[str, float] = {}
        for name in names:
            values = np.array([run.get(name, 0.0) for run in runs], dtype=float)
            mean = float(values.mean())
            means[name] = mean
            if repeats > 1 and mean != 0.0:
                spread[name] = float(values.std(ddof=1) / abs(mean))
        return ProfileResult(counts=means, repeats=repeats, relative_spread=spread)
