"""Performance monitoring unit model.

The testbed Xeon exposes hardware events through MSRs: writing an event
select / unit mask into ``IA32_PERFEVTSELx`` makes ``IA32_PMCx`` count that
event (Section IV-C).  Westmere cores have four programmable counters per
core (with Hyper-Threading disabled) plus three fixed-function counters
(instructions retired, core cycles, reference cycles).

This module models that interface: a :class:`Pmu` is programmed with raw
event names, then *observes* a ground-truth event stream (the totals the
architecture simulation produced) over a window and accumulates counts.
It exists so the collection path through the library matches the paper's
— metrics are never read off the simulator directly; they pass through
programmable counters, multiplexing and repeated runs first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProfilingError
from repro.metrics.events import EVENT_NAMES, EventDomain

__all__ = ["PmuConfig", "Pmu"]

#: MSR addresses, matching the Intel SDM layout for flavour.
IA32_PERFEVTSEL_BASE = 0x186
IA32_PMC_BASE = 0x0C1
IA32_FIXED_CTR0 = 0x309  # instructions retired
IA32_FIXED_CTR1 = 0x30A  # core cycles


@dataclass(frozen=True)
class PmuConfig:
    """PMU geometry.

    Attributes:
        programmable_counters: Programmable counters per core (4 on
            Westmere with Hyper-Threading disabled).
    """

    programmable_counters: int = 4


class Pmu:
    """A per-core PMU with programmable and fixed counters."""

    #: Events always serviced by fixed counters.
    FIXED = ("inst_retired.any", "cpu_clk_unhalted.core")

    def __init__(self, config: PmuConfig | None = None) -> None:
        self.config = config or PmuConfig()
        self._programmed: list[str | None] = [None] * self.config.programmable_counters
        self._values: list[float] = [0.0] * self.config.programmable_counters
        self._fixed_values: dict[str, float] = {name: 0.0 for name in self.FIXED}
        self._enabled = False

    # -- MSR-style programming ------------------------------------------------

    def program(self, counter: int, event_name: str) -> None:
        """Program ``counter`` to count ``event_name``.

        Raises:
            ProfilingError: On an unknown event, a bad counter index, or an
                attempt to program a fixed-only event onto a programmable
                counter while it has a dedicated fixed counter.
        """
        if event_name not in EVENT_NAMES:
            raise ProfilingError(f"unknown hardware event: {event_name!r}")
        if not 0 <= counter < self.config.programmable_counters:
            raise ProfilingError(
                f"counter index {counter} out of range "
                f"[0, {self.config.programmable_counters})"
            )
        spec = EVENT_NAMES[event_name]
        if spec.domain is EventDomain.FIXED:
            raise ProfilingError(
                f"{event_name} is serviced by a fixed counter; do not burn a "
                "programmable counter on it"
            )
        self._programmed[counter] = event_name
        self._values[counter] = 0.0

    def wrmsr(self, msr: int, event_name: str) -> None:
        """MSR-flavoured alias of :meth:`program` (PERFEVTSELx write)."""
        index = msr - IA32_PERFEVTSEL_BASE
        self.program(index, event_name)

    def clear(self) -> None:
        """Deprogram all counters and zero their values."""
        self._programmed = [None] * self.config.programmable_counters
        self._values = [0.0] * self.config.programmable_counters
        self._fixed_values = {name: 0.0 for name in self.FIXED}

    # -- counting -------------------------------------------------------------

    def observe(self, true_events: dict[str, float]) -> None:
        """Accumulate one observation window of ground-truth events.

        Programmed counters pick out their event; fixed counters always
        count.  Events not programmed anywhere are simply not observed —
        that is precisely the gap multiplexing (and repeated runs) exist
        to cover.
        """
        for name in self.FIXED:
            self._fixed_values[name] += true_events.get(name, 0.0)
        for index, event_name in enumerate(self._programmed):
            if event_name is not None:
                self._values[index] += true_events.get(event_name, 0.0)

    def read(self, counter: int) -> float:
        """Read programmable counter ``counter``.

        Raises:
            ProfilingError: If the counter was never programmed.
        """
        if not 0 <= counter < self.config.programmable_counters:
            raise ProfilingError(f"counter index {counter} out of range")
        if self._programmed[counter] is None:
            raise ProfilingError(f"counter {counter} is not programmed")
        return self._values[counter]

    def read_fixed(self, event_name: str) -> float:
        """Read a fixed counter by event name.

        Raises:
            ProfilingError: If ``event_name`` has no fixed counter.
        """
        if event_name not in self._fixed_values:
            raise ProfilingError(f"{event_name!r} is not a fixed-counter event")
        return self._fixed_values[event_name]

    def read_all(self) -> dict[str, float]:
        """All counts currently held (fixed + programmed)."""
        result = dict(self._fixed_values)
        for index, event_name in enumerate(self._programmed):
            if event_name is not None:
                result[event_name] = self._values[index]
        return result
