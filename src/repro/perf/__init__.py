"""Perf-like PMC collection layer: PMU model, multiplexing, profiler."""

from repro.perf.multiplex import MultiplexedObservation, group_events, multiplex_counts
from repro.perf.pmu import Pmu, PmuConfig
from repro.perf.profiler import PerfProfiler, ProfileResult

__all__ = [
    "MultiplexedObservation",
    "group_events",
    "multiplex_counts",
    "Pmu",
    "PmuConfig",
    "PerfProfiler",
    "ProfileResult",
]
