"""The fault injector: keyed-RNG fault decisions plus recovery accounting.

Every decision (does this attempt crash? does this task straggle? is
this slave lost?) is drawn from a fresh RNG seeded by hashing the plan
seed, the injector scope and the decision identity.  Decisions are
therefore a pure function of the plan — independent of task execution
order, worker count, or how many draws happened before — which is what
makes chaos runs reproducible and lets retries re-draw per attempt.

The active injector is ambient (a :mod:`contextvars` variable) so the
engines deep inside a workload runner can reach it without threading a
parameter through all 32 workload definitions.
"""

from __future__ import annotations

import contextlib
import contextvars
import zlib
from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.faults.plan import FaultKind, FaultPlan
from repro.obs import flight
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.trace import instant as trace_instant

__all__ = ["FaultStats", "FaultInjector", "current_injector", "fault_injection"]

_log = get_logger("repro.faults.injector")

_FAULTS_INJECTED = REGISTRY.counter(
    "repro_faults_injected_total",
    "Faults injected into task attempts, by kind",
    ("kind",),
)


def _stable_hash(value: object) -> int:
    """Deterministic seed material (mirrors ``repro.stacks.base.stable_hash``;
    duplicated here so the fault layer sits below the stacks package)."""
    return zlib.crc32(repr(value).encode("utf-8"))


@dataclass
class FaultStats:
    """Tally of what was injected and what recovery cost.

    Attributes:
        injected: Count of injected faults per :class:`FaultKind` value.
        task_retries: Task attempts that were re-executed after a fault.
        speculative_tasks: Tasks that ran a speculative duplicate.
        rescheduled_tasks: Tasks moved off a lost node.
        lost_nodes: Slave indices the plan removed from the run.
        backoff_s: Total simulated exponential-backoff wait.
    """

    injected: dict[str, int] = field(default_factory=dict)
    task_retries: int = 0
    speculative_tasks: int = 0
    rescheduled_tasks: int = 0
    lost_nodes: tuple[int, ...] = ()
    backoff_s: float = 0.0

    def note(self, kind: FaultKind) -> None:
        self.injected[kind.value] = self.injected.get(kind.value, 0) + 1
        _FAULTS_INJECTED.inc(kind=kind.value)
        trace_instant(f"fault:{kind.value}", "fault")

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def to_dict(self) -> dict:
        """JSON-safe representation (what the service snapshots carry)."""
        return {
            "injected": dict(sorted(self.injected.items())),
            "task_retries": self.task_retries,
            "speculative_tasks": self.speculative_tasks,
            "rescheduled_tasks": self.rescheduled_tasks,
            "lost_nodes": list(self.lost_nodes),
            "backoff_s": round(self.backoff_s, 6),
        }


class FaultInjector:
    """Draws fault decisions for one workload run under one plan.

    Args:
        plan: The fault probabilities and retry budget.
        scope: Extra identity mixed into every draw (the testbed passes
            the workload name and the characterization attempt, so two
            workloads — or two retries of one workload — see independent
            fault patterns from the same plan).
    """

    def __init__(self, plan: FaultPlan, scope: object = None) -> None:
        self.plan = plan
        self.scope = scope
        self.stats = FaultStats()
        self._task_serials: dict[str, int] = {}
        self._lost: dict[int, frozenset[int]] = {}

    # -- keyed randomness -----------------------------------------------------

    def _draw(self, *key: object) -> float:
        rng = np.random.default_rng(
            _stable_hash((self.plan.seed, self.scope) + key)
        )
        return float(rng.random())

    def task_key(self, name: str) -> tuple[str, int]:
        """A stable identity for the next task labelled ``name``."""
        serial = self._task_serials.get(name, 0)
        self._task_serials[name] = serial + 1
        return (name, serial)

    # -- decisions ------------------------------------------------------------

    def task_fault(
        self, key: tuple[str, int], attempt: int, reads_hdfs: bool = False
    ) -> FaultKind | None:
        """The fault (if any) that kills this task attempt."""
        if reads_hdfs and self._draw("hdfs", key, attempt) < self.plan.hdfs_read:
            self.stats.note(FaultKind.HDFS_READ)
            return FaultKind.HDFS_READ
        if self._draw("crash", key, attempt) < self.plan.crash:
            self.stats.note(FaultKind.TASK_CRASH)
            return FaultKind.TASK_CRASH
        return None

    def is_straggler(self, key: tuple[str, int]) -> bool:
        """Whether this task's committed attempt runs slow (speculate)."""
        if self._draw("straggler", key) < self.plan.straggler:
            self.stats.note(FaultKind.STRAGGLER)
            self.stats.speculative_tasks += 1
            return True
        return False

    def lost_nodes(self, num_nodes: int) -> frozenset[int]:
        """The slaves this plan removes from a ``num_nodes`` cluster.

        At least one node always survives; with every node drawn lost,
        the lowest index is revived (a cluster with no slaves cannot
        re-schedule anything).
        """
        cached = self._lost.get(num_nodes)
        if cached is not None:
            return cached
        lost = {
            node
            for node in range(num_nodes)
            if self._draw("node-loss", node) < self.plan.node_loss
        }
        if len(lost) >= num_nodes:
            lost.discard(min(lost))
        result = frozenset(lost)
        self._lost[num_nodes] = result
        for _ in result:
            self.stats.note(FaultKind.NODE_LOSS)
        if result:
            _log.warning(
                "node loss injected",
                extra={"lost_nodes": sorted(result), "num_nodes": num_nodes},
            )
            flight.record(
                "node-loss", nodes=sorted(result), num_nodes=num_nodes
            )
        self.stats.lost_nodes = tuple(
            sorted(set(self.stats.lost_nodes) | result)
        )
        return result

    # -- scheduling -----------------------------------------------------------

    def _survivors(self, num_nodes: int) -> list[int]:
        lost = self.lost_nodes(num_nodes)
        return [node for node in range(num_nodes) if node not in lost]

    def schedule(self, preferred: int, num_nodes: int) -> int:
        """``preferred`` if its node survives, else a surviving node."""
        if num_nodes <= 0:
            return preferred
        lost = self.lost_nodes(num_nodes)
        if preferred not in lost:
            return preferred
        survivors = self._survivors(num_nodes)
        self.stats.rescheduled_tasks += 1
        return survivors[preferred % len(survivors)]

    def retry_worker(self, worker: int, attempt: int, num_nodes: int) -> int:
        """Where a failed attempt's retry runs (a surviving node)."""
        survivors = self._survivors(num_nodes) if num_nodes > 0 else [worker]
        return survivors[(worker + attempt) % len(survivors)]

    def speculative_worker(self, worker: int, num_nodes: int) -> int:
        """Where a straggler's speculative duplicate runs."""
        survivors = self._survivors(num_nodes) if num_nodes > 0 else [worker]
        others = [node for node in survivors if node != worker]
        if not others:
            return worker
        return others[worker % len(others)]

    # -- accounting -----------------------------------------------------------

    def note_retry(self, attempt: int) -> None:
        """Record one task re-execution and its simulated backoff."""
        self.stats.task_retries += 1
        self.stats.backoff_s += self.plan.backoff_s(attempt)


#: The ambient injector engines consult at task boundaries.
_ACTIVE: contextvars.ContextVar[FaultInjector | None] = contextvars.ContextVar(
    "repro_fault_injector", default=None
)


def current_injector() -> FaultInjector | None:
    """The active injector, or ``None`` outside any chaos context."""
    return _ACTIVE.get()


@contextlib.contextmanager
def fault_injection(injector: FaultInjector | None) -> Iterator[FaultInjector | None]:
    """Activate ``injector`` for the enclosed execution (``None`` = no-op)."""
    if injector is None:
        yield None
        return
    token = _ACTIVE.set(injector)
    try:
        yield injector
    finally:
        _ACTIVE.reset(token)
