"""Fault plans: what to inject, how often, and how hard recovery may try.

A :class:`FaultPlan` is declarative and immutable — it carries no RNG
state.  All randomness lives in the
:class:`~repro.faults.injector.FaultInjector`, which keys every draw on
the plan seed plus the task identity, so the *same plan* replayed over
the *same workload* injects the same faults regardless of scheduling.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, fields

from repro.errors import ConfigurationError

__all__ = ["FaultKind", "FaultPlan", "parse_fault_spec"]


class FaultKind(enum.Enum):
    """The injectable fault categories (Hadoop 1.x failure modes)."""

    TASK_CRASH = "crash"  # task attempt dies; re-executed up to the budget
    STRAGGLER = "straggler"  # task runs slow; speculatively duplicated
    NODE_LOSS = "node-loss"  # a slave drops out; its tasks re-scheduled
    HDFS_READ = "hdfs-read"  # transient block-read error; retried


@dataclass(frozen=True)
class FaultPlan:
    """Seedable fault probabilities plus the recovery budget.

    Attributes:
        seed: Master seed every injection decision is keyed on.
        crash: Per-attempt probability a task attempt crashes.
        straggler: Per-task probability the first attempt straggles
            (triggering speculative re-execution).
        node_loss: Per-slave probability the node is lost for the run
            (at least one slave always survives).
        hdfs_read: Per-attempt probability a block-reading task hits a
            transient HDFS read error.
        max_task_attempts: Attempt budget per task (Hadoop's
            ``mapred.map.max.attempts`` analogue); exhausting it fails
            the job with :class:`~repro.errors.StackExecutionError`.
        backoff_base_s: Simulated backoff before the first retry.
        backoff_factor: Exponential growth of the backoff per retry.
    """

    seed: int = 0
    crash: float = 0.0
    straggler: float = 0.0
    node_loss: float = 0.0
    hdfs_read: float = 0.0
    max_task_attempts: int = 4
    backoff_base_s: float = 0.2
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        for name in ("crash", "straggler", "node_loss", "hdfs_read"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"fault probability {name}={value} outside [0, 1]"
                )
        if self.max_task_attempts < 1:
            raise ConfigurationError("max_task_attempts must be at least 1")
        if self.backoff_base_s < 0.0 or self.backoff_factor < 1.0:
            raise ConfigurationError(
                "backoff_base_s must be >= 0 and backoff_factor >= 1"
            )

    def any_faults(self) -> bool:
        """Whether this plan can inject anything at all."""
        return any(
            getattr(self, name) > 0.0
            for name in ("crash", "straggler", "node_loss", "hdfs_read")
        )

    def backoff_s(self, attempt: int) -> float:
        """Simulated backoff before retrying after failed ``attempt``."""
        return self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1)

    def spec(self) -> str:
        """Canonical spec string (inverse of :func:`parse_fault_spec`)."""
        return (
            f"crash={self.crash},straggler={self.straggler},"
            f"node-loss={self.node_loss},hdfs={self.hdfs_read},"
            f"attempts={self.max_task_attempts},seed={self.seed}"
        )

    def token(self) -> str:
        """A short, store-key-safe digest of the full plan."""
        raw = "|".join(f"{f.name}={getattr(self, f.name)}" for f in fields(self))
        return f"faults-{hashlib.sha256(raw.encode('utf-8')).hexdigest()[:10]}"

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Accepted spec keys (with aliases) → FaultPlan field.
_SPEC_KEYS = {
    "crash": "crash",
    "straggler": "straggler",
    "node-loss": "node_loss",
    "node_loss": "node_loss",
    "hdfs": "hdfs_read",
    "hdfs-read": "hdfs_read",
    "hdfs_read": "hdfs_read",
    "attempts": "max_task_attempts",
    "retries": "max_task_attempts",
    "backoff": "backoff_base_s",
    "seed": "seed",
}

_INT_FIELDS = {"max_task_attempts", "seed"}


def parse_fault_spec(spec: str, seed: int | None = None) -> FaultPlan:
    """Parse a CLI fault spec like ``"crash=0.1,straggler=0.2,hdfs=0.05"``.

    Args:
        spec: Comma-separated ``key=value`` pairs.  Keys: ``crash``,
            ``straggler``, ``node-loss``, ``hdfs`` (probabilities),
            ``attempts``/``retries`` (task attempt budget), ``backoff``
            (base seconds), ``seed``.
        seed: Overrides the plan seed (the CLI's ``--fault-seed``).

    Raises:
        ConfigurationError: On unknown keys or malformed values.
    """
    values: dict[str, float | int] = {}
    for part in filter(None, (p.strip() for p in spec.split(","))):
        key, sep, raw = part.partition("=")
        field = _SPEC_KEYS.get(key.strip().lower())
        if not sep or field is None:
            known = ", ".join(sorted(set(_SPEC_KEYS)))
            raise ConfigurationError(
                f"bad fault spec element {part!r} (known keys: {known})"
            )
        try:
            values[field] = (
                int(raw.strip()) if field in _INT_FIELDS else float(raw.strip())
            )
        except ValueError as exc:
            raise ConfigurationError(f"bad fault spec value {part!r}") from exc
    if seed is not None:
        values["seed"] = seed
    return FaultPlan(**values)
