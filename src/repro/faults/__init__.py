"""Deterministic fault injection and Hadoop-1.x-style recovery.

Real Hadoop 1.x only yields stable measurements because the framework
masks failures: failed tasks are re-executed (bounded attempts with
backoff), stragglers are speculatively duplicated (first finisher wins),
and a lost slave's tasks are re-scheduled onto survivors.  This package
gives the miniature stacks the same machinery:

* :class:`~repro.faults.plan.FaultPlan` — a seedable, declarative plan
  (per-kind probabilities + retry budget) parseable from a CLI spec
  string (``crash=0.1,straggler=0.2,hdfs=0.05,node-loss=0.25``).
* :class:`~repro.faults.injector.FaultInjector` — draws every fault
  decision from an RNG keyed by ``(seed, task, attempt)``, so a chaos
  run is exactly reproducible and independent of execution order.
* :func:`~repro.faults.recovery.run_task` — the task boundary both
  engines (:mod:`repro.stacks.mapreduce`, :mod:`repro.stacks.rdd`) run
  their work through.  Failed and speculative-loser attempts land in the
  trace *tagged*; only the committed attempt feeds instrumentation, so
  a recovered run's metric matrix is bit-identical to a fault-free run.
"""

from repro.faults.injector import (
    FaultInjector,
    FaultStats,
    current_injector,
    fault_injection,
)
from repro.faults.plan import FaultKind, FaultPlan, parse_fault_spec
from repro.faults.recovery import TAG_SPECULATIVE, TaskRecorder, run_task

__all__ = [
    "FaultKind",
    "FaultPlan",
    "parse_fault_spec",
    "FaultInjector",
    "FaultStats",
    "current_injector",
    "fault_injection",
    "run_task",
    "TaskRecorder",
    "TAG_SPECULATIVE",
]
