"""The recovery machinery: the task boundary both engines execute through.

:func:`run_task` wraps one logical task (a map task over a block, a
reduce task over a partition, one Spark partition computation) and gives
it Hadoop-1.x failure semantics under the ambient
:class:`~repro.faults.injector.FaultInjector`:

* **Bounded re-execution** — a crashed (or HDFS-read-faulted) attempt's
  phase records are committed to the trace *tagged* ``failed:<kind>``,
  exponential backoff is accounted, and the attempt re-runs on a
  surviving node.  Exhausting the budget raises
  :class:`~repro.errors.StackExecutionError`, exactly like a Hadoop job
  failing after ``mapred.map.max.attempts``.
* **Speculative execution** — a straggling task's slow attempt is tagged
  ``speculative`` (the loser) and a duplicate runs on another node; the
  duplicate's records and result are the ones committed (first finisher
  wins).
* **Node-loss re-scheduling** — tasks preferring a lost node run on a
  survivor instead.

Task bodies must be deterministic and side-effect-free (they may be
executed more than once); they receive a :class:`TaskRecorder` and the
worker slot actually assigned, and return the task's result.  Records
with an empty tag are the *committed* execution — identical to a
fault-free run's records in every field the measurement pipeline reads
(only the worker slot can move, to a survivor) — which is why the
instrumentation layer consumes only committed records and a recovered
characterization is bit-identical to an undisturbed one.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.errors import StackExecutionError
from repro.faults.injector import current_injector

if TYPE_CHECKING:  # imported lazily at runtime: the stacks package
    # imports this module from its engines, so a module-level import
    # here would be circular.
    from repro.stacks.base import ExecutionTrace, PhaseKind, PhaseRecord

__all__ = ["TAG_SPECULATIVE", "TaskRecorder", "run_task"]

#: Tag on the losing (slow) attempt of a speculatively-executed task.
TAG_SPECULATIVE = "speculative"


class TaskRecorder:
    """Collects one attempt's phase records before they are committed.

    Mirrors :meth:`~repro.stacks.base.ExecutionTrace.emit` so task
    bodies are written exactly like direct trace emission.
    """

    def __init__(self) -> None:
        self.records: list[PhaseRecord] = []

    def emit(
        self,
        kind: PhaseKind,
        name: str,
        worker: int,
        records_in: int,
        bytes_in: int,
        records_out: int = 0,
        bytes_out: int = 0,
        **details: float,
    ) -> None:
        from repro.stacks.base import PhaseRecord

        self.records.append(
            PhaseRecord(
                kind=kind,
                name=name,
                worker=worker,
                records_in=records_in,
                bytes_in=bytes_in,
                records_out=records_out,
                bytes_out=bytes_out,
                details=dict(details),
            )
        )


TaskBody = Callable[[TaskRecorder, int], object]


def run_task(
    trace: ExecutionTrace,
    name: str,
    worker: int,
    body: TaskBody,
    *,
    reads_hdfs: bool = False,
    num_nodes: int = 0,
) -> object:
    """Execute one logical task with fault injection and recovery.

    Args:
        trace: The trace committed records (and tagged attempts) land in.
        name: Task label, e.g. ``"map:wordcount"`` (fault decisions are
            keyed per label + occurrence serial).
        worker: The preferred worker slot (data locality).
        body: ``(recorder, worker) -> result``; deterministic and free of
            external side effects, since recovery may run it again.
        reads_hdfs: Whether the task reads HDFS blocks (eligible for
            transient read faults).
        num_nodes: Cluster size for re-scheduling decisions.

    Raises:
        StackExecutionError: When the task's attempt budget is exhausted.
    """
    injector = current_injector()
    if injector is None or not injector.plan.any_faults():
        recorder = TaskRecorder()
        result = body(recorder, worker)
        for record in recorder.records:
            trace.add(record)
        return result

    key = injector.task_key(name)
    worker = injector.schedule(worker, num_nodes)
    attempt = 1
    while True:
        recorder = TaskRecorder()
        result = body(recorder, worker)
        fault = injector.task_fault(key, attempt, reads_hdfs=reads_hdfs)
        if fault is None:
            break
        for record in recorder.records:
            trace.add(replace(record, tag=f"failed:{fault.value}"))
        if attempt >= injector.plan.max_task_attempts:
            raise StackExecutionError(
                f"task {name}#{key[1]}: {fault.value} persisted through "
                f"{attempt} attempts (retry budget exhausted)"
            )
        injector.note_retry(attempt)
        worker = injector.retry_worker(worker, attempt, num_nodes)
        attempt += 1

    if injector.is_straggler(key):
        # The successful-but-slow attempt loses to its speculative twin.
        for record in recorder.records:
            trace.add(replace(record, tag=TAG_SPECULATIVE))
        backup = injector.speculative_worker(worker, num_nodes)
        recorder = TaskRecorder()
        result = body(recorder, backup)

    for record in recorder.records:
        trace.add(record)
    return result
