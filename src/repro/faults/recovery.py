"""The recovery machinery: the task boundary both engines execute through.

:func:`run_task` wraps one logical task (a map task over a block, a
reduce task over a partition, one Spark partition computation) and gives
it Hadoop-1.x failure semantics under the ambient
:class:`~repro.faults.injector.FaultInjector`:

* **Bounded re-execution** — a crashed (or HDFS-read-faulted) attempt's
  phase records are committed to the trace *tagged* ``failed:<kind>``,
  exponential backoff is accounted, and the attempt re-runs on a
  surviving node.  Exhausting the budget raises
  :class:`~repro.errors.StackExecutionError`, exactly like a Hadoop job
  failing after ``mapred.map.max.attempts``.
* **Speculative execution** — a straggling task's slow attempt is tagged
  ``speculative`` (the loser) and a duplicate runs on another node; the
  duplicate's records and result are the ones committed (first finisher
  wins).
* **Node-loss re-scheduling** — tasks preferring a lost node run on a
  survivor instead.

Task bodies must be deterministic and side-effect-free (they may be
executed more than once); they receive a :class:`TaskRecorder` and the
worker slot actually assigned, and return the task's result.  Records
with an empty tag are the *committed* execution — identical to a
fault-free run's records in every field the measurement pipeline reads
(only the worker slot can move, to a survivor) — which is why the
instrumentation layer consumes only committed records and a recovered
characterization is bit-identical to an undisturbed one.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.errors import StackExecutionError
from repro.faults.injector import current_injector
from repro.obs import flight
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.timeline import observe_fault, observe_task
from repro.obs.trace import span as obs_span

if TYPE_CHECKING:  # imported lazily at runtime: the stacks package
    # imports this module from its engines, so a module-level import
    # here would be circular.
    from repro.stacks.base import ExecutionTrace, PhaseKind, PhaseRecord

__all__ = ["TAG_SPECULATIVE", "TaskRecorder", "run_task"]

#: Tag on the losing (slow) attempt of a speculatively-executed task.
TAG_SPECULATIVE = "speculative"

_log = get_logger("repro.faults.recovery")

_TASKS_STARTED = REGISTRY.counter(
    "repro_tasks_started_total",
    "Logical tasks entering the fault-recovery boundary",
)
_TASK_RETRIES = REGISTRY.counter(
    "repro_task_retries_total",
    "Task attempts re-executed after an injected fault",
)
_TASKS_FAILED = REGISTRY.counter(
    "repro_tasks_failed_total",
    "Tasks whose per-task retry budget was exhausted",
)
_TASKS_SPECULATED = REGISTRY.counter(
    "repro_speculative_tasks_total",
    "Straggling tasks that ran a winning speculative duplicate",
)
#: Same series the trace layer increments — registration is idempotent,
#: so both modules share one counter without an import cycle.
_PHASE_RECORDS = REGISTRY.counter(
    "repro_stack_phase_records_total",
    "Phase records emitted by the stack engines, by phase kind",
    ("kind",),
)


class TaskRecorder:
    """Collects one attempt's phase records before they are committed.

    Mirrors :meth:`~repro.stacks.base.ExecutionTrace.emit` so task
    bodies are written exactly like direct trace emission.
    """

    def __init__(self) -> None:
        self.records: list[PhaseRecord] = []

    def emit(
        self,
        kind: PhaseKind,
        name: str,
        worker: int,
        records_in: int,
        bytes_in: int,
        records_out: int = 0,
        bytes_out: int = 0,
        **details: float,
    ) -> None:
        from repro.stacks.base import PhaseRecord

        _PHASE_RECORDS.inc(kind=kind.value)
        self.records.append(
            PhaseRecord(
                kind=kind,
                name=name,
                worker=worker,
                records_in=records_in,
                bytes_in=bytes_in,
                records_out=records_out,
                bytes_out=bytes_out,
                details=dict(details),
            )
        )


TaskBody = Callable[[TaskRecorder, int], object]


def run_task(
    trace: ExecutionTrace,
    name: str,
    worker: int,
    body: TaskBody,
    *,
    reads_hdfs: bool = False,
    num_nodes: int = 0,
) -> object:
    """Execute one logical task with fault injection and recovery.

    Args:
        trace: The trace committed records (and tagged attempts) land in.
        name: Task label, e.g. ``"map:wordcount"`` (fault decisions are
            keyed per label + occurrence serial).
        worker: The preferred worker slot (data locality).
        body: ``(recorder, worker) -> result``; deterministic and free of
            external side effects, since recovery may run it again.
        reads_hdfs: Whether the task reads HDFS blocks (eligible for
            transient read faults).
        num_nodes: Cluster size for re-scheduling decisions.

    Raises:
        StackExecutionError: When the task's attempt budget is exhausted.
    """
    injector = current_injector()
    _TASKS_STARTED.inc()
    observe_task("start")
    if injector is None or not injector.plan.any_faults():
        recorder = TaskRecorder()
        with obs_span(f"task:{name}", "task", worker=worker):
            result = body(recorder, worker)
        for record in recorder.records:
            trace.add(record)
        observe_task("done")
        return result

    key = injector.task_key(name)
    worker = injector.schedule(worker, num_nodes)
    attempt = 1
    while True:
        recorder = TaskRecorder()
        with obs_span(f"task:{name}", "task", worker=worker, attempt=attempt):
            result = body(recorder, worker)
        fault = injector.task_fault(key, attempt, reads_hdfs=reads_hdfs)
        if fault is None:
            break
        observe_fault(fault.value)
        for record in recorder.records:
            trace.add(replace(record, tag=f"failed:{fault.value}"))
        flight.record(
            "task-fault",
            task=name,
            serial=key[1],
            attempt=attempt,
            fault=fault.value,
            worker=worker,
        )
        if attempt >= injector.plan.max_task_attempts:
            _TASKS_FAILED.inc()
            _log.error(
                "task retry budget exhausted",
                extra={"task": name, "serial": key[1], "attempts": attempt,
                       "fault": fault.value},
            )
            flight.record(
                "task-failed", task=name, serial=key[1], attempts=attempt,
                fault=fault.value,
            )
            raise StackExecutionError(
                f"task {name}#{key[1]}: {fault.value} persisted through "
                f"{attempt} attempts (retry budget exhausted)"
            )
        injector.note_retry(attempt)
        _TASK_RETRIES.inc()
        observe_task("retry")
        worker = injector.retry_worker(worker, attempt, num_nodes)
        _log.warning(
            "task attempt faulted, retrying",
            extra={"task": name, "serial": key[1], "attempt": attempt,
                   "fault": fault.value, "retry_worker": worker},
        )
        attempt += 1

    if injector.is_straggler(key):
        # The successful-but-slow attempt loses to its speculative twin.
        for record in recorder.records:
            trace.add(replace(record, tag=TAG_SPECULATIVE))
        backup = injector.speculative_worker(worker, num_nodes)
        _TASKS_SPECULATED.inc()
        observe_task("speculate")
        _log.info(
            "straggler speculated",
            extra={"task": name, "serial": key[1], "slow_worker": worker,
                   "backup_worker": backup},
        )
        flight.record(
            "task-speculated", task=name, serial=key[1], slow_worker=worker,
            backup_worker=backup,
        )
        recorder = TaskRecorder()
        with obs_span(
            f"task:{name}", "task", worker=backup, speculative=True
        ):
            result = body(recorder, backup)

    for record in recorder.records:
        trace.add(record)
    observe_task("done")
    return result
