"""Machine-learning workloads of Table I: Naive Bayes, K-means, PageRank.

Each algorithm is implemented for real on both stacks — the Hadoop
versions as (chains of) MapReduce jobs with driver-side model state, the
Spark versions over cached RDDs — and self-checks convergence /
accuracy before returning its trace.
"""

from __future__ import annotations

import math

from repro.datagen import Bdgs
from repro.stacks.hadoop import HadoopStack
from repro.stacks.hdfs import Hdfs
from repro.stacks.instrument import CharacterHints
from repro.stacks.mapreduce import MapReduceJob
from repro.stacks.spark import SparkEngine
from repro.workloads.base import (
    Category,
    DataType,
    RunContext,
    StackFamily,
    Workload,
    WorkloadRun,
)

__all__ = ["ML_WORKLOADS"]

_BAYES_DOCS = 700
_BAYES_CLASSES = ("sports", "finance", "science", "travel")
_KMEANS_POINTS = 1600
_KMEANS_K = 5
_KMEANS_ITERATIONS = 4
_PAGERANK_VERTICES = 260
_PAGERANK_ITERATIONS = 4
_DAMPING = 0.85


# ---------------------------------------------------------------------------
# Naive Bayes (84 GB semi-structured text)
# ---------------------------------------------------------------------------


def _bayes_model(counts: dict) -> tuple[dict, dict, set]:
    """Split raw ((label, word), n) counts into priors and likelihoods."""
    label_totals: dict[str, int] = {}
    word_counts: dict[tuple[str, str], int] = {}
    vocabulary: set[str] = set()
    for (label, word), count in counts.items():
        if word == "__doc__":
            label_totals[label] = label_totals.get(label, 0) + count
        else:
            word_counts[(label, word)] = count
            vocabulary.add(word)
    return label_totals, word_counts, vocabulary


def _bayes_classify(
    words: tuple[str, ...],
    label_totals: dict,
    word_counts: dict,
    vocabulary: set,
) -> str:
    total_docs = sum(label_totals.values())
    best_label, best_score = "", -math.inf
    for label, doc_count in label_totals.items():
        label_words = sum(
            count for (l, _w), count in word_counts.items() if l == label
        )
        score = math.log(doc_count / total_docs)
        for word in words:
            count = word_counts.get((label, word), 0)
            score += math.log((count + 1) / (label_words + len(vocabulary)))
        if score > best_score:
            best_label, best_score = label, score
    return best_label


def _bayes_check(counts: dict, test_docs) -> dict[str, float]:
    label_totals, word_counts, vocabulary = _bayes_model(counts)
    correct = sum(
        1
        for doc in test_docs
        if _bayes_classify(doc.words, label_totals, word_counts, vocabulary) == doc.label
    )
    return {"accuracy": correct / len(test_docs)}


def _bayes_pairs(doc) -> list[tuple]:
    pairs = [((doc.label, word), 1) for word in doc.words]
    pairs.append(((doc.label, "__doc__"), 1))
    return pairs


def _bayes_hadoop(context: RunContext) -> WorkloadRun:
    bdgs = Bdgs(seed=context.seed)
    docs = bdgs.labeled_documents(context.records(_BAYES_DOCS), classes=_BAYES_CLASSES)
    train, test = docs[: len(docs) * 4 // 5], docs[len(docs) * 4 // 5 :]
    stack = HadoopStack()
    stack.hdfs.put("/input/bayes", train)
    trace = stack.new_trace("H-Bayes")
    job = MapReduceJob(
        name="bayes-train",
        mapper=_bayes_pairs,
        reducer=lambda key, counts: [(key, sum(counts))],
        combiner=lambda key, counts: [(key, sum(counts))],
    )
    output = dict(stack.run(job, "/input/bayes", trace))
    checks = _bayes_check(output, test)
    return WorkloadRun(trace=trace, output_records=len(output), checks=checks)


def _bayes_spark(context: RunContext) -> WorkloadRun:
    bdgs = Bdgs(seed=context.seed)
    docs = bdgs.labeled_documents(context.records(_BAYES_DOCS), classes=_BAYES_CLASSES)
    train, test = docs[: len(docs) * 4 // 5], docs[len(docs) * 4 // 5 :]
    hdfs = Hdfs()
    hdfs.put("/input/bayes", train)
    engine = SparkEngine()
    trace = engine.new_trace("S-Bayes")
    output = dict(
        engine.from_hdfs(hdfs, "/input/bayes")
        .flat_map(_bayes_pairs)
        .reduce_by_key(lambda a, b: a + b)
        .collect(trace)
    )
    checks = _bayes_check(output, test)
    return WorkloadRun(trace=trace, output_records=len(output), checks=checks)


# ---------------------------------------------------------------------------
# K-means (44 GB vectors)
# ---------------------------------------------------------------------------


def _nearest(point: tuple, centers: list[tuple]) -> int:
    best_index, best_distance = 0, math.inf
    for index, center in enumerate(centers):
        distance = sum((p - c) ** 2 for p, c in zip(point, center))
        if distance < best_distance:
            best_index, best_distance = index, distance
    return best_index


def _inertia(points: list[tuple], centers: list[tuple]) -> float:
    return sum(
        min(sum((p - c) ** 2 for p, c in zip(point, center)) for center in centers)
        for point in points
    )


def _vector_add(a: tuple, b: tuple) -> tuple:
    return tuple(x + y for x, y in zip(a, b))


def _kmeans_hadoop(context: RunContext) -> WorkloadRun:
    bdgs = Bdgs(seed=context.seed)
    cloud = bdgs.points(context.records(_KMEANS_POINTS), clusters=_KMEANS_K)
    points = [tuple(float(x) for x in row) for row in cloud.points]
    stack = HadoopStack()
    stack.hdfs.put("/input/kmeans", points)
    trace = stack.new_trace("H-Kmeans")

    centers = points[:_KMEANS_K]
    initial_inertia = _inertia(points, centers)
    for iteration in range(_KMEANS_ITERATIONS):
        job = MapReduceJob(
            name=f"kmeans-{iteration}",
            mapper=lambda point, cs=tuple(centers): [
                (_nearest(point, list(cs)), (point, 1))
            ],
            combiner=lambda idx, partials: [
                (
                    idx,
                    (
                        tuple(
                            sum(p[0][d] for p in partials)
                            for d in range(len(partials[0][0]))
                        ),
                        sum(p[1] for p in partials),
                    ),
                )
            ],
            reducer=lambda idx, partials: [
                (
                    idx,
                    tuple(
                        sum(p[0][d] for p in partials) / sum(p[1] for p in partials)
                        for d in range(len(partials[0][0]))
                    ),
                )
            ],
        )
        new_centers = dict(stack.run(job, "/input/kmeans", trace))
        centers = [new_centers.get(i, centers[i]) for i in range(_KMEANS_K)]
    final_inertia = _inertia(points, centers)
    return WorkloadRun(
        trace=trace,
        output_records=_KMEANS_K,
        checks={
            "inertia_decreased": float(final_inertia < initial_inertia),
            "final_inertia": final_inertia,
        },
    )


def _kmeans_spark(context: RunContext) -> WorkloadRun:
    bdgs = Bdgs(seed=context.seed)
    cloud = bdgs.points(context.records(_KMEANS_POINTS), clusters=_KMEANS_K)
    points = [tuple(float(x) for x in row) for row in cloud.points]
    hdfs = Hdfs()
    hdfs.put("/input/kmeans", points)
    engine = SparkEngine()
    trace = engine.new_trace("S-Kmeans")
    rdd = engine.from_hdfs(hdfs, "/input/kmeans").cache()

    centers = points[:_KMEANS_K]
    initial_inertia = _inertia(points, centers)
    for _iteration in range(_KMEANS_ITERATIONS):
        assigned = rdd.map(
            lambda point, cs=tuple(centers): (_nearest(point, list(cs)), (point, 1))
        )
        sums = assigned.reduce_by_key(
            lambda a, b: (_vector_add(a[0], b[0]), a[1] + b[1])
        ).collect(trace)
        new_centers = {
            idx: tuple(x / count for x in vector_sum)
            for idx, (vector_sum, count) in sums
        }
        centers = [new_centers.get(i, centers[i]) for i in range(_KMEANS_K)]
    final_inertia = _inertia(points, centers)
    return WorkloadRun(
        trace=trace,
        output_records=_KMEANS_K,
        checks={
            "inertia_decreased": float(final_inertia < initial_inertia),
            "final_inertia": final_inertia,
        },
    )


# ---------------------------------------------------------------------------
# PageRank (2^24-vertex unstructured graph)
# ---------------------------------------------------------------------------


def _pagerank_hadoop(context: RunContext) -> WorkloadRun:
    bdgs = Bdgs(seed=context.seed)
    graph = bdgs.graph(context.records(_PAGERANK_VERTICES))
    adjacency = graph.adjacency()
    n = graph.num_vertices
    records = [
        (vertex, (tuple(adjacency.get(vertex, ())), 1.0 / n)) for vertex in range(n)
    ]
    stack = HadoopStack()
    stack.hdfs.put("/input/pagerank", records)
    trace = stack.new_trace("H-PageRank")

    def mapper(record):
        vertex, (links, rank) = record
        pairs = [(vertex, ("A", links))]
        if links:
            share = rank / len(links)
            pairs.extend((dst, ("R", share)) for dst in links)
        return pairs

    def reducer(vertex, values, n=n):
        links: tuple = ()
        incoming = 0.0
        for tag, payload in values:
            if tag == "A":
                links = payload
            else:
                incoming += payload
        rank = (1.0 - _DAMPING) / n + _DAMPING * incoming
        return [(vertex, (links, rank))]

    jobs = [
        MapReduceJob(name=f"pagerank-{i}", mapper=mapper, reducer=reducer)
        for i in range(_PAGERANK_ITERATIONS)
    ]
    output = stack.run_chain(jobs, "/input/pagerank", trace, workload="pagerank")
    ranks = {vertex: rank for vertex, (_links, rank) in output}
    total = sum(ranks.values())
    return WorkloadRun(
        trace=trace,
        output_records=len(ranks),
        checks={"rank_mass": total, "all_vertices_ranked": float(len(ranks) == n)},
    )


def _pagerank_spark(context: RunContext) -> WorkloadRun:
    bdgs = Bdgs(seed=context.seed)
    graph = bdgs.graph(context.records(_PAGERANK_VERTICES))
    adjacency = graph.adjacency()
    n = graph.num_vertices
    link_records = [(vertex, tuple(adjacency.get(vertex, ()))) for vertex in range(n)]
    hdfs = Hdfs()
    hdfs.put("/input/pagerank", link_records)
    engine = SparkEngine()
    trace = engine.new_trace("S-PageRank")
    links = engine.from_hdfs(hdfs, "/input/pagerank").cache()
    ranks = links.map(lambda pair, n=n: (pair[0], 1.0 / n))

    for _iteration in range(_PAGERANK_ITERATIONS):
        contributions = links.join(ranks).flat_map(
            lambda kv: [
                (dst, kv[1][1] / len(kv[1][0])) for dst in kv[1][0]
            ]
            if kv[1][0]
            else []
        )
        # Vertices with no in-links still need a rank row (damping floor).
        zeros = links.map(lambda pair: (pair[0], 0.0))
        ranks = contributions.union(zeros).reduce_by_key(lambda a, b: a + b).map(
            lambda kv, n=n: (kv[0], (1.0 - _DAMPING) / n + _DAMPING * kv[1])
        )
    final = dict(ranks.collect(trace))
    total = sum(final.values())
    return WorkloadRun(
        trace=trace,
        output_records=len(final),
        checks={"rank_mass": total, "all_vertices_ranked": float(len(final) == n)},
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BAYES_HINTS = CharacterHints(fp_x87=0.02, branch_entropy_shift=0.05)
_KMEANS_HINTS = CharacterHints(fp_sse=0.2, working_set_factor=1.6, branch_entropy_shift=-0.05)
_PAGERANK_HINTS = CharacterHints(fp_sse=0.06, working_set_factor=1.4)

ML_WORKLOADS: tuple[Workload, ...] = (
    Workload(
        algorithm="Bayes",
        family=StackFamily.HADOOP,
        category=Category.OFFLINE_ANALYTICS,
        data_type=DataType.SEMI_STRUCTURED,
        declared_size="84 GB",
        declared_bytes=84 * (1 << 30),
        runner=_bayes_hadoop,
        hints=_BAYES_HINTS,
    ),
    Workload(
        algorithm="Bayes",
        family=StackFamily.SPARK,
        category=Category.OFFLINE_ANALYTICS,
        data_type=DataType.SEMI_STRUCTURED,
        declared_size="84 GB",
        declared_bytes=84 * (1 << 30),
        runner=_bayes_spark,
        hints=_BAYES_HINTS,
    ),
    Workload(
        algorithm="Kmeans",
        family=StackFamily.HADOOP,
        category=Category.OFFLINE_ANALYTICS,
        data_type=DataType.UNSTRUCTURED,
        declared_size="44 GB",
        declared_bytes=44 * (1 << 30),
        runner=_kmeans_hadoop,
        hints=_KMEANS_HINTS,
    ),
    Workload(
        algorithm="Kmeans",
        family=StackFamily.SPARK,
        category=Category.OFFLINE_ANALYTICS,
        data_type=DataType.UNSTRUCTURED,
        declared_size="44 GB",
        declared_bytes=44 * (1 << 30),
        runner=_kmeans_spark,
        hints=_KMEANS_HINTS,
    ),
    Workload(
        algorithm="PageRank",
        family=StackFamily.HADOOP,
        category=Category.OFFLINE_ANALYTICS,
        data_type=DataType.UNSTRUCTURED,
        declared_size="2^24 vertices",
        declared_bytes=(1 << 24) * 100,
        runner=_pagerank_hadoop,
        hints=_PAGERANK_HINTS,
    ),
    Workload(
        algorithm="PageRank",
        family=StackFamily.SPARK,
        category=Category.OFFLINE_ANALYTICS,
        data_type=DataType.UNSTRUCTURED,
        declared_size="2^24 vertices",
        declared_bytes=(1 << 24) * 100,
        runner=_pagerank_spark,
        hints=_PAGERANK_HINTS,
    ),
)
