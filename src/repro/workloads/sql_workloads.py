"""Interactive-analytics workloads of Table I: the ten SQL operators.

Each workload builds its logical plan over the BDGS e-commerce tables and
runs it through Hive (→ MapReduce jobs, the ``H-`` variant) or Shark
(→ RDD lineage, the ``S-`` variant).  Every run is verified against the
reference interpreter before the trace is returned.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable

from repro.datagen import Bdgs
from repro.stacks.hive import HiveStack
from repro.stacks.instrument import CharacterHints
from repro.stacks.shark import SharkStack
from repro.stacks.sql.interpreter import execute
from repro.stacks.sql.plan import (
    AggFunc,
    Aggregate,
    AggSpec,
    CompareOp,
    Comparison,
    CrossProduct,
    Difference,
    Filter,
    Join,
    OrderBy,
    PlanNode,
    Project,
    Scan,
    Union,
)
from repro.stacks.sql.schema import Relation, Schema
from repro.workloads.base import (
    Category,
    DataType,
    RunContext,
    StackFamily,
    Workload,
    WorkloadRun,
)

__all__ = ["SQL_WORKLOADS", "build_tables", "QUERIES"]

_ITEM_ROWS = 2200
_ORDER_ROWS = 700
_CROSS_SIDE = 90  # cross products square their input; keep sides modest

ITEM_SCHEMA = Schema(("item_id", "order_id", "goods_id", "category", "quantity", "price"))
ORDER_SCHEMA = Schema(("order_id", "buyer_id", "date"))


def build_tables(context: RunContext) -> dict[str, Relation]:
    """The e-commerce warehouse: ORDER, ORDER_ITEM and a second item
    table (overlapping rows) for Union/Difference workloads."""
    bdgs = Bdgs(seed=context.seed)
    n_orders = context.records(_ORDER_ROWS)
    n_items = context.records(_ITEM_ROWS)
    orders = bdgs.orders(n_orders)
    items = bdgs.order_items(n_items, num_orders=n_orders)
    # item_b shares a prefix of item rows (overlap) plus fresh rows.
    overlap = [row for row in items[: n_items // 2]]
    fresh = bdgs.order_items(n_items // 2, num_orders=n_orders, id_offset=10_000_000)
    item_rows = [
        (i.item_id, i.order_id, i.goods_id, i.category, i.quantity, i.price)
        for i in items
    ]
    item_b_rows = [
        (i.item_id, i.order_id, i.goods_id, i.category, i.quantity, i.price)
        for i in overlap + fresh
    ]
    order_rows = [(o.order_id, o.buyer_id, o.date) for o in orders]
    return {
        "item": Relation("item", ITEM_SCHEMA, item_rows),
        "item_b": Relation("item_b", ITEM_SCHEMA, item_b_rows),
        "orders": Relation("orders", ORDER_SCHEMA, order_rows),
    }


def _cross_tables(context: RunContext) -> dict[str, Relation]:
    """Small single-column tables for the cross-product workload."""
    bdgs = Bdgs(seed=context.seed)
    side = context.records(_CROSS_SIDE)
    orders = bdgs.orders(side)
    items = bdgs.order_items(side, num_orders=side)
    return {
        "order_ids": Relation(
            "order_ids", Schema(("order_id",)), [(o.order_id,) for o in orders]
        ),
        "goods_ids": Relation(
            "goods_ids", Schema(("goods_id",)), [(i.goods_id,) for i in items]
        ),
    }


#: Query catalog: workload name -> (plan builder, table builder, ordered?).
QUERIES: dict[str, tuple[Callable[[], PlanNode], Callable[[RunContext], dict], bool]] = {
    "Projection": (
        lambda: Project(Scan("item"), ("order_id", "goods_id")),
        build_tables,
        False,
    ),
    "Filter": (
        lambda: Filter(Scan("item"), (Comparison("category", CompareOp.EQ, "books"),)),
        build_tables,
        False,
    ),
    "OrderBy": (
        lambda: OrderBy(Scan("item"), ("price", "item_id")),
        build_tables,
        True,
    ),
    "CrossProduct": (
        lambda: CrossProduct(Scan("order_ids"), Scan("goods_ids")),
        _cross_tables,
        False,
    ),
    "Union": (
        lambda: Union(Scan("item"), Scan("item_b")),
        build_tables,
        False,
    ),
    "Difference": (
        lambda: Difference(Scan("item"), Scan("item_b")),
        build_tables,
        False,
    ),
    "Aggregation": (
        lambda: Aggregate(
            Scan("item"),
            ("goods_id",),
            (
                AggSpec(AggFunc.SUM, "price", "revenue"),
                AggSpec(AggFunc.COUNT, None, "n_items"),
            ),
        ),
        build_tables,
        False,
    ),
    "JoinQuery": (
        lambda: Join(Scan("orders"), Scan("item"), "order_id", "order_id"),
        build_tables,
        False,
    ),
    "AggQuery": (
        lambda: Aggregate(
            Filter(Scan("item"), (Comparison("quantity", CompareOp.GE, 2),)),
            ("category",),
            (
                AggSpec(AggFunc.AVG, "price", "avg_price"),
                AggSpec(AggFunc.MAX, "price", "max_price"),
            ),
        ),
        build_tables,
        False,
    ),
    "SelectQuery": (
        lambda: Project(
            Filter(Scan("item"), (Comparison("price", CompareOp.GT, 20.0),)),
            ("goods_id", "price"),
        ),
        build_tables,
        False,
    ),
}


def _run_sql(
    algorithm: str, family: StackFamily, context: RunContext
) -> WorkloadRun:
    plan_builder, table_builder, ordered = QUERIES[algorithm]
    tables = table_builder(context)
    plan = plan_builder()
    reference = execute(plan, tables)

    if family is StackFamily.HADOOP:
        stack = HiveStack()
        trace = stack.new_trace(f"H-{algorithm}")
    else:
        stack = SharkStack()
        trace = stack.new_trace(f"S-{algorithm}")
    for relation in tables.values():
        stack.create_table(relation)
    result = stack.run_query(plan, trace)

    if ordered:
        correct = result.rows == reference.rows
    else:
        correct = Counter(result.rows) == Counter(reference.rows)
    return WorkloadRun(
        trace=trace,
        output_records=len(result.rows),
        checks={"matches_reference": float(correct)},
    )


def _make_runner(algorithm: str, family: StackFamily):
    def runner(context: RunContext) -> WorkloadRun:
        return _run_sql(algorithm, family, context)

    return runner


#: Declared Table I problem sizes for the interactive workloads.
_DECLARED = {
    "Projection": "420 million records",
    "Filter": "420 million records",
    "OrderBy": "420 million records",
    "CrossProduct": "100 million records",
    "Union": "420 million records",
    "Difference": "100 million records",
    "Aggregation": "420 million records",
    "JoinQuery": "100 million records",
    "AggQuery": "420 million records",
    "SelectQuery": "420 million records",
}

#: Algorithm-character hints: scans are predictable; sorts/joins branchy.
_SQL_HINTS = {
    "Projection": CharacterHints(branch_entropy_shift=-0.05),
    "Filter": CharacterHints(branch_entropy_shift=0.04),
    "OrderBy": CharacterHints(branch_entropy_shift=0.12),
    "CrossProduct": CharacterHints(integer_shift=0.03),
    "Union": CharacterHints(branch_entropy_shift=-0.03),
    "Difference": CharacterHints(integer_shift=0.05, branch_entropy_shift=0.05),
    "Aggregation": CharacterHints(integer_shift=0.05, fp_sse=0.03),
    "JoinQuery": CharacterHints(integer_shift=0.06, branch_entropy_shift=0.06),
    "AggQuery": CharacterHints(integer_shift=0.04, fp_sse=0.05),
    "SelectQuery": CharacterHints(branch_entropy_shift=0.02),
}


#: ~100 bytes per e-commerce transaction record.
_BYTES_PER_RECORD = 100


def _declared_bytes(algorithm: str) -> int:
    millions = 100 if "100 million" in _DECLARED[algorithm] else 420
    return millions * 1_000_000 * _BYTES_PER_RECORD


SQL_WORKLOADS: tuple[Workload, ...] = tuple(
    Workload(
        algorithm=algorithm,
        family=family,
        category=Category.INTERACTIVE_ANALYTICS,
        data_type=DataType.STRUCTURED,
        declared_size=_DECLARED[algorithm],
        declared_bytes=_declared_bytes(algorithm),
        runner=_make_runner(algorithm, family),
        hints=_SQL_HINTS[algorithm],
    )
    for algorithm in QUERIES
    for family in (StackFamily.HADOOP, StackFamily.SPARK)
)
