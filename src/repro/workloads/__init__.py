"""The 32 BigDataBench workloads of Table I."""

from repro.workloads.base import (
    Category,
    DataType,
    RunContext,
    StackFamily,
    Workload,
    WorkloadRun,
)
from repro.workloads.extensions import EXTENSION_WORKLOADS
from repro.workloads.micro import GREP_PATTERN, MICRO_WORKLOADS
from repro.workloads.ml import ML_WORKLOADS
from repro.workloads.sql_workloads import QUERIES, SQL_WORKLOADS, build_tables
from repro.workloads.suite import (
    SUITE,
    hadoop_workloads,
    spark_workloads,
    workload_by_name,
    workload_names,
)

__all__ = [
    "Category",
    "DataType",
    "RunContext",
    "StackFamily",
    "Workload",
    "WorkloadRun",
    "EXTENSION_WORKLOADS",
    "GREP_PATTERN",
    "MICRO_WORKLOADS",
    "ML_WORKLOADS",
    "QUERIES",
    "SQL_WORKLOADS",
    "build_tables",
    "SUITE",
    "hadoop_workloads",
    "spark_workloads",
    "workload_by_name",
    "workload_names",
]
