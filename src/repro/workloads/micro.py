"""Micro-benchmarks of Table I: Sort, WordCount, Grep (Hadoop & Spark).

Every runner really computes its result and self-checks it (sortedness,
counts against an independent reference) before returning the trace.
"""

from __future__ import annotations

import bisect
from collections import Counter

from repro.datagen import Bdgs
from repro.stacks.hadoop import HadoopStack
from repro.stacks.instrument import CharacterHints
from repro.stacks.hdfs import Hdfs
from repro.stacks.mapreduce import MapReduceJob
from repro.stacks.spark import SparkEngine
from repro.workloads.base import (
    Category,
    DataType,
    RunContext,
    StackFamily,
    Workload,
    WorkloadRun,
)

__all__ = ["MICRO_WORKLOADS", "GREP_PATTERN"]

_SORT_RECORDS = 3000
_TEXT_LINES = 2600

#: The pattern Grep scans for: a mid-frequency vocabulary word, giving
#: realistic selectivity (a few percent of lines match).
GREP_PATTERN = "da"


# ---------------------------------------------------------------------------
# Sort (80 GB unstructured sequence file)
# ---------------------------------------------------------------------------


def _sort_hadoop(context: RunContext) -> WorkloadRun:
    bdgs = Bdgs(seed=context.seed)
    records = bdgs.sequence_records(context.records(_SORT_RECORDS))
    stack = HadoopStack()
    stack.hdfs.put("/input/sort", records)
    trace = stack.new_trace("H-Sort")

    # TeraSort-style total order: sample keys, range-partition.
    sample = sorted(r.key for r in records[:: max(1, len(records) // 64)])
    num_reducers = 4
    boundaries = [
        sample[(i + 1) * len(sample) // num_reducers]
        for i in range(num_reducers - 1)
    ]

    job = MapReduceJob(
        name="sort",
        mapper=lambda record: [(record.key, record.value)],
        reducer=lambda key, values: [(key, value) for value in values],
        num_reducers=num_reducers,
        partitioner=lambda key, _n: bisect.bisect_left(boundaries, key),
    )
    output = stack.run(job, "/input/sort", trace)
    keys = [key for key, _value in output]
    is_sorted = all(keys[i] <= keys[i + 1] for i in range(len(keys) - 1))
    return WorkloadRun(
        trace=trace,
        output_records=len(output),
        checks={"sorted": float(is_sorted), "records_preserved": float(len(output) == len(records))},
    )


def _sort_spark(context: RunContext) -> WorkloadRun:
    bdgs = Bdgs(seed=context.seed)
    records = bdgs.sequence_records(context.records(_SORT_RECORDS))
    hdfs = Hdfs()
    hdfs.put("/input/sort", records)
    engine = SparkEngine()
    trace = engine.new_trace("S-Sort")
    output = (
        engine.from_hdfs(hdfs, "/input/sort")
        .map(lambda record: (record.key, record.value))
        .sort_by(lambda pair: pair[0])
        .collect(trace)
    )
    keys = [key for key, _value in output]
    is_sorted = all(keys[i] <= keys[i + 1] for i in range(len(keys) - 1))
    return WorkloadRun(
        trace=trace,
        output_records=len(output),
        checks={"sorted": float(is_sorted), "records_preserved": float(len(output) == len(records))},
    )


# ---------------------------------------------------------------------------
# WordCount (98 GB unstructured text)
# ---------------------------------------------------------------------------


def _wordcount_reference(lines: list[str]) -> Counter:
    return Counter(word for line in lines for word in line.split())


def _wordcount_hadoop(context: RunContext) -> WorkloadRun:
    bdgs = Bdgs(seed=context.seed)
    lines = bdgs.text_lines(context.records(_TEXT_LINES))
    stack = HadoopStack()
    stack.hdfs.put("/input/wordcount", lines)
    trace = stack.new_trace("H-WordCount")
    job = MapReduceJob(
        name="wordcount",
        mapper=lambda line: [(word, 1) for word in line.split()],
        reducer=lambda word, counts: [(word, sum(counts))],
        combiner=lambda word, counts: [(word, sum(counts))],
    )
    output = stack.run(job, "/input/wordcount", trace)
    correct = dict(output) == dict(_wordcount_reference(lines))
    return WorkloadRun(
        trace=trace, output_records=len(output), checks={"counts_correct": float(correct)}
    )


def _wordcount_spark(context: RunContext) -> WorkloadRun:
    bdgs = Bdgs(seed=context.seed)
    lines = bdgs.text_lines(context.records(_TEXT_LINES))
    hdfs = Hdfs()
    hdfs.put("/input/wordcount", lines)
    engine = SparkEngine()
    trace = engine.new_trace("S-WordCount")
    output = (
        engine.from_hdfs(hdfs, "/input/wordcount")
        .flat_map(lambda line: [(word, 1) for word in line.split()])
        .reduce_by_key(lambda a, b: a + b)
        .collect(trace)
    )
    correct = dict(output) == dict(_wordcount_reference(lines))
    return WorkloadRun(
        trace=trace, output_records=len(output), checks={"counts_correct": float(correct)}
    )


# ---------------------------------------------------------------------------
# Grep (98 GB unstructured text)
# ---------------------------------------------------------------------------


def _grep_hadoop(context: RunContext) -> WorkloadRun:
    bdgs = Bdgs(seed=context.seed)
    lines = bdgs.text_lines(context.records(_TEXT_LINES))
    stack = HadoopStack()
    stack.hdfs.put("/input/grep", lines)
    trace = stack.new_trace("H-Grep")
    job = MapReduceJob(  # map-only, like Hadoop's distributed grep
        name="grep",
        mapper=lambda line: [line] if GREP_PATTERN in line else [],
    )
    output = stack.run(job, "/input/grep", trace)
    expected = sum(1 for line in lines if GREP_PATTERN in line)
    return WorkloadRun(
        trace=trace,
        output_records=len(output),
        checks={"matches_correct": float(len(output) == expected)},
    )


def _grep_spark(context: RunContext) -> WorkloadRun:
    bdgs = Bdgs(seed=context.seed)
    lines = bdgs.text_lines(context.records(_TEXT_LINES))
    hdfs = Hdfs()
    hdfs.put("/input/grep", lines)
    engine = SparkEngine()
    trace = engine.new_trace("S-Grep")
    output = (
        engine.from_hdfs(hdfs, "/input/grep")
        .filter(lambda line: GREP_PATTERN in line)
        .collect(trace)
    )
    expected = sum(1 for line in lines if GREP_PATTERN in line)
    return WorkloadRun(
        trace=trace,
        output_records=len(output),
        checks={"matches_correct": float(len(output) == expected)},
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_TEXT_HINTS = CharacterHints(branch_entropy_shift=0.06)  # byte-wise scanning

MICRO_WORKLOADS: tuple[Workload, ...] = (
    Workload(
        algorithm="Sort",
        family=StackFamily.HADOOP,
        category=Category.OFFLINE_ANALYTICS,
        data_type=DataType.UNSTRUCTURED,
        declared_size="80 GB",
        declared_bytes=80 * (1 << 30),
        runner=_sort_hadoop,
        hints=CharacterHints(branch_entropy_shift=0.1),
    ),
    Workload(
        algorithm="Sort",
        family=StackFamily.SPARK,
        category=Category.OFFLINE_ANALYTICS,
        data_type=DataType.UNSTRUCTURED,
        declared_size="80 GB",
        declared_bytes=80 * (1 << 30),
        runner=_sort_spark,
        hints=CharacterHints(branch_entropy_shift=0.1),
    ),
    Workload(
        algorithm="WordCount",
        family=StackFamily.HADOOP,
        category=Category.OFFLINE_ANALYTICS,
        data_type=DataType.UNSTRUCTURED,
        declared_size="98 GB",
        declared_bytes=98 * (1 << 30),
        runner=_wordcount_hadoop,
        hints=CharacterHints(branch_entropy_shift=0.06, integer_shift=0.04),
    ),
    Workload(
        algorithm="WordCount",
        family=StackFamily.SPARK,
        category=Category.OFFLINE_ANALYTICS,
        data_type=DataType.UNSTRUCTURED,
        declared_size="98 GB",
        declared_bytes=98 * (1 << 30),
        runner=_wordcount_spark,
        hints=CharacterHints(branch_entropy_shift=0.06, integer_shift=0.04),
    ),
    Workload(
        algorithm="Grep",
        family=StackFamily.HADOOP,
        category=Category.OFFLINE_ANALYTICS,
        data_type=DataType.UNSTRUCTURED,
        declared_size="98 GB",
        declared_bytes=98 * (1 << 30),
        runner=_grep_hadoop,
        hints=_TEXT_HINTS,
    ),
    Workload(
        algorithm="Grep",
        family=StackFamily.SPARK,
        category=Category.OFFLINE_ANALYTICS,
        data_type=DataType.UNSTRUCTURED,
        declared_size="98 GB",
        declared_bytes=98 * (1 << 30),
        runner=_grep_spark,
        hints=_TEXT_HINTS,
    ),
)
